"""Ablation A2 — block-size sweep for the closure store.

Smaller blocks let the lazy engine stop mid-group (fewer wasted entries)
but cost more block reads; larger blocks amortize reads for the full-load
algorithms.  DESIGN.md calls this layout choice out — this bench measures
both sides of it.
"""

from __future__ import annotations

from repro.bench import (
    clear_workbench_cache,
    get_workbench,
    print_header,
    print_table,
)
from repro.core.topk_en import TopkEN
from repro.runtime.graph import build_runtime_graph

BLOCK_SIZES = (8, 32, 128)
DATASET = "GS2"


def test_ablation_block_size(benchmark, report):
    rows = []
    for block_size in BLOCK_SIZES:
        wb = get_workbench(DATASET, block_size=block_size)
        query = wb.query(20, seed=2)
        before = wb.store.counter.snapshot()
        build_runtime_graph(wb.store, query)
        full_delta = wb.store.counter.delta_since(before)
        before = wb.store.counter.snapshot()
        engine = TopkEN(wb.store, query)
        engine.top_k(20)
        lazy_delta = wb.store.counter.delta_since(before)
        rows.append(
            [
                block_size,
                full_delta.blocks_read,
                full_delta.entries_read,
                lazy_delta.blocks_read,
                lazy_delta.entries_read,
            ]
        )
    with report("ablation_blocks"):
        print_header(f"Ablation A2: block size sweep on {DATASET}, T20, k=20")
        print_table(
            [
                "block size",
                "full-load blocks",
                "full-load entries",
                "lazy blocks",
                "lazy entries",
            ],
            rows,
        )
        # Bigger blocks => fewer block reads for the sequential full load.
        full_blocks = [r[1] for r in rows]
        assert full_blocks == sorted(full_blocks, reverse=True)

    wb = get_workbench(DATASET, block_size=32)
    query = wb.query(20, seed=2)
    benchmark.pedantic(
        lambda: TopkEN(wb.store, query).top_k(20), rounds=3, iterations=1
    )
    clear_workbench_cache()
