"""Ablation A1 — trigger tightness: Topk-EN's structural bound vs DP-P's.

The paper's central Section-4 claim is that its loading trigger
``bs + e_v + L(q(v))`` is tighter than DP-P's ``bs + e_v`` and therefore
loads fewer edges.  This ablation measures exactly that: edges and blocks
pulled from storage by the same engine under both bounds.
"""

from __future__ import annotations

from repro.bench import get_workbench, print_header, print_table
from repro.core.topk_en import LazyTopkEngine

from conftest import QUERIES_PER_SET

DATASETS = ("GD3", "GS3")


def _loads(wb, query, k, bound):
    before = wb.store.counter.snapshot()
    engine = LazyTopkEngine(wb.store, query, bound=bound)
    engine.top_k(k)
    delta = wb.store.counter.delta_since(before)
    return engine.stats.edges_loaded, delta.blocks_read


def test_ablation_bound_tightness(benchmark, report):
    rows = []
    for dataset in DATASETS:
        wb = get_workbench(dataset)
        for size in (20, 50):
            queries = wb.queries(size, count=QUERIES_PER_SET, seed=size + 4)
            for k in (1, 20):
                tight_edges = tight_blocks = 0
                loose_edges = loose_blocks = 0
                for query in queries:
                    e, b = _loads(wb, query, k, "structural")
                    tight_edges += e
                    tight_blocks += b
                    e, b = _loads(wb, query, k, "loose")
                    loose_edges += e
                    loose_blocks += b
                n = len(queries)
                rows.append(
                    [
                        dataset,
                        f"T{size}",
                        k,
                        tight_edges // n,
                        loose_edges // n,
                        f"{loose_edges / max(tight_edges, 1):.2f}x",
                    ]
                )
    with report("ablation_bounds"):
        print_header(
            "Ablation A1: edges loaded — structural trigger (Topk-EN) vs "
            "loose trigger (DP-P)"
        )
        print_table(
            ["graph", "T", "k", "edges (tight)", "edges (loose)", "ratio"],
            rows,
        )
        # The loose bound must never load fewer edges.
        for row in rows:
            assert row[4] >= row[3], row

    wb = get_workbench("GS3")
    query = wb.query(20, seed=44)
    benchmark.pedantic(
        lambda: LazyTopkEngine(wb.store, query, bound="structural").top_k(1),
        rounds=3,
        iterations=1,
    )
