"""Ablation A4 — closure residency: materialized vs hybrid vs on-demand.

Section 4.1/5: the engines never need the whole closure.  This ablation
compares three residency policies under the same queries:

* fully materialized store (the default offline pre-computation),
* the Section-5 hybrid ("hot lists" materialized, cold pairs + point
  distances served by 2-hop labels / backward searches), and
* fully on-demand assembly.
"""

from __future__ import annotations

from repro.bench import get_workbench, print_header, print_table, time_call
from repro.closure.hybrid import HybridStore
from repro.closure.ondemand import OnDemandStore
from repro.core.topk_en import TopkEN

from conftest import QUERIES_PER_SET

DATASET = "GS2"
HOT_FRACTION = 0.2


def test_ablation_ondemand(benchmark, report):
    wb = get_workbench(DATASET)
    build_seconds, od = time_call(lambda: OnDemandStore(wb.graph))
    hybrid_seconds, hybrid = time_call(
        lambda: HybridStore(
            wb.graph, hot_fraction=HOT_FRACTION, closure=wb.closure
        )
    )
    queries = wb.queries(10, count=QUERIES_PER_SET, seed=14)

    seconds = {"materialized": 0.0, "hybrid": 0.0, "on-demand": 0.0}
    scores_agree = True
    for query in queries:
        s1, m1 = time_call(lambda: TopkEN(wb.store, query).top_k(20))
        s2, m2 = time_call(lambda: TopkEN(hybrid, query).top_k(20))
        s3, m3 = time_call(lambda: TopkEN(od, query).top_k(20))
        seconds["materialized"] += s1
        seconds["hybrid"] += s2
        seconds["on-demand"] += s3
        want = [m.score for m in m1]
        if [m.score for m in m2] != want or [m.score for m in m3] != want:
            scores_agree = False

    stats = od.cache_statistics()
    hybrid_stats = hybrid.storage_statistics()
    n = len(queries)
    with report("ablation_ondemand"):
        print_header(
            f"Ablation A4: closure residency policies "
            f"({DATASET}, T10, k=20)"
        )
        print_table(
            ["store", "offline build (s)", "stored entries",
             f"avg query CPU (s, {n} queries)"],
            [
                [
                    "materialized",
                    f"{wb.closure_seconds:.2f}",
                    wb.store.size_statistics()["total_entries"],
                    f"{seconds['materialized'] / n:.4f}",
                ],
                [
                    f"hybrid (hot {HOT_FRACTION:.0%} of pairs)",
                    f"{hybrid_seconds:.2f}",
                    hybrid_stats["hot_entries"],
                    f"{seconds['hybrid'] / n:.4f}",
                ],
                [
                    "on-demand (2-hop + lazy groups)",
                    f"{build_seconds:.2f}",
                    stats["cached_entries"] + stats["pll_entries"],
                    f"{seconds['on-demand'] / n:.4f}",
                ],
            ],
        )
        closure_pairs = wb.closure.num_pairs
        assembled = stats["cached_entries"]
        print(
            f"closure pairs never materialized (pure on-demand): "
            f"{closure_pairs - assembled} of {closure_pairs} "
            f"({1 - assembled / max(closure_pairs, 1):.0%}); "
            f"hybrid hot lists hold "
            f"{hybrid_stats['hot_storage_fraction']:.0%} of entries in "
            f"{HOT_FRACTION:.0%} of pairs"
        )
        assert scores_agree
        # The on-demand path must assemble strictly less closure material
        # than full materialization (the 2-hop index is reported separately:
        # its size depends on graph compressibility, not on the workload).
        assert stats["cached_entries"] < closure_pairs

    query = wb.query(10, seed=140)
    benchmark.pedantic(
        lambda: TopkEN(od, query).top_k(20), rounds=3, iterations=1
    )
