"""Ablation A3 — managing closure size: 2-hop labels vs materialized closure.

Section 5 proposes answering shortest-distance queries from a pruned
landmark (2-hop) index instead of storing the full closure.  This bench
compares index size against closure size and the per-query lookup costs.
"""

from __future__ import annotations

import random

from repro.bench import get_workbench, print_header, print_table, time_call
from repro.closure.pll import PrunedLandmarkIndex

DATASET = "GD2"
PROBES = 3000


def test_ablation_pll(benchmark, report):
    wb = get_workbench(DATASET)
    build_seconds, pll = time_call(lambda: PrunedLandmarkIndex(wb.graph))
    rng = random.Random(0)
    nodes = sorted(wb.graph.nodes(), key=repr)
    pairs = [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(PROBES)
    ]

    closure_seconds, _ = time_call(
        lambda: [wb.closure.distance(u, v) for u, v in pairs]
    )
    pll_seconds, _ = time_call(lambda: [pll.distance(u, v) for u, v in pairs])

    mismatches = sum(
        1 for u, v in pairs if pll.distance(u, v) != wb.closure.distance(u, v)
    )

    with report("ablation_pll"):
        print_header(
            f"Ablation A3: 2-hop labels vs materialized closure on {DATASET}"
        )
        print_table(
            ["store", "entries", "build (s)", f"{PROBES} probes (s)"],
            [
                [
                    "materialized closure",
                    wb.closure.num_pairs,
                    f"{wb.closure_seconds:.2f}",
                    f"{closure_seconds:.4f}",
                ],
                [
                    "pruned landmark index",
                    pll.index_size(),
                    f"{build_seconds:.2f}",
                    f"{pll_seconds:.4f}",
                ],
            ],
        )
        ratio = wb.closure.num_pairs / max(pll.index_size(), 1)
        print(f"space saving: {ratio:.1f}x fewer entries; "
              f"mismatching probes: {mismatches}")
        assert mismatches == 0

    benchmark.pedantic(
        lambda: [pll.distance(u, v) for u, v in pairs[:500]],
        rounds=3,
        iterations=1,
    )
