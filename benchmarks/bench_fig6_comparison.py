"""Figure 6 — Topk / Topk-EN vs DP-B / DP-P (T20, vary k).

Reproduces all six subfigures:
  (a)(b) total time       — GD3 / GS3
  (c)(d) top-1 time       — with the CPU / simulated-I/O split
  (e)(f) enumeration time — time after the top-1 match
"""

from __future__ import annotations

import pytest

from repro.bench import (
    ALGOS,
    get_workbench,
    print_bars,
    print_header,
    print_series,
    run_algorithm,
    speedup_summary,
)
from repro.core.topk_en import TopkEN

from conftest import QUERIES_PER_SET

K_VALUES = (1, 10, 20, 100)
QUERY_SIZE = 20


def _collect(dataset: str):
    wb = get_workbench(dataset)
    queries = wb.queries(QUERY_SIZE, count=QUERIES_PER_SET, seed=6)
    total = {alg: [] for alg in ALGOS}
    top1 = {alg: [] for alg in ALGOS}
    top1_io = {alg: [] for alg in ALGOS}
    enum = {alg: [] for alg in ALGOS}
    for k in K_VALUES:
        sums = {alg: [0.0, 0.0, 0.0, 0.0] for alg in ALGOS}
        for query in queries:
            for alg in ALGOS:
                res = run_algorithm(wb.store, query, k, alg)
                sums[alg][0] += res.total_seconds
                sums[alg][1] += res.top1_seconds
                sums[alg][2] += res.top1.io_seconds
                sums[alg][3] += res.enum_seconds
        n = len(queries)
        for alg in ALGOS:
            total[alg].append(sums[alg][0] / n)
            top1[alg].append(sums[alg][1] / n)
            top1_io[alg].append(sums[alg][2] / n)
            enum[alg].append(sums[alg][3] / n)
    return total, top1, top1_io, enum


@pytest.mark.parametrize("dataset", ["GD3", "GS3"])
def test_fig6_comparison(benchmark, report, dataset):
    total, top1, top1_io, enum = _collect(dataset)
    with report(f"fig6_{dataset}"):
        print_header(
            f"Figure 6 ({'a,c,e' if dataset == 'GD3' else 'b,d,f'}): "
            f"DP-B/DP-P/Topk/Topk-EN on {dataset}, T{QUERY_SIZE}",
            f"averaged over {QUERIES_PER_SET} queries; simulated I/O included",
        )
        print_series("k", K_VALUES, total, title="total time (fig 6a/6b)")
        print_bars(total, [f"k={k}" for k in K_VALUES], title="total time (bars)")
        print_series("k", K_VALUES, top1, title="top-1 time (fig 6c/6d)")
        print_bars(top1, [f"k={k}" for k in K_VALUES], title="top-1 time (bars)")
        print_series(
            "k", K_VALUES, top1_io, title="top-1 simulated I/O component"
        )
        print_series("k", K_VALUES, enum, title="enumeration time (fig 6e/6f)")
        print(speedup_summary(total, "DP-P", "Topk-EN"))
        print(speedup_summary(top1, "Topk", "Topk-EN"))

    # Benchmark kernel: Topk-EN end-to-end at the paper's default k=20.
    wb = get_workbench(dataset)
    query = wb.query(QUERY_SIZE, seed=60)
    benchmark.pedantic(
        lambda: TopkEN(wb.store, query).top_k(20), rounds=3, iterations=1
    )
