"""Figure 7 — scalability of Topk and Topk-EN.

  (a)(b) vary k   (T50, GD3/GS3)
  (c)(d) vary T   (k=20)
  (e)(f) vary G   (dataset ladders, T20 at laptop scale)
"""

from __future__ import annotations

import pytest

from repro.bench import (
    get_workbench,
    print_bars,
    print_header,
    print_series,
    run_algorithm,
)
from repro.core.topk_en import TopkEN

from conftest import FULL, QUERIES_PER_SET

PAIR = ("Topk", "Topk-EN")
GD_LADDER = ("GD1", "GD2", "GD3")
GS_LADDER = ("GS1", "GS2", "GS3") + (("GS4",) if FULL else ())


def _avg_total(wb, queries, k, alg):
    total = 0.0
    for query in queries:
        total += run_algorithm(wb.store, query, k, alg).total_seconds
    return total / len(queries)


@pytest.mark.parametrize("dataset", ["GD3", "GS3"])
def test_fig7_vary_k(benchmark, report, dataset):
    wb = get_workbench(dataset)
    queries = wb.queries(50, count=QUERIES_PER_SET, seed=7)
    ks = (10, 20, 100)
    series = {alg: [_avg_total(wb, queries, k, alg) for k in ks] for alg in PAIR}
    with report(f"fig7ab_{dataset}"):
        print_header(f"Figure 7(a/b): vary k on {dataset}, T50")
        print_series("k", ks, series)
    query = wb.query(50, seed=70)
    benchmark.pedantic(
        lambda: TopkEN(wb.store, query).top_k(20), rounds=3, iterations=1
    )


@pytest.mark.parametrize("dataset", ["GD3", "GS3"])
def test_fig7_vary_query_size(benchmark, report, dataset):
    wb = get_workbench(dataset)
    sizes = (10, 30, 50) + ((70,) if FULL else ())
    series = {alg: [] for alg in PAIR}
    for size in sizes:
        queries = wb.queries(size, count=QUERIES_PER_SET, seed=size + 1)
        for alg in PAIR:
            series[alg].append(_avg_total(wb, queries, 20, alg))
    with report(f"fig7cd_{dataset}"):
        print_header(f"Figure 7(c/d): vary query size on {dataset}, k=20")
        print_series("T", [f"T{s}" for s in sizes], series)
        print_bars(series, [f"T{s}" for s in sizes])
    query = wb.query(30, seed=71)
    benchmark.pedantic(
        lambda: TopkEN(wb.store, query).top_k(20), rounds=3, iterations=1
    )


@pytest.mark.parametrize("ladder_name,ladder", [("GD", GD_LADDER), ("GS", GS_LADDER)])
def test_fig7_vary_data_graph(benchmark, report, ladder_name, ladder):
    series = {alg: [] for alg in PAIR}
    for dataset in ladder:
        wb = get_workbench(dataset)
        queries = wb.queries(10, count=QUERIES_PER_SET, seed=11)
        for alg in PAIR:
            series[alg].append(_avg_total(wb, queries, 20, alg))
    with report(f"fig7ef_{ladder_name}"):
        print_header(
            f"Figure 7(e/f): vary data graph ({ladder_name} ladder), "
            "T10, k=20"
        )
        print_series("G", list(ladder), series)
    wb = get_workbench(ladder[0])
    query = wb.query(10, seed=72)
    benchmark.pedantic(
        lambda: TopkEN(wb.store, query).top_k(20), rounds=3, iterations=1
    )
