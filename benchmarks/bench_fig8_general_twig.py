"""Figure 8 — Topk-GT: general twig queries with duplicate labels.

The paper's Eval-IV: query sets generated without the distinct-label
restriction (every query tree has duplicated labels), run with the
extended lazy engine on both datasets, varying k, query size, and graph.
"""

from __future__ import annotations


from repro.bench import get_workbench, print_header, print_series, time_call
from repro.twig.general import TopkGT

from conftest import FULL, QUERIES_PER_SET

DATASETS = ("GD3", "GS3")
GD_LADDER = ("GD1", "GD2", "GD3")


def _queries(wb, size, seed):
    return wb.queries(
        size, count=QUERIES_PER_SET, seed=seed, distinct_labels=False
    )


def _avg_seconds(wb, queries, k):
    total = 0.0
    for query in queries:
        seconds, _ = time_call(lambda: TopkGT(wb.store, query).top_k(k))
        total += seconds
    return total / len(queries)


def test_fig8a_vary_k(benchmark, report):
    ks = (10, 20, 100)
    series = {}
    for dataset in DATASETS:
        wb = get_workbench(dataset)
        queries = _queries(wb, 20, seed=8)
        series[f"Topk-GT {dataset}"] = [
            _avg_seconds(wb, queries, k) for k in ks
        ]
    with report("fig8a_vary_k"):
        print_header("Figure 8(a): Topk-GT, duplicate labels, vary k (T20)")
        print_series("k", ks, series)
        dup = _queries(get_workbench("GD3"), 20, seed=8)[0]
        print(f"label duplication ratio of a sample query: "
              f"{dup.label_duplication_ratio():.2f}")
    wb = get_workbench("GS3")
    query = _queries(wb, 20, seed=80)[0]
    benchmark.pedantic(
        lambda: TopkGT(wb.store, query).top_k(20), rounds=3, iterations=1
    )


def test_fig8b_vary_query_size(benchmark, report):
    sizes = (10, 30, 50) + ((70,) if FULL else ())
    series = {}
    for dataset in DATASETS:
        wb = get_workbench(dataset)
        series[f"Topk-GT {dataset}"] = [
            _avg_seconds(wb, _queries(wb, size, seed=size), 20)
            for size in sizes
        ]
    with report("fig8b_vary_T"):
        print_header("Figure 8(b): Topk-GT, vary query size (k=20)")
        print_series("T", [f"T{s}" for s in sizes], series)
    wb = get_workbench("GS3")
    query = _queries(wb, 30, seed=81)[0]
    benchmark.pedantic(
        lambda: TopkGT(wb.store, query).top_k(20), rounds=3, iterations=1
    )


def test_fig8cd_vary_data_graph(benchmark, report):
    series = {"Topk-GT": []}
    for dataset in GD_LADDER:
        wb = get_workbench(dataset)
        queries = _queries(wb, 10, seed=83)
        series["Topk-GT"].append(_avg_seconds(wb, queries, 20))
    with report("fig8cd_vary_G"):
        print_header("Figure 8(c/d): Topk-GT, vary data graph (T10, k=20)")
        print_series("G", list(GD_LADDER), series)
    wb = get_workbench("GD1")
    query = _queries(wb, 10, seed=84)[0]
    benchmark.pedantic(
        lambda: TopkGT(wb.store, query).top_k(20), rounds=3, iterations=1
    )
