"""Figure 9 — kGPM: mtree (DP-based tree matcher) vs mtree+ (Topk-EN).

  (a) vary k with query Q2;
  (b) vary query Q1..Q4 with k=20.

Timings include the simulated I/O of the shared closure store (mtree's
tree matcher loads the full run-time graph of the spanning tree; mtree+
pulls blocks on demand) — the same cost model as Figure 6.
"""

from __future__ import annotations

from repro.bench import (
    get_workbench,
    measure,
    print_header,
    print_series,
    speedup_summary,
)
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.gpm import KGPMEngine
from repro.workloads.queries import kgpm_query_suite

DATASET = "GS2"


def _engines():
    wb = get_workbench(DATASET)
    bidirected = wb.graph.bidirected()
    closure = TransitiveClosure(bidirected)
    store = ClosureStore(bidirected, closure)
    plus = KGPMEngine(
        wb.graph, tree_algorithm="topk-en", closure=closure, store=store
    )
    base = KGPMEngine(
        wb.graph, tree_algorithm="dp-b", closure=closure, store=store
    )
    suite = kgpm_query_suite(closure, seed=9)
    return base, plus, store, suite


def _timed(engine, store, query, k) -> float:
    run, _ = measure(
        engine.tree_algorithm, store.counter, lambda: engine.top_k(query, k)
    )
    return run.total_seconds


def test_fig9_kgpm(benchmark, report):
    base, plus, store, suite = _engines()
    ks = (10, 20, 50)
    q2 = suite["Q2"]
    vary_k = {
        "mtree": [_timed(base, store, q2, k) for k in ks],
        "mtree+": [_timed(plus, store, q2, k) for k in ks],
    }
    names = ("Q1", "Q2", "Q3", "Q4")
    vary_q = {
        "mtree": [_timed(base, store, suite[n], 20) for n in names],
        "mtree+": [_timed(plus, store, suite[n], 20) for n in names],
    }
    with report("fig9_kgpm"):
        print_header(
            f"Figure 9: kGPM on {DATASET} (undirected semantics, "
            "CPU + simulated I/O)"
        )
        print_series("k", ks, vary_k, title="(a) vary k, query Q2")
        print_series("query", list(names), vary_q, title="(b) vary query, k=20")
        print(speedup_summary(vary_q, "mtree", "mtree+"))
        for name in names:
            a = [m.score for m in base.top_k(suite[name], 5)]
            b = [m.score for m in plus.top_k(suite[name], 5)]
            assert a == b, name
        print("mtree and mtree+ returned identical top-5 scores on Q1..Q4")

    benchmark.pedantic(lambda: plus.top_k(q2, 20), rounds=3, iterations=1)
