"""Table 2 — pre-computation cost of transitive closures.

Reproduces the paper's offline-cost table: closure computation time and
stored size for the real-like (GD*) and synthetic (GS*) ladders, at the
library's laptop scale (see DESIGN.md for the scaling substitution).
"""

from __future__ import annotations

from repro.bench import get_workbench, print_header, print_table
from repro.closure.transitive import TransitiveClosure
from repro.graph.generators import powerlaw_graph

from conftest import FULL

GD_LADDER = ("GD1", "GD2", "GD3")
GS_LADDER = ("GS1", "GS2", "GS3") + (("GS4",) if FULL else ())


def _rows(names):
    rows = []
    for name in names:
        wb = get_workbench(name)
        rows.append(
            [
                name,
                wb.graph.num_nodes,
                wb.graph.num_edges,
                f"{wb.closure_seconds:.2f}",
                wb.closure.num_pairs,
                f"{wb.store.estimated_bytes() / 1e6:.1f}MB",
                f"{wb.closure.average_theta():.0f}",
            ]
        )
    return rows


def test_table2_closure_costs(benchmark, report):
    with report("table2_closure"):
        print_header(
            "Table 2: computational costs of transitive closures",
            "paper: seconds + GB at full scale; here: scaled ladder",
        )
        columns = ["graph", "nodes", "edges", "TC time (s)", "TC pairs",
                   "TC size", "theta"]
        print_table(columns, _rows(GD_LADDER), title="real-like (citation)")
        print_table(columns, _rows(GS_LADDER), title="synthetic (power-law)")

    # Benchmark kernel: one mid-ladder closure computation.
    graph = powerlaw_graph(800, num_labels=200, seed=0)
    benchmark.pedantic(
        lambda: TransitiveClosure(graph), rounds=3, iterations=1
    )


def test_closure_time_grows_with_size(report):
    """Sanity: the ladder's closure cost is monotone (paper Table 2 trend)."""
    times = []
    for name in GD_LADDER:
        wb = get_workbench(name)
        # Rebuild timing is cached in the workbench.
        times.append((wb.graph.num_nodes, wb.closure.num_pairs))
    sizes = [t[1] for t in times]
    assert sizes == sorted(sizes)
