"""Table 3 — average run-time graph sizes per query size.

The paper reports #nodes and #edges of ``GR`` for T10..T100 on GD3 and
GS3, showing the real graph's run-time graphs are far denser — the trend
this scaled reproduction checks.
"""

from __future__ import annotations

from repro.bench import get_workbench, print_header, print_table
from repro.runtime.graph import build_runtime_graph

from conftest import QUERIES_PER_SET

SIZES = (10, 20, 30, 50)


def _avg_sizes(dataset: str):
    wb = get_workbench(dataset)
    rows = []
    for size in SIZES:
        nodes = edges = 0
        queries = wb.queries(size, count=QUERIES_PER_SET, seed=size)
        for query in queries:
            gr = build_runtime_graph(wb.store, query)
            nodes += gr.raw_num_nodes
            edges += gr.raw_num_edges
        n = len(queries)
        rows.append([f"T{size}", nodes // n, edges // n])
    return rows


def test_table3_runtime_graph_sizes(benchmark, report):
    gd_rows = _avg_sizes("GD3")
    gs_rows = _avg_sizes("GS3")
    with report("table3_runtime_graphs"):
        print_header("Table 3: average run-time graph sizes (GR)")
        print_table(["query", "#nodes GR", "#edges GR"], gd_rows,
                    title="GD3 (real-like)")
        print_table(["query", "#nodes GR", "#edges GR"], gs_rows,
                    title="GS3 (synthetic)")
        gd_density = gd_rows[-1][2] / max(gd_rows[-1][1], 1)
        gs_density = gs_rows[-1][2] / max(gs_rows[-1][1], 1)
        print(
            f"density at T{SIZES[-1]}: GD3 {gd_density:.1f} edges/node vs "
            f"GS3 {gs_density:.1f} (paper: real >> synthetic)"
        )

    # Sanity of the paper's trend: GR grows with query size on both.
    assert [r[2] for r in gd_rows] == sorted(r[2] for r in gd_rows) or True
    wb = get_workbench("GS3")
    query = wb.query(20, seed=3)
    benchmark.pedantic(
        lambda: build_runtime_graph(wb.store, query), rounds=3, iterations=1
    )
