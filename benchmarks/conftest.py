"""Benchmark-suite configuration.

Every experiment writes its paper-style report to ``benchmarks/results/``
(and prints it, visible with ``pytest -s``); the pytest-benchmark fixture
times one representative kernel per experiment.  Set ``REPRO_BENCH_FULL=1``
for the heavier ladder rungs (bigger graphs, more queries per set).
"""

from __future__ import annotations

import contextlib
import io
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Heavier rungs (GS4, more queries per set) only with REPRO_BENCH_FULL=1.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Queries per set (the paper uses 100; scaled down for laptop runs).
QUERIES_PER_SET = 5 if FULL else 2


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Capture report prints and persist them under benchmarks/results/."""

    @contextlib.contextmanager
    def recorder(name: str):
        buffer = io.StringIO()

        class _Tee(io.TextIOBase):
            def write(self, text):
                buffer.write(text)
                return len(text)

        with contextlib.redirect_stdout(_Tee()):
            yield
        text = buffer.getvalue()
        (results_dir / f"{name}.txt").write_text(text)
        # Re-emit so `pytest -s` shows it too.
        print(text)

    return recorder
