"""Graph-pattern matching (kGPM): queries with cycles via mtree+.

Tree queries cannot express cyclic constraints ("an author, a venue, and
a topic that are all pairwise related").  The Section 5 extension
decomposes a query *graph* into a spanning tree, streams tree matches
with Topk-EN, and verifies the non-tree edges.  Cyclic patterns are
written in the ``graph(...)`` DSL form (or built with
``Pattern.from_edges``) and run through the same ``MatchEngine.top_k``
as tree queries — the planner routes them to the decomposition framework
(``mtree+`` with Topk-EN inside, ``mtree`` with DP-B).  Run with::

    python examples/kgpm_cycles.py
"""

from __future__ import annotations

import time

from repro import MatchEngine, Pattern


def main() -> None:
    from repro.graph import powerlaw_graph

    graph = powerlaw_graph(1200, num_labels=30, seed=11)
    print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
          "(treated as undirected)")

    # A triangle with a pendant, over the graph's first four labels —
    # one DSL string, same engine as every tree query.
    l0, l1, l2, l3 = sorted(graph.labels())[:4]
    pattern = f"graph(a:{l0}, b:{l1}, c:{l2}, d:{l3}; a-b, b-c, c-a, c-d)"
    engine = MatchEngine(graph)
    plan = engine.explain(pattern, k=5)
    print(f"\n{plan.describe()}\n")

    # The first cyclic query builds the engine's bidirected closure
    # lazily; warm it up so the timings compare the algorithms only.
    engine.top_k(pattern, 1)

    started = time.perf_counter()
    top_plus = engine.top_k(pattern, 5)                      # mtree+ (auto)
    t_plus = time.perf_counter() - started
    started = time.perf_counter()
    top_base = engine.top_k(pattern, 5, algorithm="mtree")   # DP-B inside
    t_base = time.perf_counter() - started

    assert [m.score for m in top_plus] == [m.score for m in top_base]
    print(f"mtree+ (Topk-EN inside): {t_plus * 1000:.1f} ms")
    print(f"mtree  (DP-B inside):    {t_base * 1000:.1f} ms")

    # The fluent builder spells the same pattern programmatically.
    built = Pattern.from_edges(
        {"a": l0, "b": l1, "c": l2, "d": l3},
        [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")],
    )
    assert [m.score for m in engine.top_k(built, 5)] == \
        [m.score for m in top_plus]
    print(f"builder form == DSL {built.to_dsl()!r}")

    if top_plus:
        print("\nbest pattern matches (score sums ALL query-edge distances):")
        for rank, match in enumerate(top_plus, start=1):
            nodes = {q: n for q, n in sorted(match.assignment.items())}
            print(f"  #{rank}  score={match.score:g}  {nodes}")
    else:
        print("\nno match for this pattern — try another seed")


if __name__ == "__main__":
    main()
