"""Graph-pattern matching (kGPM): queries with cycles via mtree+.

Tree queries cannot express cyclic constraints ("an author, a venue, and
a topic that are all pairwise related").  The Section 5 extension
decomposes a query *graph* into a spanning tree, streams tree matches
with Topk-EN, and verifies the non-tree edges — this example runs it on a
synthetic knowledge-graph-ish network and compares mtree (DP-based tree
matcher) with mtree+ (Topk-EN inside).  Run with::

    python examples/kgpm_cycles.py
"""

from __future__ import annotations

import time

from repro import MatchEngine, QueryGraph
from repro.gpm import KGPMEngine, spanning_tree
from repro.graph import powerlaw_graph


def main() -> None:
    graph = powerlaw_graph(1200, num_labels=30, seed=11)
    print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
          "(treated as undirected)")

    # Find a realizable triangle + tail pattern from the graph's labels:
    # pick labels of a short closed walk.
    labels = sorted(graph.labels())
    pattern = QueryGraph(
        {0: labels[0], 1: labels[1], 2: labels[2], 3: labels[3]},
        [(0, 1), (1, 2), (2, 0), (2, 3)],  # triangle with a pendant
    )
    tree, non_tree = spanning_tree(pattern)
    print(f"query: {pattern.num_nodes} nodes, {pattern.num_edges} edges; "
          f"spanning tree root {tree.root}, "
          f"{len(non_tree)} non-tree edge(s) to verify")

    # One MatchEngine owns the offline artifacts; both kGPM variants share
    # them (kGPM bidirects the data graph, so build the index over that).
    shared = MatchEngine(graph.bidirected(), backend="full")
    plus = KGPMEngine(
        graph, tree_algorithm="topk-en",
        closure=shared.closure, store=shared.store,
    )
    base = KGPMEngine(
        graph, tree_algorithm="dp-b", closure=plus.closure, store=plus.store
    )

    started = time.perf_counter()
    top_plus = plus.top_k(pattern, 5)
    t_plus = time.perf_counter() - started
    started = time.perf_counter()
    top_base = base.top_k(pattern, 5)
    t_base = time.perf_counter() - started

    assert [m.score for m in top_plus] == [m.score for m in top_base]
    print(f"\nmtree+ (Topk-EN inside): {t_plus * 1000:.1f} ms, "
          f"consumed {plus.stats.tree_matches_consumed} tree matches")
    print(f"mtree  (DP-B inside):    {t_base * 1000:.1f} ms, "
          f"consumed {base.stats.tree_matches_consumed} tree matches")

    if top_plus:
        print("\nbest pattern matches (score sums ALL query-edge distances):")
        for rank, match in enumerate(top_plus, start=1):
            nodes = {q: n for q, n in sorted(match.assignment.items())}
            print(f"  #{rank}  score={match.score:g}  {nodes}")
    else:
        print("\nno match for this pattern — try another seed")


if __name__ == "__main__":
    main()
