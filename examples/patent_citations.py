"""Patent/citation impact analysis — the paper's Figure 1 scenario at scale.

Generates a DBLP-like citation network, then finds the k patent triples
(CS -> Economy, CS -> Social Science) with the closest citation
relationships, comparing the lazy Topk-EN engine against the full-load
Topk and reporting how little of the run-time graph the lazy engine
touched.  Run with::

    python examples/patent_citations.py [num_nodes]
"""

from __future__ import annotations

import sys
import time

from repro import MatchEngine, to_dsl
from repro.core import TopkEnumerator, TopkEN
from repro.graph import citation_graph
from repro.runtime import build_runtime_graph
from repro.workloads import random_query_tree


def main(num_nodes: int = 2500) -> None:
    print(f"building citation network with {num_nodes} papers...")
    graph = citation_graph(num_nodes, num_labels=60, seed=42)
    print(f"  {graph.num_nodes} nodes, {graph.num_edges} citation edges, "
          f"{len(graph.labels())} venues")

    # The engine owns the offline artifacts (full closure + block store).
    engine = MatchEngine(graph, backend="full", block_size=64)
    closure = engine.closure
    store = engine.store
    print(f"  transitive closure: {closure.num_pairs} pairs "
          f"in {engine.backend.build_seconds:.2f}s "
          f"(theta = {closure.average_theta():.0f})")

    # A 12-node twig extracted from the data itself (always realizable).
    query = random_query_tree(closure, 12, seed=7)
    print(f"\nquery: {query.num_nodes} venues, root at "
          f"{query.label(query.root)!r}")
    print(f"  declarative form: {to_dsl(query)}")

    # Full-load Topk (Algorithm 1).
    started = time.perf_counter()
    gr = build_runtime_graph(store, query)
    topk = TopkEnumerator(gr)
    full_matches = topk.top_k(10)
    full_seconds = time.perf_counter() - started
    print(f"\nTopk (full run-time graph): {gr.num_edges} edges loaded, "
          f"{full_seconds * 1000:.1f} ms")

    # Lazy Topk-EN (Algorithm 3).
    started = time.perf_counter()
    lazy = TopkEN(store, query)
    lazy.compute_first()
    top1_loads = lazy.stats.edges_loaded
    lazy_matches = lazy.top_k(10)
    lazy_seconds = time.perf_counter() - started
    print(f"Topk-EN (priority access): {top1_loads} edges for the top-1, "
          f"{lazy.stats.edges_loaded} after top-10, "
          f"{lazy_seconds * 1000:.1f} ms")

    assert [m.score for m in full_matches] == [m.score for m in lazy_matches]
    print("\ntop matches (identical for both engines):")
    for rank, match in enumerate(lazy_matches[:5], start=1):
        papers = sorted(match.assignment.values())
        print(f"  #{rank}  score={match.score:g}  papers {papers[:4]}...")

    saved = 1 - top1_loads / max(gr.raw_num_edges, 1)
    print(f"\nfor the top-1 match the lazy engine skipped {saved:.0%} of the "
          f"run-time graph's {gr.raw_num_edges} raw edges — deeper k pulls "
          "in more (the paper's Figure 6(e) trade-off)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2500)
