"""Quickstart: top-k twig matching through the MatchEngine in a dozen lines.

Builds a small labeled citation graph, asks for the three best matches of
a two-branch twig query written in the XPath-style DSL, inspects the
query plan, and streams a few more results lazily.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import LabeledDiGraph, MatchEngine, Q


def main() -> None:
    # A tiny patent-citation graph: nodes are patents labeled with their
    # discipline, edges are citations (cited -> citing direction follows
    # the paper's Figure 1: an edge (C, E) means a CS patent is cited by
    # an Economy patent).
    graph = LabeledDiGraph()
    patents = {
        "p_cs1": "CS", "p_cs2": "CS", "p_cs3": "CS",
        "p_econ1": "Econ", "p_econ2": "Econ",
        "p_soc1": "Soc", "p_soc2": "Soc",
    }
    for patent, area in patents.items():
        graph.add_node(patent, area)
    for tail, head in [
        ("p_cs1", "p_econ1"), ("p_cs1", "p_soc1"),
        ("p_cs2", "p_econ1"), ("p_econ1", "p_soc2"),
        ("p_cs3", "p_econ2"), ("p_econ2", "p_soc1"),
        ("p_cs3", "p_soc2"),
    ]:
        graph.add_edge(tail, head)

    # The twig query of Figure 1(a), written declaratively: a CS patent
    # whose influence reaches both an Economy and a Social-Science patent
    # ('//' semantics).  One string is the whole query.
    query = "CS[Econ]//Soc"

    # Offline: the engine picks and builds a closure backend.  Online:
    # the planner picks an algorithm per query ("auto" by default).
    engine = MatchEngine(graph)
    print(engine.explain(query, k=3).describe())

    matches = engine.top_k(query, k=3)
    print(f"\ntop-{len(matches)} matches (lower score = closer citations):")
    for rank, match in enumerate(matches, start=1):
        chain = ", ".join(
            f"{qnode}={node}" for qnode, node in sorted(match.assignment.items())
        )
        print(f"  #{rank}  score={match.score:g}  {chain}")

    # The fluent builder spells the same query programmatically.
    built = Q("CS").descendant("Econ").descendant("Soc")
    assert [m.score for m in engine.top_k(built, k=3)] == \
        [m.score for m in matches]
    print(f"\nbuilder form Q('CS').descendant('Econ').descendant('Soc') "
          f"== DSL {built.to_dsl()!r}")

    # Streaming: take a couple, then resume without recomputation.
    stream = engine.stream(query)
    first = stream.take(2)
    rest = stream.take(2)
    print(f"\nstreamed scores: {[m.score for m in first]} "
          f"then {[m.score for m in rest]} (no recompute)")

    # The same query through every implemented algorithm — they agree.
    for algorithm in ("dp-b", "dp-p", "topk", "topk-en", "brute-force"):
        scores = [m.score for m in engine.top_k(query, 3, algorithm=algorithm)]
        print(f"  {algorithm:12s} -> scores {scores}")


if __name__ == "__main__":
    main()
