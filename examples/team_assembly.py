"""Team assembly over a professional network — the paper's second scenario.

A company assembles a product team: a lead architect who has worked
(directly or through collaborators) with a backend engineer, a frontend
engineer, a data scientist, and a designer; the data scientist should
additionally know an ML researcher.  Collaboration distance measures how
well people can work together — the top-k tree matches are the k most
tightly-connected candidate teams.

The collaboration graph is undirected, so the example also demonstrates
the Section 5 recipe: bidirect the data graph and run the directed
machinery unchanged.  Run with::

    python examples/team_assembly.py
"""

from __future__ import annotations

import random

from repro import LabeledDiGraph, MatchEngine, QueryTree, to_dsl


ROLES = ["architect", "backend", "frontend", "data-sci", "designer", "ml-res"]


def build_network(num_people: int = 300, seed: int = 3) -> LabeledDiGraph:
    """A random collaboration network with role-labeled people."""
    rng = random.Random(seed)
    graph = LabeledDiGraph()
    for person in range(num_people):
        graph.add_node(f"person{person}", rng.choice(ROLES))
    # Collaboration edges: preferential attachment keeps it connected and
    # gives a few well-connected hubs, like real professional networks.
    pool = [0]
    for person in range(1, num_people):
        for collaborator in {rng.choice(pool), rng.randrange(person)}:
            if collaborator != person:
                graph.add_edge(f"person{person}", f"person{collaborator}")
                pool.append(collaborator)
        pool.append(person)
    return graph


def main() -> None:
    network = build_network()
    undirected = network.bidirected()  # collaboration is symmetric
    print(f"collaboration network: {network.num_nodes} people, "
          f"{network.num_edges} collaborations")

    team_spec = QueryTree(
        {
            "lead": "architect",
            "be": "backend",
            "fe": "frontend",
            "ds": "data-sci",
            "ux": "designer",
            "ml": "ml-res",
        },
        [
            ("lead", "be"),
            ("lead", "fe"),
            ("lead", "ds"),
            ("lead", "ux"),
            ("ds", "ml"),
        ],
    )

    engine = MatchEngine(undirected)
    teams = engine.top_k(team_spec, k=5)

    # Hand-built trees keep their node names in the results; the same
    # query round-trips through the declarative layer as one string.
    print(f"declarative form: {to_dsl(team_spec)}")
    assert [m.score for m in engine.top_k(to_dsl(team_spec), k=5)] == \
        [m.score for m in teams]

    print("\nbest candidate teams (score = total collaboration distance; "
          f"minimum possible {team_spec.num_nodes - 1}):")
    for rank, team in enumerate(teams, start=1):
        lineup = ", ".join(
            f"{role}: {person}" for role, person in sorted(team.assignment.items())
        )
        print(f"  #{rank}  score={team.score:g}")
        print(f"       {lineup}")

    # A perfectly-connected team (all direct collaborations) would score 5.
    if teams and teams[0].score == team_spec.num_nodes - 1:
        print("\nthe top team collaborates pairwise directly — "
              "no intermediaries needed.")
    elif teams:
        print(f"\nclosest available team needs "
              f"{teams[0].score - (team_spec.num_nodes - 1):g} intermediary "
              "hops in total.")


if __name__ == "__main__":
    main()
