"""General twig queries — '/' vs '//' axes, wildcards, duplicate labels.

Models a small product-catalog document graph (XML-ish) and runs the
Section 5 extensions end to end through the MatchEngine's declarative
query layer — every query is one DSL string:

* ``category/product`` — a ``/`` (child) edge, direct containment only,
* ``category//product`` — a ``//`` (descendant) edge, any nesting depth,
* ``category//*[price][review]`` — a wildcard node with two branches,
* ``catalog[product]//product`` — duplicate labels,
* ``catalog//~book`` — label containment (token subsets).

Run with::

    python examples/xml_twig_queries.py
"""

from __future__ import annotations

from repro import LabeledDiGraph, MatchEngine


def build_catalog() -> LabeledDiGraph:
    """catalog -> categories -> products -> (price, review...)."""
    g = LabeledDiGraph()
    nodes = {
        "catalog": "catalog",
        "cat_books": "category",
        "cat_music": "category",
        "shelf_sci": "shelf",
        "book1": "product",
        "book2": "product",
        "album1": "product",
        "price1": "price",
        "price2": "price",
        "price3": "price",
        "rev1": "review",
        "rev2": "review",
        # a token-labeled special edition: containment queries match it
        "book3": "book+special",
    }
    for node, label in nodes.items():
        g.add_node(node, label)
    edges = [
        ("catalog", "cat_books"),
        ("catalog", "cat_music"),
        ("cat_books", "shelf_sci"),
        ("shelf_sci", "book1"),   # book1 nested under a shelf
        ("cat_books", "book2"),   # book2 directly under the category
        ("cat_music", "album1"),
        ("book1", "price1"),
        ("book2", "price2"),
        ("album1", "price3"),
        ("book1", "rev1"),
        ("album1", "rev2"),
        ("cat_books", "book3"),
    ]
    for tail, head in edges:
        g.add_edge(tail, head)
    return g


def show(engine: MatchEngine, query: str, k: int = 10) -> None:
    matches = engine.top_k(query, k=k)
    print(f"\n{query}")
    if not matches:
        print("  (no matches)")
    for match in matches:
        assignment = ", ".join(
            f"{q}={n}" for q, n in sorted(match.assignment.items(), key=str)
        )
        print(f"  score={match.score:g}  {assignment}")


def main() -> None:
    engine = MatchEngine(build_catalog(), backend="full")

    # 1. '//' vs '/': products anywhere under a category vs directly under.
    show(engine, "category//product")
    show(engine, "category/product")

    # 2. Wildcard: any node that has both a price and a review below it.
    show(engine, "category//*[price][review]", k=5)

    # 3. Duplicate labels: two product positions under the same catalog.
    show(engine, "catalog[product]//product", k=3)

    # 4. Containment: labels are token sets; ~book matches 'book+special'.
    show(engine, "catalog//~book", k=3)

    # The compiled semantics are part of the plan:
    print("\n" + engine.explain("category//*[price][review]", k=5).describe())


if __name__ == "__main__":
    main()
