"""General twig queries — '/' vs '//' axes, wildcards, duplicate labels.

Models a small product-catalog document graph (XML-ish) and runs the
Section 5 extensions end to end with Topk-GT:

* a ``/`` (child) edge that only matches direct containment,
* a ``//`` (descendant) edge matching any nesting depth,
* a wildcard node, and
* a query with duplicate labels.

Run with::

    python examples/xml_twig_queries.py
"""

from __future__ import annotations

from repro import LabeledDiGraph, MatchEngine, QueryTree, WILDCARD
from repro.graph.query import EdgeType
from repro.twig import TopkGT


def build_catalog() -> LabeledDiGraph:
    """catalog -> categories -> products -> (price, review...)."""
    g = LabeledDiGraph()
    nodes = {
        "catalog": "catalog",
        "cat_books": "category",
        "cat_music": "category",
        "shelf_sci": "shelf",
        "book1": "product",
        "book2": "product",
        "album1": "product",
        "price1": "price",
        "price2": "price",
        "price3": "price",
        "rev1": "review",
        "rev2": "review",
    }
    for node, label in nodes.items():
        g.add_node(node, label)
    edges = [
        ("catalog", "cat_books"),
        ("catalog", "cat_music"),
        ("cat_books", "shelf_sci"),
        ("shelf_sci", "book1"),   # book1 nested under a shelf
        ("cat_books", "book2"),   # book2 directly under the category
        ("cat_music", "album1"),
        ("book1", "price1"),
        ("book2", "price2"),
        ("album1", "price3"),
        ("book1", "rev1"),
        ("album1", "rev2"),
    ]
    for tail, head in edges:
        g.add_edge(tail, head)
    return g


def show(title, matches):
    print(f"\n{title}")
    if not matches:
        print("  (no matches)")
    for match in matches:
        assignment = ", ".join(
            f"{q}={n}" for q, n in sorted(match.assignment.items(), key=str)
        )
        print(f"  score={match.score:g}  {assignment}")


def main() -> None:
    catalog = build_catalog()
    # TopkGT consumes the closure store directly; the engine builds and
    # owns it (and could persist it with engine.save_index).
    store = MatchEngine(catalog, backend="full").store

    # 1. '//' vs '/': products anywhere under a category vs directly under.
    anywhere = QueryTree(
        {"c": "category", "p": "product"},
        [("c", "p", EdgeType.DESCENDANT)],
    )
    direct = QueryTree(
        {"c": "category", "p": "product"},
        [("c", "p", EdgeType.CHILD)],
    )
    show("category//product (any depth):",
         TopkGT(store, anywhere).top_k(10))
    show("category/product (direct children only):",
         TopkGT(store, direct).top_k(10))

    # 2. Wildcard: any node that has both a price and a review below it.
    wildcard = QueryTree(
        {"root": "category", "any": WILDCARD, "pr": "price", "rv": "review"},
        [("root", "any"), ("any", "pr"), ("any", "rv")],
    )
    show("category//*[.//price][.//review]:",
         TopkGT(store, wildcard).top_k(5))

    # 3. Duplicate labels: two product positions under the same catalog.
    duo = QueryTree(
        {"root": "catalog", "p1": "product", "p2": "product"},
        [("root", "p1"), ("root", "p2")],
    )
    matches = TopkGT(store, duo).top_k(3)
    show("catalog with two product positions (labels repeat):", matches)


if __name__ == "__main__":
    main()
