"""Legacy shim so editable installs work offline (no wheel package available).

All real packaging metadata lives in ``pyproject.toml`` (src layout,
``repro`` console script); this file only keeps ``python setup.py`` /
old-style ``pip install -e .`` flows working.
"""
from setuptools import setup

setup()
