"""repro — reproduction of "Optimal Enumeration: Efficient Top-k Tree
Matching" (Chang et al., PVLDB 8(5), 2015).

Public API tour::

    from repro import LabeledDiGraph, MatchEngine, QueryTree

    graph = LabeledDiGraph()
    graph.add_node("p1", "CS"); graph.add_node("p2", "Econ")
    graph.add_edge("p1", "p2")

    query = QueryTree({0: "CS", 1: "Econ"}, [(0, 1)])
    engine = MatchEngine(graph)           # offline: planned backend
    matches = engine.top_k(query, k=5)    # online: planned algorithm

    print(engine.explain(query).describe())   # inspect the query plan
    stream = engine.stream(query)             # lazy, resumable results
    engine.save_index("dataset.idx.json")     # pay the offline cost once

Subpackages: :mod:`repro.engine` (MatchEngine, planner, streams,
persistence — the primary API), :mod:`repro.graph` (data model &
generators), :mod:`repro.closure` (transitive closure, block store, 2-hop
labels), :mod:`repro.runtime` (run-time graphs and L/H slots),
:mod:`repro.core` (Topk, Topk-EN, DP-B, DP-P), :mod:`repro.twig` (general
twig queries), :mod:`repro.gpm` (graph-pattern matching),
:mod:`repro.workloads` (paper datasets/query sets), :mod:`repro.bench`
(experiment harness).  :class:`TreeMatcher` remains as a deprecated shim.
"""

from repro.core.api import ALGORITHMS, TreeMatcher, top_k_tree_matches
from repro.core.matches import Match
from repro.engine import (
    BACKENDS,
    EngineBuilder,
    EngineConfig,
    MatchEngine,
    QueryPlan,
    ResultStream,
)
from repro.graph.digraph import LabeledDiGraph, graph_from_edges
from repro.graph.query import WILDCARD, EdgeType, QueryGraph, QueryTree

__version__ = "1.1.0"

__all__ = [
    "LabeledDiGraph",
    "graph_from_edges",
    "QueryTree",
    "QueryGraph",
    "EdgeType",
    "WILDCARD",
    "Match",
    "MatchEngine",
    "EngineConfig",
    "EngineBuilder",
    "QueryPlan",
    "ResultStream",
    "BACKENDS",
    "TreeMatcher",
    "top_k_tree_matches",
    "ALGORITHMS",
    "__version__",
]
