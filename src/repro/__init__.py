"""repro — reproduction of "Optimal Enumeration: Efficient Top-k Tree
Matching" (Chang et al., PVLDB 8(5), 2015).

Public API tour::

    from repro import LabeledDiGraph, MatchEngine

    graph = LabeledDiGraph()
    graph.add_node("p1", "CS"); graph.add_node("p2", "Econ")
    graph.add_edge("p1", "p2")

    engine = MatchEngine(graph)               # offline: planned backend
    matches = engine.top_k("CS//Econ", k=5)   # online: XPath-style DSL

Queries are declarative — one string (or fluent builder) covers the
whole paper::

    engine.top_k("A//B[C]", k=5)              # twig with a branch
    engine.top_k("A/B", k=5)                  # '/' = direct edge only
    engine.top_k("A//*[C]", k=5)              # wildcard node
    engine.top_k("A//~db+systems", k=5)       # label containment
    engine.top_k("graph(a:A, b:B, c:C; a-b, b-c, c-a)", k=5)  # cyclic kGPM

    from repro import Q, Pattern
    engine.top_k(Q("A").descendant(Q("B").descendant("C")), k=5)
    engine.top_k(Pattern.from_edges({"a": "A", "b": "B"}, [("a", "b")]), k=5)

    print(engine.explain("A//B[C]").describe())  # inspect the query plan
    stream = engine.stream("A//B[C]")            # lazy, resumable results
    engine.save_index("dataset.ridx")            # pay the offline cost once

Hand-built :class:`QueryTree`/:class:`QueryGraph` objects remain first
class; every form funnels through :func:`repro.query.compile_query`.

For serving concurrent traffic, wrap the engine in a
:class:`repro.service.MatchService` — snapshot-isolated sessions, plan
and result caches, a bounded worker pool, and an incremental update
path::

    from repro import MatchService

    with MatchService(graph, max_workers=4) as service:
        service.top_k("CS//Econ", k=5)                      # caches warm
        service.submit("CS//Econ", 5).result()              # async
        service.apply_updates(edges_added=[("p2", "p1")])   # new snapshot

Subpackages: :mod:`repro.query` (DSL parser, builders, query compiler),
:mod:`repro.engine` (MatchEngine, planner, streams, persistence),
:mod:`repro.service` (concurrent serving: snapshots, caching, workers),
:mod:`repro.delta` (write path: WAL'd delta overlays, compaction
generations), :mod:`repro.shard` (label-range shards, scatter-gather),
:mod:`repro.graph` (data model & generators), :mod:`repro.closure`
(transitive closure, block store, 2-hop labels), :mod:`repro.runtime`
(run-time graphs and L/H slots), :mod:`repro.core` (Topk, Topk-EN, DP-B,
DP-P), :mod:`repro.twig` (general twig queries), :mod:`repro.gpm`
(graph-pattern matching), :mod:`repro.workloads` (paper datasets/query
sets), :mod:`repro.bench` (experiment harness).  :class:`TreeMatcher`
remains as a deprecated shim.
"""

from repro.core.api import ALGORITHMS, TreeMatcher, top_k_tree_matches
from repro.core.matches import Match
from repro.engine import (
    BACKENDS,
    EngineBuilder,
    EngineConfig,
    MatchEngine,
    PreparedQuery,
    QueryPlan,
    ResultStream,
)
from repro.exceptions import (
    QueryError,
    QuerySyntaxError,
    ReproError,
    ServiceError,
)
from repro.graph.digraph import LabeledDiGraph, graph_from_edges
from repro.graph.query import WILDCARD, EdgeType, QueryGraph, QueryTree
from repro.query import CompiledQuery, Pattern, Q, compile_query, parse, to_dsl
from repro.service import MatchService, ServiceResponse, Snapshot, UpdateReport

__version__ = "1.10.0"

__all__ = [
    "LabeledDiGraph",
    "graph_from_edges",
    "QueryTree",
    "QueryGraph",
    "EdgeType",
    "WILDCARD",
    "Match",
    "MatchEngine",
    "PreparedQuery",
    "EngineConfig",
    "EngineBuilder",
    "QueryPlan",
    "ResultStream",
    "MatchService",
    "ServiceResponse",
    "Snapshot",
    "UpdateReport",
    "ServiceError",
    "Q",
    "Pattern",
    "parse",
    "to_dsl",
    "compile_query",
    "CompiledQuery",
    "ReproError",
    "QueryError",
    "QuerySyntaxError",
    "BACKENDS",
    "TreeMatcher",
    "top_k_tree_matches",
    "ALGORITHMS",
    "__version__",
]
