"""Benchmark harness shared by the ``benchmarks/`` suite."""

from repro.bench.experiments import (
    ALGOS,
    PhaseResult,
    Workbench,
    average_runs,
    clear_workbench_cache,
    get_workbench,
    run_algorithm,
)
from repro.bench.figures import print_bars, render_bars
from repro.bench.serving import (
    default_workload,
    print_serving_report,
    serving_benchmark,
)
from repro.bench.harness import (
    DEFAULT_COST_MODEL,
    AlgoRun,
    fmt_seconds,
    measure,
    print_header,
    print_series,
    print_table,
    speedup_summary,
    time_call,
)

__all__ = [
    "ALGOS",
    "Workbench",
    "get_workbench",
    "clear_workbench_cache",
    "PhaseResult",
    "run_algorithm",
    "average_runs",
    "AlgoRun",
    "measure",
    "time_call",
    "print_header",
    "print_table",
    "print_series",
    "fmt_seconds",
    "speedup_summary",
    "DEFAULT_COST_MODEL",
    "render_bars",
    "print_bars",
    "serving_benchmark",
    "print_serving_report",
    "default_workload",
]
