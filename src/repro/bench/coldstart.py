"""Cold-start probe: fresh process, open an index, answer one query.

This module is executed as a *child process* by the bench suite
(``python -m repro.bench.coldstart INDEX QUERY K``) so that the measured
load is genuinely process-fresh — no warm interner, no page cache of
Python objects, no reused closure artifacts.  It times the two phases
the serving story cares about:

* ``load_seconds`` — ``MatchEngine.load``: for a binary ``.ridx`` index
  this is mmap + directory walk (zero-parse); for a JSON index it is the
  full parse + re-encode + block-layout pipeline.
* ``first_query_seconds`` — the first ``top_k`` call, which faults in
  exactly the closure blocks the query touches.

It reports the index file size (= mapped bytes for the binary format)
and the child's peak RSS **in bytes** (normalized across platforms —
Linux ``ru_maxrss`` is KiB, macOS is bytes), so the suite can record the
mapped-vs-resident split.  Output is one JSON object on stdout.
"""

from __future__ import annotations

import json
import os
import sys
import time


def peak_rss_bytes() -> int:
    """This process's peak resident set size, normalized to bytes.

    ``getrusage`` reports ``ru_maxrss`` in platform-dependent units:
    kibibytes on Linux (and most BSDs), bytes on macOS.  Callers must
    never see the raw value — the unit confusion is exactly the bug the
    bench schema's ``peak_rss_unit`` field pins down.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def measure(path: str, query: str, k: int) -> dict:
    """Load ``path``, run one top-k query, report timings and memory."""
    from repro.engine import MatchEngine
    from repro.io import sniff_index_format

    index_bytes = os.path.getsize(path)
    format_name = sniff_index_format(path)
    started = time.perf_counter()
    engine = MatchEngine.load(path)
    load_seconds = time.perf_counter() - started
    started = time.perf_counter()
    matches = engine.top_k(query, k)
    first_query_seconds = time.perf_counter() - started
    return {
        "format": format_name,
        "index_bytes": index_bytes,
        "mapped_bytes": index_bytes if format_name == "binary" else 0,
        "load_seconds": load_seconds,
        "first_query_seconds": first_query_seconds,
        "total_seconds": load_seconds + first_query_seconds,
        "matches": len(matches),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 3:
        print(
            "usage: python -m repro.bench.coldstart INDEX QUERY K",
            file=sys.stderr,
        )
        return 2
    path, query, k = argv[0], argv[1], int(argv[2])
    print(json.dumps(measure(path, query, k), sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
