"""Serve-bench: interpreter vs compiled kernel on hot repeated queries.

The compiled tier exists for exactly one workload shape: the *same*
queries answered over and over against one index — what a serving layer
sees once its plan cache is warm.  This bench isolates the per-request
execution cost on that shape:

* ``interpreter`` — each request builds the interpreter enumerator the
  plan would run without the kernel tier and enumerates top-k (the
  pre-PR-9 warm-serving hot path: plan cached, execution interpreted).
* ``kernel`` — each request starts a fresh ``KernelRun`` over a bound
  program (scalar stdlib-array bind) and enumerates top-k: the warm
  compiled path, where the program and binding caches have hit.
* ``kernel_numpy`` — same, with the numpy-vectorized bind; the bind is
  re-done per request batch up front, so this isolates the vectorized
  lowering (``None`` when numpy is unavailable).

All three modes answer every request identically (the kernel executes
the fully-loaded reference semantics); the recorded ``speedup_kernel``
is the ISSUE-9 / BENCH gate (compiled >= 1.5x interpreter throughput on
this workload).
"""

from __future__ import annotations

import time

from repro.bench.serving import default_workload
from repro.compact import accel
from repro.engine import MatchEngine
from repro.graph.generators import citation_graph
from repro.kernel import bind_program, compile_program


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0.0)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def _drive(run_one, requests: int, num_queries: int) -> dict:
    """Time ``requests`` round-robin calls of ``run_one(query_index)``."""
    for query_index in range(num_queries):  # warm every per-query path
        run_one(query_index)
    latencies = []
    started = time.perf_counter()
    for request in range(requests):
        t0 = time.perf_counter()
        run_one(request % num_queries)
        latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - started
    latencies.sort()
    return {
        "requests": requests,
        "wall_seconds": wall,
        "throughput_qps": requests / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
    }


def compiled_benchmark(
    quick: bool = False,
    seed: int = 0,
    *,
    nodes: int | None = None,
    num_queries: int = 6,
    k: int = 10,
    requests: int | None = None,
) -> dict:
    """The schema-v6 ``compiled`` section: hot repeated queries, 3 modes."""
    nodes = nodes if nodes is not None else (150 if quick else 400)
    requests = requests if requests is not None else (60 if quick else 240)
    graph = citation_graph(nodes, num_labels=12, seed=seed)
    engine = MatchEngine(graph, backend="full")
    queries = default_workload(graph, num_queries=num_queries, seed=seed)

    plans = []
    for dsl in queries:
        compiled = engine.compile(dsl)
        plan = engine.planner.plan(compiled, k)
        matcher = compiled.effective_matcher(engine.config.label_matcher)
        plans.append((dsl, compiled, plan, matcher))

    def interpreter_one(query_index: int) -> None:
        _dsl, compiled, plan, _matcher = plans[query_index]
        engine._build_enumerator(compiled, plan.algorithm).top_k(k)

    interpreter = _drive(interpreter_one, requests, len(plans))

    programs = [compile_program(compiled) for _, compiled, _, _ in plans]
    scalar_bound = [
        bind_program(
            program, engine.store, matcher=matcher, use_numpy=False
        )
        for program, (_, _, _, matcher) in zip(programs, plans)
    ]

    def kernel_one(query_index: int) -> None:
        scalar_bound[query_index].run().top_k(k)

    kernel = _drive(kernel_one, requests, len(plans))

    kernel_numpy = None
    if accel.resolve_numpy(True) is not None:
        numpy_bound = [
            bind_program(
                program, engine.store, matcher=matcher, use_numpy=True
            )
            for program, (_, _, _, matcher) in zip(programs, plans)
        ]

        def kernel_numpy_one(query_index: int) -> None:
            numpy_bound[query_index].run().top_k(k)

        kernel_numpy = _drive(kernel_numpy_one, requests, len(plans))
        kernel_numpy["bind_seconds"] = sum(
            bound.bind_seconds for bound in numpy_bound
        )

    kernel["bind_seconds"] = sum(bound.bind_seconds for bound in scalar_bound)

    interpreter_qps = interpreter["throughput_qps"]
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "seed": seed,
        "k": k,
        "queries": queries,
        "plans": [
            {"query": dsl, "algorithm": plan.algorithm, "tier": plan.tier}
            for dsl, _compiled, plan, _matcher in plans
        ],
        "interpreter": interpreter,
        "kernel": kernel,
        "kernel_numpy": kernel_numpy,
        "speedup_kernel": (
            kernel["throughput_qps"] / interpreter_qps
            if interpreter_qps
            else 0.0
        ),
        "speedup_kernel_numpy": (
            kernel_numpy["throughput_qps"] / interpreter_qps
            if kernel_numpy is not None and interpreter_qps
            else None
        ),
    }
