"""Shared experiment setup: cached workbenches and phase-split runs.

A *workbench* bundles one dataset with a fully materialized
:class:`~repro.engine.MatchEngine` (the offline artifacts: closure +
block store); it is cached per (dataset, scale, block size) so a
benchmark session pays each closure once.

:func:`run_algorithm` executes one algorithm on one query with the phase
split the paper plots: top-1 generation (Figure 6(c)(d)) and subsequent
enumeration (Figure 6(e)(f)), each with CPU and simulated-I/O seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import AlgoRun, measure
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.baseline_dp import DPBEnumerator
from repro.core.baseline_dpp import DPPEnumerator
from repro.core.matches import Match
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.engine import MatchEngine
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QueryTree
from repro.runtime.graph import RuntimeGraph, build_runtime_graph
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.workloads.datasets import DEFAULT_SCALE, build_dataset
from repro.workloads.queries import random_query_tree

#: Paper algorithm names in presentation order.
ALGOS = ("DP-B", "DP-P", "Topk", "Topk-EN")


@dataclass
class Workbench:
    """One dataset with its offline artifacts (engine-backed)."""

    name: str
    scale: float
    graph: LabeledDiGraph
    closure: TransitiveClosure
    store: ClosureStore
    closure_seconds: float
    engine: MatchEngine | None = None

    def query(self, size: int, seed: int = 0, distinct_labels: bool = True) -> QueryTree:
        """A realizable random query tree over this dataset."""
        return random_query_tree(
            self.closure, size, distinct_labels=distinct_labels, seed=seed
        )

    def queries(
        self, size: int, count: int, seed: int = 0, distinct_labels: bool = True
    ) -> list[QueryTree]:
        """``count`` independent queries (the paper's T<size> sets)."""
        return [
            self.query(size, seed=seed * 1000 + i, distinct_labels=distinct_labels)
            for i in range(count)
        ]


_CACHE: dict[tuple, Workbench] = {}


def get_workbench(
    name: str = "GD3",
    scale: float = DEFAULT_SCALE,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Workbench:
    """Build (or fetch from cache) the workbench for a paper dataset."""
    key = (name, scale, block_size)
    bench = _CACHE.get(key)
    if bench is not None:
        return bench
    graph = build_dataset(name, scale)
    engine = MatchEngine(graph, backend="full", block_size=block_size)
    bench = Workbench(
        name, scale, graph, engine.closure, engine.store,
        engine.backend.build_seconds, engine=engine,
    )
    _CACHE[key] = bench
    return bench


def clear_workbench_cache() -> None:
    """Drop cached workbenches (tests use this to bound memory)."""
    _CACHE.clear()


@dataclass
class PhaseResult:
    """One algorithm execution, split into the paper's phases."""

    algorithm: str
    top1: AlgoRun
    enumeration: AlgoRun
    matches: list[Match] = field(default_factory=list)
    runtime_graph: RuntimeGraph | None = None
    engine_stats: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.top1.total_seconds + self.enumeration.total_seconds

    @property
    def top1_seconds(self) -> float:
        return self.top1.total_seconds

    @property
    def enum_seconds(self) -> float:
        return self.enumeration.total_seconds


def run_algorithm(
    store: ClosureStore, query: QueryTree, k: int, algorithm: str
) -> PhaseResult:
    """Execute ``algorithm`` on ``query`` with phase-split measurement.

    For the fully-loaded algorithms (Topk, DP-B) the top-1 phase includes
    identifying and loading the run-time graph, exactly as the paper
    attributes the load I/O to their top-1 bars in Figure 6(c)(d).
    """
    counter = store.counter
    if algorithm in ("Topk", "DP-B"):
        holder: dict = {}

        def build_and_init():
            gr = build_runtime_graph(store, query)
            holder["gr"] = gr
            if algorithm == "Topk":
                engine = TopkEnumerator(gr)
            else:
                engine = DPBEnumerator(gr)
            holder["engine"] = engine
            return engine.top1_score()

        top1_run, _ = measure(algorithm, counter, build_and_init, phase="top1")
        engine = holder["engine"]
        enum_run, matches = measure(
            algorithm, counter, lambda: engine.top_k(k), phase="enum"
        )
        return PhaseResult(
            algorithm,
            top1_run,
            enum_run,
            matches,
            runtime_graph=holder["gr"],
            engine_stats=vars(engine.stats),
        )

    if algorithm in ("Topk-EN", "DP-P"):
        holder = {}

        def init_and_first():
            if algorithm == "Topk-EN":
                engine = TopkEN(store, query)
            else:
                engine = DPPEnumerator(store, query)
            holder["engine"] = engine
            return engine.compute_first()

        top1_run, _ = measure(algorithm, counter, init_and_first, phase="top1")
        engine = holder["engine"]
        enum_run, matches = measure(
            algorithm, counter, lambda: engine.top_k(k), phase="enum"
        )
        return PhaseResult(
            algorithm, top1_run, enum_run, matches, engine_stats=vars(engine.stats)
        )

    raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGOS}")


def average_runs(
    store: ClosureStore,
    queries: list[QueryTree],
    k: int,
    algorithm: str,
) -> dict[str, float]:
    """Average phase timings of one algorithm over a query set."""
    total = top1 = enum = io = 0.0
    edges_loaded = 0
    for query in queries:
        result = run_algorithm(store, query, k, algorithm)
        total += result.total_seconds
        top1 += result.top1_seconds
        enum += result.enum_seconds
        io += result.top1.io_seconds + result.enumeration.io_seconds
        edges_loaded += result.engine_stats.get("edges_loaded", 0)
    n = max(len(queries), 1)
    return {
        "total": total / n,
        "top1": top1 / n,
        "enum": enum / n,
        "io": io / n,
        "edges_loaded": edges_loaded / n,
    }
