"""ASCII rendering of benchmark figures.

The paper presents most results as grouped log-scale bar charts.  This
module renders the same series as text bars so benchmark reports carry a
visual summary alongside the numeric tables — useful in CI logs and the
``benchmarks/results/`` records.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Width of the bar area in characters.
BAR_WIDTH = 40


def _log_fraction(value: float, lo: float, hi: float) -> float:
    """Position of ``value`` on a log scale from ``lo`` to ``hi`` in [0,1]."""
    if value <= 0 or hi <= lo:
        return 0.0
    span = math.log10(hi) - math.log10(lo)
    if span <= 0:
        return 1.0
    frac = (math.log10(value) - math.log10(lo)) / span
    return min(max(frac, 0.0), 1.0)


def render_bars(
    series: dict[str, Sequence[float]],
    x_labels: Sequence,
    unit: str = "s",
    width: int = BAR_WIDTH,
) -> str:
    """Render grouped horizontal bars (log scale), one group per x value.

    ``series`` maps a series name to one value per x label; non-positive
    or missing values render as empty bars.  Returns a multi-line string.
    """
    values = [
        v
        for vs in series.values()
        for v in vs
        if v is not None and v > 0
    ]
    if not values:
        return "(no positive values to plot)\n"
    lo = min(values)
    hi = max(values)
    # Give the smallest value a visible stub by extending the range a bit.
    lo_axis = lo / 2
    name_width = max(len(name) for name in series)
    lines: list[str] = []
    for i, x in enumerate(x_labels):
        lines.append(f"{x}:")
        for name, vs in series.items():
            value = vs[i] if i < len(vs) else None
            if value is None or value <= 0:
                bar = ""
                shown = "-"
            else:
                frac = _log_fraction(value, lo_axis, hi)
                bar = "#" * max(1, round(frac * width))
                shown = f"{value:.4g}{unit}"
            lines.append(f"  {name.ljust(name_width)} |{bar.ljust(width)}| {shown}")
    lines.append(
        f"  (log scale: {lo_axis:.3g}{unit} .. {hi:.4g}{unit})"
    )
    return "\n".join(lines) + "\n"


def print_bars(
    series: dict[str, Sequence[float]],
    x_labels: Sequence,
    unit: str = "s",
    title: str = "",
) -> None:
    """Print :func:`render_bars` output with an optional title line."""
    if title:
        print(f"-- {title}")
    print(render_bars(series, x_labels, unit=unit), end="")
