"""Experiment harness: timing, I/O split, and table/series reporting.

Every benchmark in ``benchmarks/`` funnels through this module so that
all tables and figures are printed in one consistent format:

* :func:`time_call` — wall-clock one call, returning (seconds, result).
* :class:`AlgoRun` — one measured algorithm execution with CPU seconds,
  simulated I/O seconds (from the metered block store and the
  :class:`~repro.storage.iostats.IOCostModel`), and engine statistics.
* :func:`print_table` / :func:`print_series` — the rows/series the paper
  reports, echoed to stdout so ``pytest benchmarks/ --benchmark-only``
  output doubles as the experiment record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.storage.iostats import IOCostModel, IOCounter

#: Cost model shared by all benchmarks (see DESIGN.md substitutions).
DEFAULT_COST_MODEL = IOCostModel()


def time_call(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` once and return ``(elapsed_seconds, result)``."""
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


@dataclass
class AlgoRun:
    """One measured algorithm execution."""

    algorithm: str
    cpu_seconds: float
    io_counter: IOCounter
    cost_model: IOCostModel = DEFAULT_COST_MODEL
    detail: dict = field(default_factory=dict)

    @property
    def io_seconds(self) -> float:
        """Simulated I/O time for the blocks this run touched."""
        return self.cost_model.io_seconds(self.io_counter)

    @property
    def total_seconds(self) -> float:
        """CPU + simulated I/O — the paper's "total time"."""
        return self.cpu_seconds + self.io_seconds


def measure(
    algorithm: str,
    counter: IOCounter,
    fn: Callable[[], Any],
    cost_model: IOCostModel = DEFAULT_COST_MODEL,
    **detail,
) -> tuple[AlgoRun, Any]:
    """Run ``fn`` with I/O metering isolated to this call."""
    before = counter.snapshot()
    cpu, result = time_call(fn)
    delta = counter.delta_since(before)
    run = AlgoRun(algorithm, cpu, delta, cost_model, detail=dict(detail))
    return run, result


def fmt_seconds(seconds: float) -> str:
    """Human-scaled duration: us/ms/s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:7.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds:7.3f}s "


def print_header(title: str, subtitle: str = "") -> None:
    """Banner for one experiment (table/figure id + workload)."""
    line = "=" * max(len(title), len(subtitle), 60)
    print()
    print(line)
    print(title)
    if subtitle:
        print(subtitle)
    print(line)


def print_table(
    columns: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> None:
    """Fixed-width table, one row per sequence in ``rows``."""
    if title:
        print(f"-- {title}")
    widths = [len(str(c)) for c in columns]
    str_rows = [[_cell(x) for x in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    print(header)
    print("  ".join("-" * w for w in widths))
    for row in str_rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def print_series(
    x_name: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    title: str = "",
    unit: str = "s",
) -> None:
    """A figure as text: one column per x value, one row per series."""
    columns = [x_name] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        rows.append([name] + [f"{v:.5g}{unit}" if v is not None else "-" for v in values])
    print_table(columns, rows, title=title)


def speedup_summary(series: dict[str, Sequence[float]], baseline: str, over: str) -> str:
    """Geometric-mean speedup of ``over`` relative to ``baseline``."""
    base = series[baseline]
    fast = series[over]
    ratios = [b / f for b, f in zip(base, fast) if f and b]
    if not ratios:
        return f"{over} vs {baseline}: n/a"
    product = 1.0
    for r in ratios:
        product *= r
    gmean = product ** (1.0 / len(ratios))
    return f"{over} is {gmean:.1f}x faster than {baseline} (geo-mean over {len(ratios)} points)"
