"""Mixed read/write serving benchmark (BENCH schema v4 section).

Measures what the write-ahead delta overlay buys under sustained write
traffic, on the same deterministic citation workload as the rest of the
suite:

* **apply latency** — the same single-edge update stream applied three
  ways: the *delta* path (validate + WAL-log + return, fold deferred),
  the *eager* path (incremental backend refresh before returning), and
  the naive *rebuild* baseline (a fresh :class:`MatchEngine` per batch
  — what a snapshot-per-write serving layer would pay).  The headline
  number is ``apply_speedup_vs_rebuild``: deferred logging versus
  whole-snapshot reconstruction.
* **reads during writes** — a writer thread streams updates through the
  delta path while reader threads time every query client-side; read
  latency includes any fold a reader triggers, so the p50/p99 are the
  honest sustained-traffic numbers.
* **reads during compaction** — the same read clock while ``compact()``
  folds the accumulated overlay and writes the next ``.ridx``
  generation in the background; the acceptance bar is read p50 staying
  in family with the quiet baseline (compaction must not stall reads).

Every run seeds its own RNG, so the update stream is reproducible;
``quick=True`` shrinks the scenario for CI smoke runs.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.suite import build_workload
from repro.engine import MatchEngine
from repro.query import to_dsl
from repro.service import MatchService

#: The fixed scenario; ``quick=True`` shrinks it for CI smoke runs.
FULL_SCENARIO = {
    "nodes": 400,
    "labels": 12,
    "updates": 24,
    "read_requests": 60,
    "k": 10,
    "num_queries": 3,
    "rebuild_updates": 6,
}
QUICK_SCENARIO = {
    "nodes": 120,
    "labels": 8,
    "updates": 8,
    "read_requests": 16,
    "k": 5,
    "num_queries": 2,
    "rebuild_updates": 3,
}


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0.0)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def _update_stream(graph, count: int, seed: int) -> list[tuple]:
    """``count`` deterministic new edges between existing nodes."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    seen = {(tail, head) for tail, head, _weight in graph.edges()}
    edges: list[tuple] = []
    while len(edges) < count:
        tail, head = rng.choice(nodes), rng.choice(nodes)
        if tail == head or (tail, head) in seen:
            continue
        seen.add((tail, head))
        edges.append((tail, head))
    return edges


def _latency_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    total = sum(ordered)
    return {
        "batches": len(ordered),
        "total_seconds": total,
        "mean_ms": (total / len(ordered)) * 1e3 if ordered else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
    }


def _read_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "requests": len(ordered),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
    }


def _timed_reads(service, queries, k: int, count: int) -> list[float]:
    latencies = []
    for index in range(count):
        started = time.perf_counter()
        service.top_k(queries[index % len(queries)], k)
        latencies.append(time.perf_counter() - started)
    return latencies


def mixed_rw_benchmark(
    quick: bool = False, seed: int = 0, **overrides
) -> dict:
    """Run the mixed read/write scenario and return the v4 section."""
    scenario = dict(QUICK_SCENARIO if quick else FULL_SCENARIO)
    scenario.update({k: v for k, v in overrides.items() if v is not None})
    graph, queries = build_workload(
        scenario["nodes"], scenario["labels"], seed, scenario["num_queries"]
    )
    query_texts = [to_dsl(query) for query in queries]
    k = scenario["k"]
    edges = _update_stream(graph, scenario["updates"], seed)

    # -- apply latency: delta vs eager vs whole-snapshot rebuild --------
    delta_lat: list[float] = []
    with MatchService(
        graph, backend="full", update_policy="delta", auto_compact=False
    ) as service:
        for edge in edges:
            started = time.perf_counter()
            service.apply_updates(edges_added=[edge])
            delta_lat.append(time.perf_counter() - started)
        service.top_k(query_texts[0], k)  # fold once; correctness probe

    eager_lat: list[float] = []
    with MatchService(
        graph, backend="full", update_policy="eager", auto_compact=False
    ) as service:
        for edge in edges:
            started = time.perf_counter()
            service.apply_updates(edges_added=[edge])
            eager_lat.append(time.perf_counter() - started)

    # The naive baseline rebuilds the whole snapshot per write; a few
    # batches suffice for a stable mean (it is orders slower).
    rebuild_lat: list[float] = []
    rebuild_graph = graph.copy()
    for edge in edges[: scenario["rebuild_updates"]]:
        started = time.perf_counter()
        rebuild_graph.add_edge(*edge)
        MatchEngine(rebuild_graph, backend="full")
        rebuild_lat.append(time.perf_counter() - started)

    delta_apply = _latency_summary(delta_lat)
    eager_apply = _latency_summary(eager_lat)
    rebuild_apply = _latency_summary(rebuild_lat)

    # -- read latency: quiet baseline, during writes, during compaction -
    with tempfile.TemporaryDirectory(prefix="repro-mixedrw-") as tmp:
        index_path = Path(tmp) / "index.ridx"
        MatchEngine(graph, backend="full").save_index(
            index_path, format="binary"
        )
        with MatchService.from_index(
            index_path,
            wal_path=Path(tmp) / "index.wal",
            auto_compact=False,
        ) as service:
            baseline = _timed_reads(
                service, query_texts, k, scenario["read_requests"]
            )

            writer_done = threading.Event()

            def writer() -> None:
                for edge in edges:
                    service.apply_updates(edges_added=[edge])
                    time.sleep(0.001)
                writer_done.set()

            writer_thread = threading.Thread(target=writer, daemon=True)
            writer_thread.start()
            during_writes: list[float] = []
            read_cap = 4 * scenario["read_requests"]
            while (
                not writer_done.is_set() or not during_writes
            ) and len(during_writes) < read_cap:
                during_writes.extend(
                    _timed_reads(service, query_texts, k, 4)
                )
            writer_thread.join()

            compaction_seconds = [0.0]

            def compactor() -> None:
                started = time.perf_counter()
                service.compact()
                compaction_seconds[0] = time.perf_counter() - started

            compact_thread = threading.Thread(target=compactor, daemon=True)
            compact_thread.start()
            during_compaction = _timed_reads(
                service, query_texts, k, scenario["read_requests"]
            )
            compact_thread.join()

    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "seed": seed,
        "k": k,
        "queries": query_texts,
        "updates": scenario["updates"],
        "delta_apply": delta_apply,
        "eager_apply": eager_apply,
        "rebuild_apply": rebuild_apply,
        "apply_speedup_vs_rebuild": (
            rebuild_apply["mean_ms"] / delta_apply["mean_ms"]
            if delta_apply["mean_ms"]
            else 0.0
        ),
        "read_baseline": _read_summary(baseline),
        "reads_during_writes": _read_summary(during_writes),
        "reads_during_compaction": _read_summary(during_compaction),
        "compaction_seconds": compaction_seconds[0],
    }
