"""Replicated-shard failover benchmark (BENCH schema v5 section).

Measures what replication buys on the serving path: the same
deterministic workload is driven through a
:class:`~repro.service.ShardedMatchService` three ways —

* **baseline** — R=2, nobody dies (the steady-state cost of the
  replicated tier);
* **failover** — R=2, one replica of *every* shard is SIGKILL'd
  mid-run; subsequent scatters fail over to the surviving peer while
  the dead worker respawns in the background, so no request ever sees
  a ``ShardUnavailableError``;
* **single_restart** — R=1, the sole worker of every shard is
  SIGKILL'd mid-run; the next scatter to each shard has nowhere to
  fail over and pays the full inline worker restart (engine rebuild
  included) before it can answer.

The post-kill tail latency of the failover run against the
single-restart run (``failover_post_kill_p99_speedup``) is the
headline: it is the availability gap replication closes.  All calls
are timed from one client thread so every post-kill request is
attributed precisely; as with the sharding section, ``cpu_count`` is
recorded and the validator checks shape, never speedups.
"""

from __future__ import annotations

import os
import time

from repro.bench.sharding import _percentile
from repro.bench.suite import build_workload
from repro.query import to_dsl
from repro.service import ShardedMatchService

#: The fixed scenario; ``quick=True`` shrinks it for CI smoke runs.
FULL_SCENARIO = {
    "nodes": 300,
    "labels": 10,
    "requests": 60,
    "kill_at": 20,
    "k": 10,
    "num_queries": 3,
    "shards": 2,
    "replication": 2,
}
QUICK_SCENARIO = {
    "nodes": 120,
    "labels": 8,
    "requests": 18,
    "kill_at": 6,
    "k": 5,
    "num_queries": 2,
    "shards": 2,
    "replication": 2,
}


def _drive_with_kill(
    service, queries, requests: int, k: int, kill_at: int | None
) -> dict:
    """Serial request loop; SIGKILL one replica per shard at ``kill_at``.

    Victim selection is deliberately brutal: the *preferred* replica
    (index 0) of every shard dies at once, so the very next scatter to
    each shard hits the failure path.  Latencies before and after the
    kill are kept separately — the post-kill figures are the ones the
    replication section exists to record.
    """
    pre: list[float] = []
    post: list[float] = []
    service.top_k(queries[0], k)  # warm pipes/caches: measure steady state
    started = time.perf_counter()
    for index in range(requests):
        if kill_at is not None and index == kill_at:
            for group in service._shards:
                group.replicas[0].process.kill()
        query = queries[index % len(queries)]
        call_started = time.perf_counter()
        service.top_k(query, k)
        elapsed = time.perf_counter() - call_started
        (post if kill_at is not None and index >= kill_at else pre).append(
            elapsed
        )
    wall = time.perf_counter() - started
    pre.sort()
    post.sort()
    stats = service.statistics()
    run = {
        "requests": requests,
        "wall_seconds": wall,
        "throughput_qps": requests / wall if wall else 0.0,
        "p50_ms": _percentile(sorted(pre + post), 0.50) * 1e3,
        "p99_ms": _percentile(sorted(pre + post), 0.99) * 1e3,
        "failovers": stats["failovers"],
        "worker_restarts": stats["worker_restarts"],
    }
    if kill_at is not None:
        run.update(
            {
                "kill_at": kill_at,
                "post_kill_p50_ms": _percentile(post, 0.50) * 1e3,
                "post_kill_p99_ms": _percentile(post, 0.99) * 1e3,
                "post_kill_max_ms": (post[-1] if post else 0.0) * 1e3,
            }
        )
    return run


def replication_failover(quick: bool = False, seed: int = 0, **overrides) -> dict:
    """Run the scenario and return the BENCH v5 ``replication`` section."""
    scenario = dict(QUICK_SCENARIO if quick else FULL_SCENARIO)
    scenario.update({k: v for k, v in overrides.items() if v is not None})
    graph, query_trees = build_workload(
        scenario["nodes"], scenario["labels"], seed, scenario["num_queries"]
    )
    queries = [to_dsl(query) for query in query_trees]
    requests, k = scenario["requests"], scenario["k"]
    shards, replication = scenario["shards"], scenario["replication"]
    kill_at = scenario["kill_at"]

    with ShardedMatchService(
        graph, num_shards=shards, replication=replication
    ) as service:
        baseline = _drive_with_kill(service, queries, requests, k, None)
    with ShardedMatchService(
        graph, num_shards=shards, replication=replication
    ) as service:
        failover = _drive_with_kill(service, queries, requests, k, kill_at)
    with ShardedMatchService(graph, num_shards=shards) as service:
        single_restart = _drive_with_kill(service, queries, requests, k, kill_at)

    restart_p99 = single_restart["post_kill_p99_ms"]
    return {
        "cpu_count": os.cpu_count() or 1,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "labels": len(graph.labels()),
        "seed": seed,
        "k": k,
        "queries": queries,
        "shards": shards,
        "replication": replication,
        "baseline": baseline,
        "failover": failover,
        "single_restart": single_restart,
        "failover_post_kill_p99_speedup": (
            restart_p99 / failover["post_kill_p99_ms"]
            if failover["post_kill_p99_ms"]
            else 0.0
        ),
    }
