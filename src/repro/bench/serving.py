"""Serving-layer throughput benchmark: cached vs uncached, 1-N workers.

Quantifies what :class:`repro.service.MatchService` buys over per-call
library use for a repeated-query workload:

* ``cold_engine`` — the pre-service baseline: a fresh
  :class:`~repro.engine.MatchEngine` per request (every call pays the
  offline closure build *and* parse/plan/execute).
* ``service_cold`` — one service, first pass over the workload: the
  offline cost is paid once and the caches fill.
* ``service_warm`` — the same workload again: plan + result caches hot.
* ``workers`` — scaling of the bounded pool with the result cache *off*
  (every request does real planning/enumeration work), 1..N workers.

``serving_benchmark`` returns a plain dict of rows so tests can assert
on it and the CLI (``repro serve-bench``) can print it.  Wall-clock
numbers are machine-dependent; the cached-vs-uncached *ratio* is the
stable, meaningful output.
"""

from __future__ import annotations

import time

from repro.engine.core import MatchEngine
from repro.graph.generators import citation_graph
from repro.query.compiler import escape_label
from repro.service import MatchService
from repro.utils.rng import make_rng


def default_workload(graph, num_queries: int = 6, seed: int = 0) -> list[str]:
    """A deterministic mix of 2- and 3-node DSL queries over the graph's
    own labels (so candidate sets are non-trivial).

    Labels are ``{...}``-escaped like the canonical printer, so graphs
    whose labels are not bare words (``cs.AI``, ``db systems``) work.
    """
    if num_queries <= 0:
        raise ValueError(f"num_queries must be positive, got {num_queries}")
    rng = make_rng(seed)
    labels = sorted(graph.labels(), key=repr)
    if len(labels) < 2:
        raise ValueError("workload needs a graph with at least 2 labels")
    queries: list[str] = []
    for i in range(num_queries):
        picked = [
            escape_label(str(label))
            for label in rng.sample(labels, min(3, len(labels)))
        ]
        if i % 2 == 0 or len(picked) < 3:
            queries.append(f"{picked[0]}//{picked[1]}")
        else:
            queries.append(f"{picked[0]}//{picked[1]}[{picked[2]}]")
    return queries


def _requests_of(queries: list[str], total: int) -> list[str]:
    """Round-robin the query mix out to ``total`` requests."""
    return [queries[i % len(queries)] for i in range(total)]


def serving_benchmark(
    graph=None,
    *,
    num_nodes: int = 300,
    num_queries: int = 6,
    k: int = 10,
    requests: int = 120,
    cold_requests: int = 12,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    backend: str = "full",
    seed: int = 0,
) -> dict:
    """Run the serving benchmark; returns a result dict (see module doc).

    ``cold_requests`` bounds the per-call-engine baseline sample (each of
    those requests rebuilds the closure, so the full request count would
    be needlessly slow); its throughput extrapolates linearly.
    """
    if requests <= 0:
        raise ValueError(f"requests must be positive, got {requests}")
    if graph is None:
        graph = citation_graph(num_nodes, num_labels=12, seed=seed)
    queries = default_workload(graph, num_queries=num_queries, seed=seed)
    workload = _requests_of(queries, requests)

    # Baseline: a fresh engine per request.
    sample = workload[: max(1, min(cold_requests, len(workload)))]
    started = time.perf_counter()
    for query in sample:
        MatchEngine(graph, backend=backend).top_k(query, k)
    cold_engine_seconds = time.perf_counter() - started
    cold_engine_rps = len(sample) / cold_engine_seconds

    # One service, cold then warm caches.
    with MatchService(graph, backend=backend, max_workers=1) as service:
        started = time.perf_counter()
        for query in workload:
            service.top_k(query, k)
        service_cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        for query in workload:
            service.top_k(query, k)
        service_warm_seconds = time.perf_counter() - started
        cache_stats = service.statistics()

    worker_rows = []
    for count in workers:
        with MatchService(
            graph, backend=backend, max_workers=count,
            result_cache_size=0, max_pending=max(64, 2 * requests),
        ) as service:
            started = time.perf_counter()
            futures = [service.submit(query, k) for query in workload]
            for future in futures:
                future.result()
            elapsed = time.perf_counter() - started
        worker_rows.append(
            {
                "workers": count,
                "seconds": elapsed,
                "requests_per_second": len(workload) / elapsed,
            }
        )

    service_warm_rps = len(workload) / service_warm_seconds
    return {
        "graph_nodes": graph.num_nodes,
        "graph_edges": graph.num_edges,
        "backend": backend,
        "k": k,
        "queries": queries,
        "requests": len(workload),
        "cold_engine": {
            "requests": len(sample),
            "seconds": cold_engine_seconds,
            "requests_per_second": cold_engine_rps,
        },
        "service_cold": {
            "requests": len(workload),
            "seconds": service_cold_seconds,
            "requests_per_second": len(workload) / service_cold_seconds,
        },
        "service_warm": {
            "requests": len(workload),
            "seconds": service_warm_seconds,
            "requests_per_second": service_warm_rps,
        },
        "warm_speedup_vs_cold_engine": service_warm_rps / cold_engine_rps,
        "plan_cache": cache_stats["plan_cache"],
        "result_cache": cache_stats["result_cache"],
        "workers": worker_rows,
    }


def print_serving_report(report: dict, out=None) -> None:
    """Human-readable rendering of a :func:`serving_benchmark` result."""
    import sys

    out = out if out is not None else sys.stdout

    def line(text: str = "") -> None:
        print(text, file=out)

    line(
        f"serving benchmark: {report['graph_nodes']} nodes / "
        f"{report['graph_edges']} edges, backend={report['backend']}, "
        f"k={report['k']}, {report['requests']} requests over "
        f"{len(report['queries'])} distinct queries"
    )
    line(f"{'mode':<22}{'requests':>9}{'seconds':>10}{'req/s':>10}")
    for mode in ("cold_engine", "service_cold", "service_warm"):
        row = report[mode]
        line(
            f"{mode:<22}{row['requests']:>9}{row['seconds']:>10.3f}"
            f"{row['requests_per_second']:>10.1f}"
        )
    line(
        f"warm service speedup vs per-call engine: "
        f"{report['warm_speedup_vs_cold_engine']:.1f}x"
    )
    line(
        f"plan cache hit rate: {report['plan_cache']['hit_rate']:.0%}   "
        f"result cache hit rate: {report['result_cache']['hit_rate']:.0%}"
    )
    line()
    line("worker scaling (result cache off):")
    line(f"{'workers':<10}{'seconds':>10}{'req/s':>10}")
    for row in report["workers"]:
        line(
            f"{row['workers']:<10}{row['seconds']:>10.3f}"
            f"{row['requests_per_second']:>10.1f}"
        )
