"""Sharded scatter-gather serving benchmark (BENCH schema v3 section).

Measures the multi-process :class:`~repro.service.ShardedMatchService`
against a single-process :class:`~repro.service.MatchService` baseline
on the same deterministic workload: a fixed client pool drives a fixed
request count round-robin over the workload queries, timing every call
client-side, so throughput (requests / wall) and the p50/p99 latency
distribution are directly comparable across shard counts.

The section records ``cpu_count`` alongside the numbers deliberately:
scatter-gather parallelism is *process* parallelism, so on a 1-CPU
runner the sharded configurations pay serialization + pipe overhead
with no compute to overlap and ``speedup_vs_single`` lands below 1.0.
That is the honest reading of the hardware, not a regression — the
validator checks shape, never speedup, and the committed numbers say
what the runner was.
"""

from __future__ import annotations

import os
import threading
import time

from repro.bench.suite import build_workload
from repro.query import to_dsl
from repro.service import MatchService, ShardedMatchService

#: The fixed scenario; ``quick=True`` shrinks it for CI smoke runs.
FULL_SCENARIO = {
    "nodes": 400,
    "labels": 12,
    "requests": 96,
    "k": 10,
    "num_queries": 3,
    "shard_counts": (1, 2, 4, 8),
    "client_counts": (1, 4),
}
QUICK_SCENARIO = {
    "nodes": 120,
    "labels": 8,
    "requests": 24,
    "k": 5,
    "num_queries": 2,
    "shard_counts": (1, 2),
    "client_counts": (2,),
}


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0.0)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def _drive(service, queries, requests: int, k: int, clients: int) -> dict:
    """Fire ``requests`` round-robin calls from ``clients`` threads.

    Every call is timed on its client thread (service time as the
    caller sees it, queueing included); the returned figures are
    requests/second over the whole run plus p50/p99 per-call latency.
    """
    latencies: list[float] = []
    latencies_lock = threading.Lock()
    next_request = iter(range(requests))
    next_lock = threading.Lock()

    def client() -> None:
        while True:
            with next_lock:
                index = next(next_request, None)
            if index is None:
                return
            query = queries[index % len(queries)]
            started = time.perf_counter()
            service.top_k(query, k)
            elapsed = time.perf_counter() - started
            with latencies_lock:
                latencies.append(elapsed)

    # Warm caches/pipes once so the measured phase is steady state.
    service.top_k(queries[0], k)
    started = time.perf_counter()
    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    latencies.sort()
    return {
        "requests": requests,
        "wall_seconds": wall,
        "throughput_qps": requests / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
    }


def sharded_scatter_gather(quick: bool = False, seed: int = 0, **overrides) -> dict:
    """Run the scenario and return the BENCH v3 ``sharding`` section."""
    scenario = dict(QUICK_SCENARIO if quick else FULL_SCENARIO)
    scenario.update({k: v for k, v in overrides.items() if v is not None})
    graph, query_trees = build_workload(
        scenario["nodes"], scenario["labels"], seed, scenario["num_queries"]
    )
    queries = [to_dsl(query) for query in query_trees]
    requests, k = scenario["requests"], scenario["k"]

    # Two baselines: the stock MatchService answers a round-robin
    # workload mostly from its result cache (that is its design and
    # worth recording), but the compute-equivalent comparison for
    # scatter-gather — which re-matches every request — is the baseline
    # with the result cache disabled.
    clients_for_baseline = max(scenario["client_counts"])
    with MatchService(graph, result_cache_size=0) as baseline_service:
        baseline = _drive(
            baseline_service, queries, requests, k, clients=clients_for_baseline
        )
    with MatchService(graph) as cached_service:
        baseline_cached = _drive(
            cached_service, queries, requests, k, clients=clients_for_baseline
        )

    configs = []
    for shards in scenario["shard_counts"]:
        for clients in scenario["client_counts"]:
            with ShardedMatchService(graph, num_shards=shards) as service:
                effective = service.shard_count
                run = _drive(service, queries, requests, k, clients)
            run.update(
                {
                    "shards": shards,
                    "effective_shards": effective,
                    "clients": clients,
                    "speedup_vs_single": (
                        run["throughput_qps"] / baseline["throughput_qps"]
                        if baseline["throughput_qps"]
                        else 0.0
                    ),
                }
            )
            configs.append(run)

    return {
        "cpu_count": os.cpu_count() or 1,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "labels": len(graph.labels()),
        "seed": seed,
        "k": k,
        "queries": queries,
        "baseline": baseline,
        "baseline_cached": baseline_cached,
        "configs": configs,
    }
