"""Canonical perf suite — reproducible, machine-readable ``BENCH_*.json``.

``repro bench suite`` runs a *fixed* workload matrix (closure backends x
matching algorithms x k) over a deterministic synthetic graph and emits
one JSON document that seeds the repository's perf trajectory:

* per-cell wall time, blocks read, tables opened, and match counts from
  the metered block layer;
* per-backend offline build cost via the uniform ``stats()`` schema
  (``pair_count`` / ``bytes_estimate`` / ``build_seconds``);
* a **compact-vs-dict closure comparison**: the same all-pairs rows held
  as the historical dict-of-dicts versus the interned array layout of
  :mod:`repro.compact` (resident bytes, build seconds);
* a **block-pull comparison**: streaming every ``L^alpha_beta`` table
  block by block from the pre-compact tuple-list store layout versus the
  columnar O(1)-slice layout (the identification read of Section 3.1);
* a **cold-start comparison** (since schema version 2): a *fresh child
  process* per format opens a persisted index and answers its first
  query — JSON parse-everything versus the binary mmap-paged ``.ridx``
  layout of :mod:`repro.storage.diskindex` — reporting load and
  first-query latency plus mapped versus resident bytes.

All memory figures are normalized to **bytes** (schema v2 carries an
explicit ``peak_rss_unit`` field the validator asserts — the historical
``ru_maxrss`` value is KiB on Linux but bytes on macOS, and v1 documents
recorded the platform-dependent number unchecked).

* a **sharded scatter-gather serving comparison** (since schema
  version 3): multi-process :class:`~repro.service.ShardedMatchService`
  throughput and latency percentiles across shard counts against a
  single-process :class:`~repro.service.MatchService` baseline, with
  ``cpu_count`` recorded so the numbers are readable on any runner
  (see :mod:`repro.bench.sharding`).

* a **mixed read/write serving comparison** (since schema version 4):
  per-batch apply latency through the write-ahead delta overlay versus
  the eager incremental path versus a whole-snapshot rebuild
  (``apply_speedup_vs_rebuild`` is the headline), plus read latency
  percentiles while a writer streams updates and while ``compact()``
  folds the overlay into the next ``.ridx`` generation
  (see :mod:`repro.bench.mixed_rw`).

* a **replicated-shard failover comparison** (since schema version 5):
  post-kill tail latency of an R=2 sharded service failing over to the
  surviving replica versus an R=1 service paying the full inline
  worker restart, on the same SIGKILL-one-worker-per-shard schedule
  (see :mod:`repro.bench.replication`).

* a **compiled-kernel serving comparison** (since schema version 6):
  hot repeated-query throughput and latency of the interpreter
  enumerator versus the compiled flat-opcode kernel (scalar and
  numpy-vectorized binds), with ``speedup_kernel`` as the headline
  (see :mod:`repro.bench.compiled`).

The document schema is validated by :func:`validate_bench_document`
(also exposed as ``repro bench validate``) so CI can gate on it; the
committed ``BENCH_PR4.json`` (v1), ``BENCH_PR5.json`` (v2),
``BENCH_PR6.json`` (v3), ``BENCH_PR7.json`` (v4), ``BENCH_PR8.json``
(v5), and ``BENCH_PR9.json`` (v6) at the repo root are the entries of
the trajectory so far.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.coldstart import peak_rss_bytes
from repro.bench.harness import print_header, print_table
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.engine import MatchEngine
from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import citation_graph
from repro.graph.query import QueryTree
from repro.graph.traversal import single_source_distances
from repro.query import to_dsl
from repro.storage.blocks import TableDirectory

BENCH_KIND = "repro-bench-suite"
BENCH_VERSION = 6

#: The fixed matrix; ``--quick`` shrinks it for CI smoke runs.
FULL_MATRIX = {
    "nodes": 400,
    "labels": 40,
    "backends": ("full", "ondemand", "hybrid", "pll"),
    "algorithms": ("topk-en", "dp-p", "topk", "dp-b"),
    "ks": (1, 10, 50),
    "num_queries": 3,
    # The cold-start scenario uses a dedicated larger graph: index-open
    # cost is what is being measured, so the index must dominate noise.
    "cold_start_nodes": 1200,
    "cold_start_runs": 3,
}
QUICK_MATRIX = {
    "nodes": 150,
    "labels": 20,
    "backends": ("full", "ondemand"),
    "algorithms": ("topk-en", "dp-b"),
    "ks": (1, 5),
    "num_queries": 2,
    # None = reuse the (small) workload graph for the CI smoke run.
    "cold_start_nodes": None,
    "cold_start_runs": 2,
}


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_workload(
    nodes: int, labels: int, seed: int, num_queries: int
) -> tuple[LabeledDiGraph, list]:
    """A deterministic citation graph + queries over its hottest labels."""
    graph = citation_graph(nodes, num_labels=labels, seed=seed)
    by_count = sorted(
        graph.labels(),
        key=lambda label: (-len(graph.nodes_with_label(label)), repr(label)),
    )
    a, b, c = by_count[0], by_count[1], by_count[2 % len(by_count)]
    queries = [
        QueryTree({0: a, 1: b}, [(0, 1)]),
        QueryTree({0: a, 1: b, 2: c}, [(0, 1), (0, 2)]),
        QueryTree({0: b, 1: c}, [(0, 1)]),
    ]
    return graph, queries[:num_queries]


# ----------------------------------------------------------------------
# Compact-vs-dict closure comparisons
# ----------------------------------------------------------------------


def _dict_rows(graph: LabeledDiGraph) -> tuple[dict, float]:
    """The pre-compact closure layout: ``{source: {target: dist}}``."""
    started = time.perf_counter()
    rows = {
        source: single_source_distances(graph, source)
        for source in graph.nodes()
    }
    return rows, time.perf_counter() - started


def _dict_rows_bytes(rows: dict) -> int:
    """Resident bytes of the dict layout (containers + boxed values).

    Keys are shared node objects and are deliberately *not* counted, so
    this under-estimates the dict layout — the reported reduction is a
    floor.
    """
    total = sys.getsizeof(rows)
    for row in rows.values():
        total += sys.getsizeof(row)
        total += sum(sys.getsizeof(value) for value in row.values())
    return total


class _Layouts:
    """Both closure layouts for one graph, built once per suite run."""

    def __init__(self, graph: LabeledDiGraph) -> None:
        self.rows, self.dict_seconds = _dict_rows(graph)
        started = time.perf_counter()
        self.closure = TransitiveClosure(graph)
        self.compact_seconds = time.perf_counter() - started


def closure_memory_comparison(
    graph: LabeledDiGraph, layouts: _Layouts | None = None
) -> dict:
    """Dict-of-dicts rows vs interned array rows for the same closure."""
    if layouts is None:
        layouts = _Layouts(graph)
    dict_bytes = _dict_rows_bytes(layouts.rows)
    compact_bytes = layouts.closure.stats()["bytes_estimate"]
    return {
        "pair_count": layouts.closure.num_pairs,
        "dict_bytes": dict_bytes,
        "compact_bytes": compact_bytes,
        "reduction": dict_bytes / compact_bytes if compact_bytes else 0.0,
        "dict_build_seconds": layouts.dict_seconds,
        "compact_build_seconds": layouts.compact_seconds,
    }


class _LegacyStore:
    """The pre-compact store layout, kept as the bench reference baseline.

    One tuple-list :class:`BlockTable` per ``(tail_label, head)`` group,
    ``repr``-keyed sorts, and a linear directory scan per
    ``read_pair_table`` call — exactly the shipped behavior before the
    columnar refactor.  Lives here (not in ``repro.closure``) because its
    only remaining job is being measured against.
    """

    def __init__(self, graph: LabeledDiGraph, rows: dict, block_size: int) -> None:
        label = graph.label
        incoming: dict = {}
        for tail, row in rows.items():
            tail_label = label(tail)
            for head, dist in row.items():
                incoming.setdefault((tail_label, head), []).append(
                    (tail, dist, graph.has_edge(tail, head))
                )
        self.directory = TableDirectory(block_size=block_size)
        self.groups: dict = {}
        self.targets_by_pair: dict = {}
        for (tail_label, head), entries in incoming.items():
            entries.sort(key=lambda e: (e[1], repr(e[0])))
            name = f"L/{tail_label!r}/{label(head)!r}/{head!r}"
            self.groups[(tail_label, head)] = self.directory.create(name, entries)
            self.targets_by_pair.setdefault(
                (tail_label, label(head)), []
            ).append(head)
        for heads in self.targets_by_pair.values():
            heads.sort(key=repr)

    def read_pair_table(self, tail_label, head_label):
        for pair in self.targets_by_pair:  # linear scan, as shipped
            if pair != (tail_label, head_label):
                continue
            self.directory.counter.record_open()
            for head in self.targets_by_pair[pair]:
                for block in self.groups[(pair[0], head)].iter_blocks():
                    for tail, dist, _is_direct in block:
                        yield tail, head, dist


def block_pull_comparison(
    graph: LabeledDiGraph,
    block_size: int = 64,
    layouts: _Layouts | None = None,
    repeats: int = 3,
) -> dict:
    """Stream every ``L`` table block-by-block: legacy vs columnar layout.

    Both stores are pre-built; the measured phase is exactly the
    fully-loaded identification read (Section 3.1) — open each label-pair
    table and pull all of its group blocks.  Each side is timed
    ``repeats`` times and the minimum is reported (scheduler noise makes
    single sub-millisecond timings unreliable on shared CI runners).
    """
    if layouts is None:
        layouts = _Layouts(graph)
    legacy = _LegacyStore(graph, layouts.rows, block_size)
    store = ClosureStore(graph, layouts.closure, block_size=block_size)
    pairs = sorted(store._pairs_matching(None, None), key=repr)

    def timed_scan(read_pair_table) -> tuple[float, int]:
        best = None
        entries = 0
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            entries = 0
            for pair in pairs:
                for _ in read_pair_table(*pair):
                    entries += 1
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        return best, entries

    legacy_seconds, legacy_entries = timed_scan(legacy.read_pair_table)
    compact_seconds, compact_entries = timed_scan(store.read_pair_table)
    if legacy_entries != compact_entries:  # pragma: no cover - sanity net
        raise AssertionError(
            f"layouts disagree: {legacy_entries} != {compact_entries}"
        )
    return {
        "entries": compact_entries,
        "legacy_seconds": legacy_seconds,
        "compact_seconds": compact_seconds,
        "speedup": (
            legacy_seconds / compact_seconds if compact_seconds else 0.0
        ),
    }


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        pass
    return "unknown"


# ----------------------------------------------------------------------
# Cold start: fresh process -> open index -> first query
# ----------------------------------------------------------------------


def _coldstart_child(path: Path, query: str, k: int) -> dict:
    """Run one cold-start probe in a fresh interpreter and parse its JSON."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_root, env.get("PYTHONPATH")) if part
    )
    out = subprocess.run(
        [
            sys.executable, "-m", "repro.bench.coldstart",
            str(path), query, str(k),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"cold-start child failed (exit {out.returncode}): {out.stderr}"
        )
    return json.loads(out.stdout)


def _stringified(graph: LabeledDiGraph) -> LabeledDiGraph:
    """The same graph with ``str`` node ids (JSON-persistable)."""
    out = LabeledDiGraph()
    for node in graph.nodes():
        out.add_node(str(node), graph.label(node))
    for tail, head, weight in graph.edges():
        out.add_edge(str(tail), str(head), weight)
    return out


def cold_start_comparison(
    graph: LabeledDiGraph, query: str, k: int = 10, runs: int = 3
) -> dict:
    """Process-fresh load + first-query latency: JSON vs binary index.

    One ``full``-backend engine is built once and persisted in both
    formats; each format is then opened by ``runs`` fresh child
    processes (``repro.bench.coldstart``) and the best total is kept
    (interpreter scheduling noise dominates single runs on shared CI
    machines).  ``mapped_bytes`` is the binary file's mmap extent;
    ``peak_rss_bytes`` is each child's peak resident set — together they
    show the binary path serving from the page cache instead of from
    parsed heap objects.  Node ids are stringified up front so the same
    artifacts are expressible in both formats (the JSON interchange
    format refuses non-string ids rather than coercing them).
    """
    engine = MatchEngine(_stringified(graph), backend="full")
    results: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-coldstart-") as tmp:
        paths = {
            "json": Path(tmp) / "index.json",
            "binary": Path(tmp) / "index.ridx",
        }
        for format_name, path in paths.items():
            engine.save_index(path, format=format_name)
        for format_name, path in paths.items():
            best: dict | None = None
            for _ in range(max(1, runs)):
                probe = _coldstart_child(path, query, k)
                if best is None or probe["total_seconds"] < best["total_seconds"]:
                    best = probe
            results[format_name] = best
    if results["json"]["matches"] != results["binary"]["matches"]:
        raise AssertionError(
            "cold-start formats disagree: "
            f"{results['json']['matches']} != {results['binary']['matches']}"
        )
    binary_total = results["binary"]["total_seconds"]
    binary_load = results["binary"]["load_seconds"]
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "query": query,
        "k": k,
        "runs": max(1, runs),
        "json": results["json"],
        "binary": results["binary"],
        "speedup": (
            results["json"]["total_seconds"] / binary_total
            if binary_total
            else 0.0
        ),
        "load_speedup": (
            results["json"]["load_seconds"] / binary_load
            if binary_load
            else 0.0
        ),
    }


def run_suite(quick: bool = False, seed: int = 0, **overrides) -> dict:
    """Run the fixed matrix and return the BENCH document (not written)."""
    matrix = dict(QUICK_MATRIX if quick else FULL_MATRIX)
    matrix.update({k: v for k, v in overrides.items() if v is not None})
    graph, queries = build_workload(
        matrix["nodes"], matrix["labels"], seed, matrix["num_queries"]
    )
    query_texts = [to_dsl(query) for query in queries]
    # Both comparison sections share one pair of layouts — _dict_rows is
    # the slowest prep step and must not run twice per suite.
    layouts = _Layouts(graph)

    backend_build = []
    cells = []
    for backend in matrix["backends"]:
        started = time.perf_counter()
        engine = MatchEngine(graph, backend=backend)
        build_seconds = time.perf_counter() - started
        stats = engine.backend.stats()
        backend_build.append(
            {
                "backend": backend,
                "build_seconds": build_seconds,
                "pair_count": stats["pair_count"],
                "bytes_estimate": stats["bytes_estimate"],
            }
        )
        counter = engine.store.counter
        for text in query_texts:
            for algorithm in matrix["algorithms"]:
                for k in matrix["ks"]:
                    before = counter.snapshot()
                    started = time.perf_counter()
                    matches = engine.top_k(text, k, algorithm=algorithm)
                    wall = time.perf_counter() - started
                    delta = counter.delta_since(before)
                    cells.append(
                        {
                            "backend": backend,
                            "algorithm": algorithm,
                            "k": k,
                            "query": text,
                            "wall_seconds": wall,
                            "blocks_read": delta.blocks_read,
                            "tables_opened": delta.tables_opened,
                            "entries_read": delta.entries_read,
                            "matches": len(matches),
                        }
                    )

    cold_nodes = matrix.get("cold_start_nodes")
    if cold_nodes:
        cold_graph, cold_queries = build_workload(
            cold_nodes, matrix["labels"], seed, 1
        )
        cold_query = to_dsl(cold_queries[0])
    else:
        cold_graph, cold_query = graph, query_texts[0]

    # Imported here: repro.bench.sharding and repro.bench.mixed_rw reuse
    # build_workload from this module, so top-level imports would be
    # circular.
    from repro.bench.compiled import compiled_benchmark
    from repro.bench.mixed_rw import mixed_rw_benchmark
    from repro.bench.replication import replication_failover
    from repro.bench.sharding import sharded_scatter_gather

    return {
        "kind": BENCH_KIND,
        "version": BENCH_VERSION,
        "commit": _current_commit(),
        "python": sys.version.split()[0],
        "quick": quick,
        "workload": {
            "family": "citation",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": len(graph.labels()),
            "seed": seed,
            "queries": query_texts,
            "backends": list(matrix["backends"]),
            "algorithms": list(matrix["algorithms"]),
            "ks": list(matrix["ks"]),
        },
        "backend_build": backend_build,
        "cells": cells,
        "closure_memory": closure_memory_comparison(graph, layouts=layouts),
        "block_pull": block_pull_comparison(graph, layouts=layouts),
        "cold_start": cold_start_comparison(
            cold_graph, cold_query, runs=matrix.get("cold_start_runs", 3)
        ),
        "sharding": sharded_scatter_gather(quick=quick, seed=seed),
        "mixed_rw": mixed_rw_benchmark(quick=quick, seed=seed),
        "replication": replication_failover(quick=quick, seed=seed),
        "compiled": compiled_benchmark(quick=quick, seed=seed),
        "peak_rss_bytes": peak_rss_bytes(),
        "peak_rss_unit": "bytes",
    }


def write_suite(path: str | Path, document: dict) -> None:
    """Write a BENCH document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Schema validation (CI gate; no external jsonschema dependency)
# ----------------------------------------------------------------------

_CELL_FIELDS = {
    "backend": str,
    "algorithm": str,
    "k": int,
    "query": str,
    "wall_seconds": (int, float),
    "blocks_read": int,
    "tables_opened": int,
    "entries_read": int,
    "matches": int,
}
_TOP_FIELDS = {
    "kind": str,
    "version": int,
    "commit": str,
    "python": str,
    "quick": bool,
    "workload": dict,
    "backend_build": list,
    "cells": list,
    "closure_memory": dict,
    "block_pull": dict,
}
#: Version-specific memory accounting: v1 recorded the raw (platform-
#: dependent!) ``ru_maxrss`` value; v2 normalizes to bytes and says so.
_V1_FIELDS = {"peak_rss_kb": int}
_V2_FIELDS = {
    "peak_rss_bytes": int,
    "peak_rss_unit": str,
    "cold_start": dict,
}
#: v3 adds the sharded scatter-gather serving section.
_V3_FIELDS = dict(_V2_FIELDS, sharding=dict)
#: v4 adds the mixed read/write (delta overlay) serving section.
_V4_FIELDS = dict(_V3_FIELDS, mixed_rw=dict)
#: v5 adds the replicated-shard failover section.
_V5_FIELDS = dict(_V4_FIELDS, replication=dict)
#: v6 adds the compiled-kernel serving section.
_V6_FIELDS = dict(_V5_FIELDS, compiled=dict)
_SHARDING_RUN_FIELDS = {
    "requests": int,
    "wall_seconds": (int, float),
    "throughput_qps": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
}
_SHARDING_CONFIG_FIELDS = dict(
    _SHARDING_RUN_FIELDS,
    shards=int,
    effective_shards=int,
    clients=int,
    speedup_vs_single=(int, float),
)
_MIXED_RW_APPLY_FIELDS = {
    "batches": int,
    "total_seconds": (int, float),
    "mean_ms": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
}
_MIXED_RW_READ_FIELDS = {
    "requests": int,
    "p50_ms": (int, float),
    "p99_ms": (int, float),
}
_COLD_START_SIDE_FIELDS = {
    "index_bytes": int,
    "mapped_bytes": int,
    "load_seconds": (int, float),
    "first_query_seconds": (int, float),
    "total_seconds": (int, float),
    "matches": int,
    "peak_rss_bytes": int,
}


def _validate_cold_start(cold: dict, errors: list[str]) -> None:
    for field in ("nodes", "query", "k", "runs", "speedup", "load_speedup"):
        if field not in cold:
            errors.append(f"cold_start missing {field!r}")
    for side in ("json", "binary"):
        probe = cold.get(side)
        if not isinstance(probe, dict):
            errors.append(f"cold_start.{side} is not an object")
            continue
        for field, kind in _COLD_START_SIDE_FIELDS.items():
            if field not in probe:
                errors.append(f"cold_start.{side} missing {field!r}")
            elif not isinstance(probe[field], kind) or isinstance(
                probe[field], bool
            ):
                errors.append(f"cold_start.{side}.{field} is not {kind}")
            elif probe[field] < 0:
                errors.append(f"cold_start.{side}.{field} is negative")


def _validate_sharding(sharding: dict, errors: list[str]) -> None:
    for field in ("cpu_count", "nodes", "seed", "k", "queries"):
        if field not in sharding:
            errors.append(f"sharding missing {field!r}")
    if not isinstance(sharding.get("cpu_count"), int) or isinstance(
        sharding.get("cpu_count"), bool
    ):
        errors.append("sharding.cpu_count is not an int")
    for name in ("baseline", "baseline_cached"):
        baseline = sharding.get(name)
        if not isinstance(baseline, dict):
            errors.append(f"sharding.{name} is not an object")
            continue
        for field, kind in _SHARDING_RUN_FIELDS.items():
            if field not in baseline:
                errors.append(f"sharding.{name} missing {field!r}")
            elif not isinstance(baseline[field], kind) or isinstance(
                baseline[field], bool
            ):
                errors.append(f"sharding.{name}.{field} is not {kind}")
    configs = sharding.get("configs")
    if not isinstance(configs, list) or not configs:
        errors.append("sharding.configs is missing or empty")
        return
    for index, config in enumerate(configs):
        if not isinstance(config, dict):
            errors.append(f"sharding.configs[{index}] is not an object")
            continue
        for field, kind in _SHARDING_CONFIG_FIELDS.items():
            if field not in config:
                errors.append(f"sharding.configs[{index}] missing {field!r}")
            elif not isinstance(config[field], kind) or isinstance(
                config[field], bool
            ):
                errors.append(f"sharding.configs[{index}].{field} is not {kind}")
            elif config[field] < 0:
                errors.append(f"sharding.configs[{index}].{field} is negative")


def _validate_mixed_rw(mixed: dict, errors: list[str]) -> None:
    for field in ("nodes", "seed", "k", "queries", "updates"):
        if field not in mixed:
            errors.append(f"mixed_rw missing {field!r}")
    speedup = mixed.get("apply_speedup_vs_rebuild")
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        errors.append("mixed_rw.apply_speedup_vs_rebuild is not a number")
    elif speedup < 0:
        errors.append("mixed_rw.apply_speedup_vs_rebuild is negative")
    for name in ("delta_apply", "eager_apply", "rebuild_apply"):
        section = mixed.get(name)
        if not isinstance(section, dict):
            errors.append(f"mixed_rw.{name} is not an object")
            continue
        for field, kind in _MIXED_RW_APPLY_FIELDS.items():
            if field not in section:
                errors.append(f"mixed_rw.{name} missing {field!r}")
            elif not isinstance(section[field], kind) or isinstance(
                section[field], bool
            ):
                errors.append(f"mixed_rw.{name}.{field} is not {kind}")
            elif section[field] < 0:
                errors.append(f"mixed_rw.{name}.{field} is negative")
    for name in (
        "read_baseline", "reads_during_writes", "reads_during_compaction"
    ):
        section = mixed.get(name)
        if not isinstance(section, dict):
            errors.append(f"mixed_rw.{name} is not an object")
            continue
        for field, kind in _MIXED_RW_READ_FIELDS.items():
            if field not in section:
                errors.append(f"mixed_rw.{name} missing {field!r}")
            elif not isinstance(section[field], kind) or isinstance(
                section[field], bool
            ):
                errors.append(f"mixed_rw.{name}.{field} is not {kind}")
            elif section[field] < 0:
                errors.append(f"mixed_rw.{name}.{field} is negative")


_REPLICATION_RUN_FIELDS = {
    "requests": int,
    "wall_seconds": (int, float),
    "throughput_qps": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "failovers": int,
    "worker_restarts": int,
}
_REPLICATION_KILL_FIELDS = dict(
    _REPLICATION_RUN_FIELDS,
    kill_at=int,
    post_kill_p50_ms=(int, float),
    post_kill_p99_ms=(int, float),
    post_kill_max_ms=(int, float),
)


def _validate_replication(replication: dict, errors: list[str]) -> None:
    for field in (
        "cpu_count", "nodes", "seed", "k", "queries", "shards", "replication"
    ):
        if field not in replication:
            errors.append(f"replication missing {field!r}")
    speedup = replication.get("failover_post_kill_p99_speedup")
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        errors.append("replication.failover_post_kill_p99_speedup is not a number")
    elif speedup < 0:
        errors.append("replication.failover_post_kill_p99_speedup is negative")
    for name, shape in (
        ("baseline", _REPLICATION_RUN_FIELDS),
        ("failover", _REPLICATION_KILL_FIELDS),
        ("single_restart", _REPLICATION_KILL_FIELDS),
    ):
        run = replication.get(name)
        if not isinstance(run, dict):
            errors.append(f"replication.{name} is not an object")
            continue
        for field, kind in shape.items():
            if field not in run:
                errors.append(f"replication.{name} missing {field!r}")
            elif not isinstance(run[field], kind) or isinstance(
                run[field], bool
            ):
                errors.append(f"replication.{name}.{field} is not {kind}")
            elif run[field] < 0:
                errors.append(f"replication.{name}.{field} is negative")


_COMPILED_MODE_FIELDS = {
    "requests": int,
    "wall_seconds": (int, float),
    "throughput_qps": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
}


def _validate_compiled(compiled: dict, errors: list[str]) -> None:
    for field in ("nodes", "edges", "seed", "k", "queries", "plans"):
        if field not in compiled:
            errors.append(f"compiled missing {field!r}")
    plans = compiled.get("plans")
    if not isinstance(plans, list) or not plans:
        errors.append("compiled.plans is missing or empty")
    else:
        for index, plan in enumerate(plans):
            if not isinstance(plan, dict):
                errors.append(f"compiled.plans[{index}] is not an object")
                continue
            for field in ("query", "algorithm", "tier"):
                if not isinstance(plan.get(field), str):
                    errors.append(
                        f"compiled.plans[{index}].{field} is not a string"
                    )
    # kernel_numpy is None on runners without numpy; the other two modes
    # are mandatory.
    for name in ("interpreter", "kernel", "kernel_numpy"):
        mode = compiled.get(name)
        if mode is None:
            if name == "kernel_numpy":
                continue
            errors.append(f"compiled.{name} is not an object")
            continue
        if not isinstance(mode, dict):
            errors.append(f"compiled.{name} is not an object")
            continue
        for field, kind in _COMPILED_MODE_FIELDS.items():
            if field not in mode:
                errors.append(f"compiled.{name} missing {field!r}")
            elif not isinstance(mode[field], kind) or isinstance(
                mode[field], bool
            ):
                errors.append(f"compiled.{name}.{field} is not {kind}")
            elif mode[field] < 0:
                errors.append(f"compiled.{name}.{field} is negative")
    speedup = compiled.get("speedup_kernel")
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        errors.append("compiled.speedup_kernel is not a number")
    elif speedup < 0:
        errors.append("compiled.speedup_kernel is negative")
    numpy_speedup = compiled.get("speedup_kernel_numpy")
    if numpy_speedup is not None and (
        not isinstance(numpy_speedup, (int, float))
        or isinstance(numpy_speedup, bool)
    ):
        errors.append("compiled.speedup_kernel_numpy is not a number or null")


def validate_bench_document(document) -> list[str]:
    """Schema errors of a BENCH document (empty list == valid).

    Accepts version 1 (legacy ``peak_rss_kb``), version 2 (byte-
    normalized memory accounting — ``peak_rss_bytes`` with
    ``peak_rss_unit == "bytes"`` asserted — plus the cold-start
    comparison section), version 3 (additionally *requires* the sharded
    scatter-gather serving section), version 4 (additionally requires
    the mixed read/write delta-overlay serving section), version 5
    (additionally requires the replicated-shard failover section), and
    version 6, which additionally requires the compiled-kernel serving
    section.
    """
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    version = document.get("version")
    if version not in (1, 2, 3, 4, 5, BENCH_VERSION):
        return [f"unsupported version {version!r}"]
    fields = dict(_TOP_FIELDS)
    if version == 1:
        fields.update(_V1_FIELDS)
    elif version == 2:
        fields.update(_V2_FIELDS)
    elif version == 3:
        fields.update(_V3_FIELDS)
    elif version == 4:
        fields.update(_V4_FIELDS)
    elif version == 5:
        fields.update(_V5_FIELDS)
    else:
        fields.update(_V6_FIELDS)
    for field, kind in fields.items():
        if field not in document:
            errors.append(f"missing field {field!r}")
        elif not isinstance(document[field], kind):
            errors.append(f"field {field!r} is not {kind}")
    if errors:
        return errors
    if document["kind"] != BENCH_KIND:
        errors.append(f"kind is {document['kind']!r}, wanted {BENCH_KIND!r}")
    if version >= 2:
        if document["peak_rss_unit"] != "bytes":
            errors.append(
                f"peak_rss_unit is {document['peak_rss_unit']!r}, must be "
                "'bytes' (ru_maxrss is KiB on Linux but bytes on macOS — "
                "normalize before recording)"
            )
        _validate_cold_start(document["cold_start"], errors)
    if version >= 3:
        _validate_sharding(document["sharding"], errors)
    if version >= 4:
        _validate_mixed_rw(document["mixed_rw"], errors)
    if version >= 5:
        _validate_replication(document["replication"], errors)
    if version >= 6:
        _validate_compiled(document["compiled"], errors)
    for index, cell in enumerate(document["cells"]):
        if not isinstance(cell, dict):
            errors.append(f"cells[{index}] is not an object")
            continue
        for field, kind in _CELL_FIELDS.items():
            if field not in cell:
                errors.append(f"cells[{index}] missing {field!r}")
            elif not isinstance(cell[field], kind) or isinstance(cell[field], bool):
                errors.append(f"cells[{index}].{field} is not {kind}")
            elif field in ("wall_seconds", "blocks_read", "k") and cell[field] < 0:
                errors.append(f"cells[{index}].{field} is negative")
    memory = document["closure_memory"]
    for field in ("pair_count", "dict_bytes", "compact_bytes", "reduction"):
        if field not in memory:
            errors.append(f"closure_memory missing {field!r}")
    pull = document["block_pull"]
    for field in ("entries", "legacy_seconds", "compact_seconds", "speedup"):
        if field not in pull:
            errors.append(f"block_pull missing {field!r}")
    workload = document["workload"]
    for field in ("family", "nodes", "edges", "labels", "seed", "queries"):
        if field not in workload:
            errors.append(f"workload missing {field!r}")
    return errors


# ----------------------------------------------------------------------
# Human-readable report
# ----------------------------------------------------------------------


def print_suite_report(document: dict) -> None:
    """Echo a BENCH document as the usual harness tables."""
    workload = document["workload"]
    print_header(
        "repro bench suite",
        f"citation graph: {workload['nodes']} nodes / {workload['edges']} "
        f"edges / {workload['labels']} labels (seed {workload['seed']}, "
        f"commit {document['commit'][:12]})",
    )
    print_table(
        ["backend", "build s", "pairs", "bytes"],
        [
            [b["backend"], f"{b['build_seconds']:.4f}",
             b["pair_count"], b["bytes_estimate"]]
            for b in document["backend_build"]
        ],
        title="offline build",
    )
    print_table(
        ["backend", "algorithm", "k", "query", "wall s", "blocks", "matches"],
        [
            [c["backend"], c["algorithm"], c["k"], c["query"],
             f"{c['wall_seconds']:.5f}", c["blocks_read"], c["matches"]]
            for c in document["cells"]
        ],
        title="workload matrix",
    )
    memory = document["closure_memory"]
    pull = document["block_pull"]
    print_table(
        ["metric", "dict/legacy", "compact", "ratio"],
        [
            ["closure bytes", memory["dict_bytes"], memory["compact_bytes"],
             f"{memory['reduction']:.1f}x smaller"],
            ["closure build s", f"{memory['dict_build_seconds']:.4f}",
             f"{memory['compact_build_seconds']:.4f}",
             f"{memory['dict_build_seconds'] / memory['compact_build_seconds']:.1f}x faster"
             if memory["compact_build_seconds"] else "-"],
            ["block pulls s", f"{pull['legacy_seconds']:.4f}",
             f"{pull['compact_seconds']:.4f}",
             f"{pull['speedup']:.1f}x faster"],
        ],
        title="compact vs dict",
    )
    # Legacy v1 documents (accepted by the validator) lack the v2
    # cold-start section and record the raw platform-unit ru_maxrss.
    cold = document.get("cold_start")
    if cold is not None:
        print_table(
            ["metric", "json", "binary (.ridx)", "ratio"],
            [
                ["load s", f"{cold['json']['load_seconds']:.4f}",
                 f"{cold['binary']['load_seconds']:.4f}",
                 f"{cold['load_speedup']:.1f}x faster"],
                ["first query s", f"{cold['json']['first_query_seconds']:.4f}",
                 f"{cold['binary']['first_query_seconds']:.4f}", "-"],
                ["cold total s", f"{cold['json']['total_seconds']:.4f}",
                 f"{cold['binary']['total_seconds']:.4f}",
                 f"{cold['speedup']:.1f}x faster"],
                ["index bytes", cold["json"]["index_bytes"],
                 cold["binary"]["index_bytes"], "-"],
                ["child RSS bytes", cold["json"]["peak_rss_bytes"],
                 cold["binary"]["peak_rss_bytes"], "-"],
            ],
            title=(
                f"cold start ({cold['nodes']} nodes, query {cold['query']!r}, "
                f"binary maps {cold['binary']['mapped_bytes']} bytes)"
            ),
        )
    sharding = document.get("sharding")
    if sharding is not None:
        baseline = sharding["baseline"]
        cached = sharding.get("baseline_cached")
        rows = [
            ["single-process", "-", f"{baseline['throughput_qps']:.1f}",
             f"{baseline['p50_ms']:.2f}", f"{baseline['p99_ms']:.2f}", "1.00x"],
        ]
        if cached is not None:
            rows.append(
                ["single (cached)", "-", f"{cached['throughput_qps']:.1f}",
                 f"{cached['p50_ms']:.2f}", f"{cached['p99_ms']:.2f}", "-"]
            )
        for config in sharding["configs"]:
            rows.append(
                [
                    f"{config['shards']} shards",
                    config["clients"],
                    f"{config['throughput_qps']:.1f}",
                    f"{config['p50_ms']:.2f}",
                    f"{config['p99_ms']:.2f}",
                    f"{config['speedup_vs_single']:.2f}x",
                ]
            )
        print_table(
            ["serving", "clients", "qps", "p50 ms", "p99 ms", "vs single"],
            rows,
            title=(
                f"sharded scatter-gather ({sharding['nodes']} nodes, "
                f"k={sharding['k']}, {sharding['cpu_count']} CPU"
                f"{'s' if sharding['cpu_count'] != 1 else ''})"
            ),
        )
    mixed = document.get("mixed_rw")
    if mixed is not None:
        print_table(
            ["apply path", "batches", "mean ms", "p50 ms", "p99 ms"],
            [
                [name.removesuffix("_apply"),
                 mixed[name]["batches"],
                 f"{mixed[name]['mean_ms']:.3f}",
                 f"{mixed[name]['p50_ms']:.3f}",
                 f"{mixed[name]['p99_ms']:.3f}"]
                for name in ("delta_apply", "eager_apply", "rebuild_apply")
            ],
            title=(
                f"mixed r/w: apply latency ({mixed['updates']} updates, "
                f"delta {mixed['apply_speedup_vs_rebuild']:.1f}x faster "
                "than rebuild)"
            ),
        )
        print_table(
            ["reads", "requests", "p50 ms", "p99 ms"],
            [
                [label,
                 mixed[name]["requests"],
                 f"{mixed[name]['p50_ms']:.3f}",
                 f"{mixed[name]['p99_ms']:.3f}"]
                for label, name in (
                    ("quiet baseline", "read_baseline"),
                    ("during writes", "reads_during_writes"),
                    ("during compaction", "reads_during_compaction"),
                )
            ],
            title=(
                "mixed r/w: read latency "
                f"(compaction took {mixed['compaction_seconds']:.3f}s)"
            ),
        )
    replication = document.get("replication")
    if replication is not None:
        rows = []
        for label, name in (
            (f"R={replication['replication']} steady", "baseline"),
            (f"R={replication['replication']} failover", "failover"),
            ("R=1 restart", "single_restart"),
        ):
            run = replication[name]
            rows.append(
                [
                    label,
                    f"{run['throughput_qps']:.1f}",
                    f"{run['p99_ms']:.2f}",
                    f"{run.get('post_kill_p99_ms', 0.0):.2f}"
                    if "post_kill_p99_ms" in run else "-",
                    run["failovers"],
                    run["worker_restarts"],
                ]
            )
        print_table(
            ["serving", "qps", "p99 ms", "post-kill p99", "failovers", "restarts"],
            rows,
            title=(
                f"replicated failover ({replication['shards']} shards, "
                "kill one worker/shard: failover post-kill p99 "
                f"{replication['failover_post_kill_p99_speedup']:.1f}x "
                "better than inline restart)"
            ),
        )
    compiled = document.get("compiled")
    if compiled is not None:
        rows = []
        for label, name in (
            ("interpreter", "interpreter"),
            ("kernel (scalar)", "kernel"),
            ("kernel (numpy)", "kernel_numpy"),
        ):
            mode = compiled.get(name)
            if mode is None:
                continue
            qps = mode["throughput_qps"]
            interp_qps = compiled["interpreter"]["throughput_qps"]
            rows.append(
                [
                    label,
                    mode["requests"],
                    f"{qps:.1f}",
                    f"{mode['p50_ms']:.4f}",
                    f"{mode['p99_ms']:.4f}",
                    f"{qps / interp_qps:.2f}x" if interp_qps else "-",
                ]
            )
        print_table(
            ["execution", "requests", "qps", "p50 ms", "p99 ms", "vs interp"],
            rows,
            title=(
                f"compiled kernel serving ({compiled['nodes']} nodes, "
                f"k={compiled['k']}, hot repeated queries: kernel "
                f"{compiled['speedup_kernel']:.1f}x interpreter throughput)"
            ),
        )
    if "peak_rss_bytes" in document:
        print(f"peak RSS: {document['peak_rss_bytes']} bytes")
    else:
        print(f"peak RSS: {document['peak_rss_kb']} KB (legacy v1 units)")
