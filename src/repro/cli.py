"""Command-line interface.

Subcommands::

    python -m repro.cli match   --graph g.tsv --query 'A//B[C]' -k 10
    python -m repro.cli gpm     --graph g.tsv --query 'graph(a:A, b:B; a-b)'
    python -m repro.cli query   check 'A//B[C][*]/D'
    python -m repro.cli query   show  'A//~db+systems'
    python -m repro.cli stats   --graph g.tsv
    python -m repro.cli index   --graph g.tsv --backend full --out g.ridx
    python -m repro.cli serve-bench --nodes 300 --requests 120 --workers 1,4
    python -m repro.cli bench   suite --quick --out BENCH_SMOKE.json
    python -m repro.cli bench   validate BENCH_PR9.json
    python -m repro.cli lint    --format json
    python -m repro.cli compact --index g.ridx --wal g.wal
    python -m repro.cli delta   info g.wal
    python -m repro.cli generate --family citation --nodes 1000 --out g.tsv

``--query`` accepts either DSL text (``A//B[C]``, ``graph(a:A, b:B; a-b)``)
or a path to a query JSON document; malformed DSL exits with code 2 and a
caret-annotated syntax error.  ``match`` runs top-k matching through
:class:`repro.engine.MatchEngine` with a chosen algorithm/backend
(``auto`` lets the planner pick) and prints the matches as JSON;
``--explain`` prints the query plan (including the compiled semantics),
``--load-index`` answers from a persisted index instead of rebuilding the
closure.  Cyclic ``graph(...)`` patterns route through the kGPM
decomposition framework automatically.  ``gpm`` forces the kGPM path with
an explicit tree matcher choice; ``query check``/``query show`` validate
and pretty-print queries without touching a graph; ``stats`` reports
closure/theta statistics (the offline cost of Table 2); ``index`` builds
and saves an index (the paper's offline phase, paid once per dataset) —
binary ``.ridx`` by default (mmap-paged, zero-parse cold start), JSON
with ``--format json``; ``--load-index`` sniffs the format either way;
``serve-bench`` smoke-benchmarks the :mod:`repro.service` layer (warm
plan/result caches vs a fresh engine per call, 1-N workers);
``bench suite`` runs the canonical perf matrix and writes a
machine-readable ``BENCH_*.json`` (``bench validate`` checks one against
the schema — the CI gate); ``lint`` runs the :mod:`repro.devtools.lint`
contract checks (the DESIGN.md invariants, driven by
``config/layers.toml``) over the source tree; ``compact`` folds a
write-ahead delta
segment into the next ``.ridx`` generation offline (the swap protocol
DESIGN.md specifies); ``delta info`` inspects a WAL segment or a
generations manifest without touching it; ``generate`` writes one of
the synthetic workload graphs.

Exit codes are uniform across subcommands: **0** success (clean run, no
findings), **1** findings (``lint`` violations, ``bench validate``
schema errors), **2** usage or runtime errors (bad flags, missing or
malformed input files, engine misconfiguration).

With ``pip install -e .`` the same interface is exposed as the ``repro``
console script.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.engine import BACKENDS, ENGINE_ALGORITHMS, MatchEngine
from repro.exceptions import QuerySyntaxError, ReproError
from repro.gpm.mtree import KGPMEngine
from repro.graph.generators import citation_graph, erdos_renyi_graph, powerlaw_graph
from repro.graph.query import QueryTree
from repro.io import load_graph_tsv, load_query, matches_to_json, save_graph_tsv
from repro.query import CompiledQuery, compile_query

_BACKEND_CHOICES = ("auto",) + BACKENDS

_MATCH_ALGORITHMS = ENGINE_ALGORITHMS + ("mtree+", "mtree")


def _compile_query_arg(value: str) -> CompiledQuery:
    """``--query`` accepts DSL text or a path to a query JSON document.

    Anything that exists on disk (or ends in ``.json``) is treated as a
    file; everything else is parsed as DSL.
    """
    if os.path.exists(value):
        return compile_query(load_query(value))
    if value.endswith(".json"):
        raise ReproError(f"query file {value!r} does not exist")
    return compile_query(value)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k tree/graph pattern matching (VLDB'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    match = sub.add_parser("match", help="top-k pattern matching")
    match.add_argument("--graph", help="data graph (TSV)")
    match.add_argument(
        "--query", required=True,
        help="DSL text (e.g. 'A//B[C]', 'graph(a:A, b:B; a-b)') or a "
        "query JSON path",
    )
    match.add_argument("-k", type=int, default=10, help="number of matches")
    match.add_argument(
        "--algorithm", choices=_MATCH_ALGORITHMS, default="auto",
        help="matching algorithm ('auto' lets the planner pick; "
        "'mtree+'/'mtree' apply to cyclic patterns)",
    )
    match.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default="auto",
        help="closure backend ('auto' picks from graph size)",
    )
    match.add_argument(
        "--explain", action="store_true",
        help="print the query plan to stderr before running",
    )
    match.add_argument(
        "--load-index", metavar="PATH",
        help="answer from a saved index instead of --graph",
    )
    match.add_argument(
        "--save-index", metavar="PATH",
        help="persist the built index for later --load-index runs",
    )

    gpm = sub.add_parser("gpm", help="top-k graph pattern matching (mtree+)")
    gpm.add_argument("--graph", required=True, help="data graph (TSV)")
    gpm.add_argument(
        "--query", required=True,
        help="graph-pattern DSL ('graph(a:A, b:B; a-b)') or query JSON path",
    )
    gpm.add_argument("-k", type=int, default=10)
    gpm.add_argument(
        "--tree-algorithm", choices=("topk-en", "dp-b"), default="topk-en",
        help="tree matcher inside the decomposition framework",
    )

    query = sub.add_parser(
        "query", help="validate / inspect a declarative query (no graph needed)"
    )
    qsub = query.add_subparsers(dest="query_command", required=True)
    qcheck = qsub.add_parser(
        "check", help="parse + compile; exit 2 with a caret-annotated error"
    )
    qcheck.add_argument("query", help="DSL text or query JSON path")
    qshow = qsub.add_parser(
        "show", help="print the compiled form (canonical DSL, nodes, semantics)"
    )
    qshow.add_argument("query", help="DSL text or query JSON path")
    qshow.add_argument(
        "--compiled", action="store_true",
        help="also print the lowered kernel opcode listing (tree queries; "
        "cyclic patterns report interpreted execution)",
    )

    stats = sub.add_parser("stats", help="offline statistics for a graph")
    stats.add_argument("--graph", required=True, help="data graph (TSV)")

    index = sub.add_parser("index", help="build and save an index (offline phase)")
    index.add_argument("--graph", required=True, help="data graph (TSV)")
    index.add_argument(
        "--out", required=True,
        help="output index path (canonical extension: .ridx for binary)",
    )
    index.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default="full",
        help="closure backend to materialize",
    )
    index.add_argument(
        "--format", choices=("binary", "json"), default="binary",
        help="index format: 'binary' is the mmap-paged zero-parse layout "
        "(default), 'json' the interchange document",
    )
    index.add_argument(
        "--workload", metavar="QUERY.json", action="append", default=[],
        help="query tree the index must support (repeatable; required for "
        "--backend constrained)",
    )
    index.add_argument(
        "--shards", type=int, metavar="N",
        help="write a sharded index: N label-range shard .ridx files plus "
        "a checksummed manifest at --out (binary format only); "
        "--load-index on the manifest boots a scatter-gather engine",
    )
    index.add_argument(
        "--replication", type=int, metavar="R", default=1,
        help="record a replication factor in the shard manifest: the "
        "sharded service spawns R workers per shard and fails queries "
        "over between them (requires --shards)",
    )

    shard = sub.add_parser(
        "shard", help="inspect sharded indexes (manifest + shard files)"
    )
    ssub = shard.add_subparsers(dest="shard_command", required=True)
    sinfo = ssub.add_parser(
        "info", help="print a shard manifest's layout and integrity status"
    )
    sinfo.add_argument("manifest", help="shard manifest path (repro index --shards)")
    sinfo.add_argument(
        "--verify", action="store_true",
        help="additionally re-hash every shard file against its recorded "
        "SHA-256 (slow, paranoid)",
    )
    sinfo.add_argument(
        "--wal", metavar="DIR",
        help="also report the per-shard write-ahead segments under DIR "
        "(generation vs. manifest epoch, pending records, torn tails)",
    )

    serve = sub.add_parser(
        "serve-bench",
        help="throughput smoke benchmark of the MatchService serving layer",
    )
    serve.add_argument(
        "--graph", help="data graph TSV (default: a synthetic citation graph)"
    )
    serve.add_argument(
        "--nodes", type=int, default=300,
        help="synthetic graph size when no --graph is given",
    )
    serve.add_argument("--requests", type=int, default=120, help="request count")
    serve.add_argument(
        "--num-queries", type=int, default=6,
        help="distinct queries in the round-robin workload",
    )
    serve.add_argument("-k", type=int, default=10)
    serve.add_argument(
        "--workers", default="1,2,4,8",
        help="comma-separated worker counts for the scaling pass",
    )
    serve.add_argument(
        "--backend", choices=("full", "ondemand", "hybrid", "pll"),
        default="full",
    )
    serve.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench", help="reproducible performance suite (BENCH_*.json)"
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    bsuite = bsub.add_parser(
        "suite",
        help="run the fixed backends x algorithms x k matrix and write a "
        "canonical BENCH JSON document",
    )
    bsuite.add_argument(
        "--quick", action="store_true",
        help="shrunken matrix for CI smoke runs",
    )
    bsuite.add_argument(
        "--out", default="BENCH_PR9.json",
        help="output JSON path (default: BENCH_PR9.json)",
    )
    bsuite.add_argument(
        "--nodes", type=int, default=None,
        help="override the workload graph size",
    )
    bsuite.add_argument("--seed", type=int, default=0)
    bvalidate = bsub.add_parser(
        "validate", help="check a BENCH JSON document against the schema"
    )
    bvalidate.add_argument("path", help="BENCH JSON document to validate")

    lint = sub.add_parser(
        "lint",
        help="static contract checks: layering DAG, exception taxonomy, "
        "rename durability, lock discipline, interned-id boundary",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: <root>/src/repro)",
    )
    lint.add_argument(
        "--root", default=".",
        help="repository root holding config/layers.toml (default: .)",
    )
    lint.add_argument(
        "--rule", action="append", metavar="RLnnn",
        help="run only this rule id (repeatable; default: all rules)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline", metavar="PATH",
        help="grandfather the findings listed in this baseline document",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )

    compact = sub.add_parser(
        "compact",
        help="fold a write-ahead delta segment into the next .ridx generation",
    )
    compact.add_argument(
        "--index", required=True,
        help="base index path (or its generations manifest)",
    )
    compact.add_argument(
        "--wal", metavar="PATH",
        help="write-ahead log segment with the pending records "
        "(recovered and truncated by the swap protocol)",
    )
    compact.add_argument(
        "--force", action="store_true",
        help="write a new generation even with nothing pending",
    )

    delta = sub.add_parser(
        "delta", help="inspect the write-ahead delta overlay artifacts"
    )
    dsub = delta.add_subparsers(dest="delta_command", required=True)
    dinfo = dsub.add_parser(
        "info",
        help="describe a WAL segment, a generations manifest, or a "
        "generation-tracked index (read-only)",
    )
    dinfo.add_argument(
        "path", help="WAL segment, generations manifest, or base index path"
    )

    gen = sub.add_parser("generate", help="generate a synthetic data graph")
    gen.add_argument(
        "--family", choices=("citation", "powerlaw", "uniform"),
        default="citation",
    )
    gen.add_argument("--nodes", type=int, default=1000)
    gen.add_argument("--labels", type=int, default=60)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output TSV path")
    return parser


def _cmd_match(args) -> int:
    compiled = _compile_query_arg(args.query)
    if args.load_index:
        if args.graph:
            print(
                "error: pass either --graph or --load-index, not both",
                file=sys.stderr,
            )
            return 2
        if args.backend != "auto":
            print(
                "error: --backend is determined by the loaded index; "
                "drop it or rebuild the index with `repro index --backend ...`",
                file=sys.stderr,
            )
            return 2
        engine = MatchEngine.load(args.load_index)
    elif args.graph:
        graph = load_graph_tsv(args.graph)
        if args.backend == "constrained" and compiled.is_cyclic:
            print(
                "error: the constrained backend indexes tree workloads; "
                "cyclic patterns need another backend",
                file=sys.stderr,
            )
            return 2
        # The constrained backend needs a workload — for one-shot matching
        # that is exactly the query being asked.
        workload = (compiled.tree,) if args.backend == "constrained" else None
        engine = MatchEngine(graph, backend=args.backend, workload=workload)
    else:
        print("error: 'match' needs --graph or --load-index", file=sys.stderr)
        return 2
    plan = engine.explain(compiled, args.k, algorithm=args.algorithm)
    if args.explain:
        print(plan.describe(), file=sys.stderr)
    started = time.perf_counter()
    matches = engine.top_k(compiled, args.k, algorithm=args.algorithm)
    elapsed = time.perf_counter() - started
    print(matches_to_json(matches))
    print(
        f"# {len(matches)} matches in {elapsed * 1000:.1f} ms "
        f"({plan.algorithm}, {engine.backend_name} backend)",
        file=sys.stderr,
    )
    if args.save_index:
        engine.save_index(args.save_index)
        print(f"# index saved to {args.save_index}", file=sys.stderr)
    return 0


def _cmd_gpm(args) -> int:
    graph = load_graph_tsv(args.graph)
    compiled = _compile_query_arg(args.query)
    if not compiled.is_cyclic:
        print(
            "error: 'gpm' expects a graph pattern — the 'graph(...)' DSL "
            "form or a query-graph document (tree queries go to 'match')",
            file=sys.stderr,
        )
        return 2
    kwargs = {}
    if compiled.matcher is not None:  # e.g. ~token containment labels
        kwargs["matcher"] = compiled.matcher
    engine = KGPMEngine(graph, tree_algorithm=args.tree_algorithm, **kwargs)
    started = time.perf_counter()
    matches = engine.top_k(compiled.pattern, args.k)
    elapsed = time.perf_counter() - started
    print(matches_to_json(matches))
    print(
        f"# {len(matches)} matches in {elapsed * 1000:.1f} ms "
        f"(mtree{'+' if args.tree_algorithm == 'topk-en' else ''})",
        file=sys.stderr,
    )
    return 0


def _cmd_query(args) -> int:
    compiled = _compile_query_arg(args.query)
    kind = "cyclic pattern" if compiled.is_cyclic else "tree"
    if args.query_command == "check":
        print(f"ok: {compiled.to_dsl()} ({kind}, {compiled.num_nodes} nodes)")
        return 0
    # show: canonical DSL + lowered structure + compiled semantics.
    print(f"canonical: {compiled.to_dsl()}")
    print(f"kind:      {kind}")
    if compiled.is_cyclic:
        pattern = compiled.pattern
        for node in pattern.nodes():
            print(f"  node {node}: label={pattern.label(node)}")
        for u, v in pattern.edges():
            print(f"  edge {u} -- {v}")
    else:
        tree = compiled.tree
        for node in tree.bfs_order():
            parent = tree.parent(node)
            if parent is None:
                print(f"  node {node}: label={tree.label(node)} (root)")
            else:
                axis = tree.edge_type(parent, node).value
                print(
                    f"  node {node}: label={tree.label(node)} "
                    f"({parent} {axis} {node})"
                )
    print(
        f"semantics: matcher={compiled.matcher_kind}, "
        f"direct edges={compiled.direct_edges}, "
        f"wildcards={compiled.wildcards}, "
        f"containment nodes={compiled.containment_nodes}, "
        f"duplicate labels={'yes' if compiled.has_duplicate_labels else 'no'}"
    )
    if getattr(args, "compiled", False):
        from repro.kernel import KernelUnsupported, compile_program

        try:
            program = compile_program(compiled)
        except KernelUnsupported as exc:
            print(f"kernel:    interpreted ({exc})")
        else:
            print(
                f"kernel:    {program.num_ops} ops over "
                f"{program.num_positions} registers"
            )
            print(program.listing())
    return 0


def _cmd_stats(args) -> int:
    graph = load_graph_tsv(args.graph)
    engine = MatchEngine(graph, backend="full")
    closure = engine.closure
    store_stats = engine.store.size_statistics()
    print(f"nodes:            {graph.num_nodes}")
    print(f"edges:            {graph.num_edges}")
    print(f"labels:           {len(graph.labels())}")
    print(f"closure pairs:    {closure.num_pairs}")
    print(f"closure build:    {closure.build_seconds:.2f}s")
    print(f"average theta:    {closure.average_theta():.1f}")
    print(f"store entries:    {store_stats['total_entries']}")
    print(f"store size (est): {engine.store.estimated_bytes() / 1e6:.1f} MB")
    return 0


def _cmd_index(args) -> int:
    graph = load_graph_tsv(args.graph)
    workload = []
    for path in args.workload:
        query = load_query(path)
        if not isinstance(query, QueryTree):
            print(f"error: {path} is not a query-tree document", file=sys.stderr)
            return 2
        workload.append(query)
    if args.shards is not None:
        if args.shards < 1:
            print("error: --shards needs a positive count", file=sys.stderr)
            return 2
        if args.replication < 1:
            print("error: --replication needs a positive count", file=sys.stderr)
            return 2
        if args.format != "binary":
            print(
                "error: sharded indexes are binary-only; drop --format",
                file=sys.stderr,
            )
            return 2
        from repro.shard import shard_index

        started = time.perf_counter()
        document = shard_index(
            graph, args.out, args.shards,
            replication=args.replication,
            backend=args.backend, workload=tuple(workload) or None,
        )
        built = time.perf_counter() - started
        total_bytes = sum(entry["bytes"] for entry in document["shards"])
        print(
            f"built {document['shard_count']} shards "
            f"(requested {args.shards}, replication "
            f"{document.get('replication', 1)}) in {built:.2f}s; "
            f"manifest {args.out} + {total_bytes / 1e6:.1f} MB of shard "
            f"files, epoch {document['epoch']}",
            file=sys.stderr,
        )
        return 0
    if args.replication != 1:
        print("error: --replication requires --shards", file=sys.stderr)
        return 2
    started = time.perf_counter()
    engine = MatchEngine(
        graph, backend=args.backend, workload=tuple(workload) or None
    )
    built = time.perf_counter() - started
    engine.save_index(args.out, format=args.format)
    print(
        f"built {engine.backend_name} index in {built:.2f}s "
        f"({engine.backend.describe()}); saved to {args.out} "
        f"({args.format})",
        file=sys.stderr,
    )
    return 0


def _cmd_shard(args) -> int:
    from repro.shard.manifest import load_manifest, shard_paths

    document = load_manifest(args.manifest, verify_files=args.verify)
    counts = document.get("counts", {})
    print(f"manifest:  {args.manifest}")
    print(
        f"kind:      {document['kind']} v{document['version']}, "
        f"epoch {document.get('epoch', 0)}"
    )
    print(
        f"graph:     {counts.get('nodes')} nodes, {counts.get('edges')} "
        f"edges, {counts.get('labels')} labels"
    )
    print(
        f"shards:    {document['shard_count']} "
        f"(requested {document.get('requested_shards', document['shard_count'])}), "
        f"replication {document.get('replication', 1)}"
    )
    for entry, file_path in zip(document["shards"], shard_paths(document, args.manifest)):
        span = entry["span"]
        labels = entry["labels"]
        label_run = (
            ", ".join(repr(label) for label in labels)
            if len(labels) <= 4
            else f"{labels[0]!r} … {labels[-1]!r} ({len(labels)} labels)"
        )
        print(
            f"  shard {entry['index']:2d}: span [{span[0]}, {span[1]}) "
            f"owns {entry['owned_nodes']} of {entry['member_nodes']} members, "
            f"{entry['boundary_pairs']} boundary pairs, "
            f"{entry['bytes'] / 1e6:.2f} MB — {file_path.name}"
        )
        print(f"            labels: {label_run}")
    print(
        "integrity: checksum + sizes ok"
        + (", per-file SHA-256 verified" if args.verify else
           " (use --verify to re-hash shard files)")
    )
    if args.wal:
        from pathlib import Path as _Path

        from repro.delta import scan_wal

        epoch = document.get("epoch", 0)
        wal_dir = _Path(args.wal)
        print(f"wal dir:   {wal_dir}")
        for entry in document["shards"]:
            segment = wal_dir / f"shard-{entry['index']:02d}.wal"
            if not segment.exists():
                print(f"  shard {entry['index']:2d}: no segment ({segment.name})")
                continue
            scan = scan_wal(segment)
            state = (
                "stale (will be discarded on boot)"
                if scan.generation < epoch
                else "ahead of manifest (refused on boot)"
                if scan.generation > epoch
                else "current"
            )
            torn = (
                f", torn tail ({scan.dropped_bytes} bytes)"
                if scan.truncated_tail
                else ""
            )
            print(
                f"  shard {entry['index']:2d}: generation {scan.generation} "
                f"({state}), {len(scan.records)} pending records, "
                f"{scan.good_bytes} good bytes{torn}"
            )
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.bench.serving import print_serving_report, serving_benchmark

    try:
        workers = tuple(
            int(part) for part in str(args.workers).split(",") if part.strip()
        )
    except ValueError:
        print(
            f"error: --workers must be comma-separated integers, "
            f"got {args.workers!r}",
            file=sys.stderr,
        )
        return 2
    if not workers or any(count <= 0 for count in workers):
        print("error: --workers needs positive integers", file=sys.stderr)
        return 2
    graph = load_graph_tsv(args.graph) if args.graph else None
    report = serving_benchmark(
        graph,
        num_nodes=args.nodes,
        num_queries=args.num_queries,
        k=args.k,
        requests=args.requests,
        workers=workers,
        backend=args.backend,
        seed=args.seed,
    )
    print_serving_report(report)
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.suite import (
        print_suite_report,
        run_suite,
        validate_bench_document,
        write_suite,
    )

    if args.bench_command == "validate":
        import json as _json

        with open(args.path, "r", encoding="utf-8") as handle:
            document = _json.load(handle)
        errors = validate_bench_document(document)
        if errors:
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            # Findings, not a usage problem: the document was readable
            # but fails the schema — exit 1 (same contract as `lint`;
            # an unreadable path still exits 2 via the OSError catch).
            return 1
        print(
            f"ok: {args.path} ({len(document['cells'])} cells, "
            f"commit {document['commit'][:12]})"
        )
        return 0
    document = run_suite(quick=args.quick, seed=args.seed, nodes=args.nodes)
    print_suite_report(document)
    write_suite(args.out, document)
    print(f"# wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.devtools.lint import (
        LintConfigError,
        load_baseline,
        render_json,
        render_text,
        run_lint,
        write_baseline,
    )

    if args.update_baseline and not args.baseline:
        raise LintConfigError("--update-baseline requires --baseline PATH")
    entries = None
    if args.baseline and not args.update_baseline:
        entries = load_baseline(args.baseline)
    result = run_lint(
        Path(args.root),
        [Path(p) for p in args.paths] or None,
        rules=args.rule,
        baseline=entries,
    )
    if args.update_baseline:
        count = write_baseline(args.baseline, result.findings)
        print(
            f"wrote {count} baseline entries to {args.baseline}",
            file=sys.stderr,
        )
        return 0
    render = render_json if args.format == "json" else render_text
    print(render(result))
    # Stale baseline entries fail the run too: the checked-in file no
    # longer matches the tree and must be regenerated (burn-down).
    return 0 if result.clean and not result.stale_baseline else 1


def _cmd_compact(args) -> int:
    from repro.service import MatchService

    service = MatchService.from_index(
        args.index, wal_path=args.wal, auto_compact=False, max_workers=1
    )
    try:
        delta_stats = service.statistics()["delta"]
        pending = delta_stats["pending_records"]
        if not pending and not args.force:
            print(
                "nothing to compact: the overlay is empty "
                "(use --force to write a generation anyway)",
                file=sys.stderr,
            )
            return 0
        report = service.compact()
        generation = report["generation"]
        where = (
            f"generation {generation} ({report['path']})"
            if generation is not None
            else "in-memory only (no generation family)"
        )
        print(
            f"compacted {report['records_folded']} records at epoch "
            f"{report['epoch']} -> {where} in "
            f"{report['elapsed_seconds'] * 1000:.1f} ms",
            file=sys.stderr,
        )
        return 0
    finally:
        service.close()


def _cmd_delta(args) -> int:
    import json as _json

    from repro.delta import (
        GenerationStore,
        manifest_path_for,
        scan_wal,
        sniff_is_generation_manifest,
    )
    from repro.delta.wal import HEADER_SIZE, WAL_MAGIC

    path = args.path
    with open(path, "rb") as handle:
        head = handle.read(HEADER_SIZE)
    if head[:4] == WAL_MAGIC:
        scan = scan_wal(path)
        print(f"wal:        {path}")
        print(f"generation: {scan.generation}")
        print(f"records:    {len(scan.records)}")
        print(f"good bytes: {scan.good_bytes}")
        if scan.truncated_tail:
            print(
                f"torn tail:  {scan.dropped_bytes} trailing bytes fail "
                "the checksum/frame and will be truncated on recovery"
            )
        else:
            print("torn tail:  none (segment is clean)")
        for record in scan.records[:20]:
            print(f"  {_json.dumps(record.payload(), sort_keys=True)}")
        if len(scan.records) > 20:
            print(f"  ... {len(scan.records) - 20} more")
        return 0
    if sniff_is_generation_manifest(path):
        store = GenerationStore(path)
    elif manifest_path_for(path).exists():
        store = GenerationStore(path)
    else:
        print(
            f"error: {path} is neither a WAL segment nor part of a "
            "generation family (no sibling generations manifest)",
            file=sys.stderr,
        )
        return 2
    print(f"base:       {store.base_path}")
    print(f"manifest:   {store.manifest_path}")
    print(f"current:    generation {store.current_generation} "
          f"({store.current_path().name})")
    for entry in store.generations():
        print(
            f"  gen {entry['generation']:4d}: {entry['file']} — "
            f"epoch {entry['epoch']}, {entry['records_folded']} records "
            f"folded in {entry['wall_seconds']:.2f}s"
        )
    return 0


def _cmd_generate(args) -> int:
    if args.family == "citation":
        graph = citation_graph(args.nodes, num_labels=args.labels, seed=args.seed)
    elif args.family == "powerlaw":
        graph = powerlaw_graph(args.nodes, num_labels=args.labels, seed=args.seed)
    else:
        graph = erdos_renyi_graph(
            args.nodes, 3 * args.nodes, num_labels=args.labels, seed=args.seed
        )
    save_graph_tsv(graph, args.out)
    print(
        f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "match": _cmd_match,
        "gpm": _cmd_gpm,
        "query": _cmd_query,
        "stats": _cmd_stats,
        "index": _cmd_index,
        "shard": _cmd_shard,
        "serve-bench": _cmd_serve_bench,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "compact": _cmd_compact,
        "delta": _cmd_delta,
        "generate": _cmd_generate,
    }
    try:
        return handlers[args.command](args)
    except QuerySyntaxError as exc:
        # Caret-annotated diagnostic on its own lines, never a traceback.
        print(f"error: invalid query syntax\n{exc}", file=sys.stderr)
        return 2
    except (ReproError, OSError, ValueError) as exc:
        # One clean line + exit 2 for every anticipated failure: engine
        # misconfiguration, malformed graph/query/index documents,
        # unreadable files, and algorithm/query-shape mismatches (the
        # planner raises ValueError for those; JSONDecodeError — corrupt
        # --load-index / --query files — subclasses ValueError too).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
