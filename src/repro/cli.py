"""Command-line interface.

Subcommands::

    python -m repro.cli match   --graph g.tsv --query q.json -k 10
    python -m repro.cli gpm     --graph g.tsv --query qg.json -k 10
    python -m repro.cli stats   --graph g.tsv
    python -m repro.cli generate --family citation --nodes 1000 --out g.tsv

``match`` runs top-k tree matching with a chosen algorithm and prints the
matches as JSON; ``gpm`` does the same for graph patterns via mtree+;
``stats`` reports closure/theta statistics (the offline cost of Table 2);
``generate`` writes one of the synthetic workload graphs.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.api import ALGORITHMS, TreeMatcher
from repro.gpm.mtree import KGPMEngine
from repro.graph.generators import citation_graph, erdos_renyi_graph, powerlaw_graph
from repro.graph.query import QueryGraph, QueryTree
from repro.io import load_graph_tsv, load_query, matches_to_json, save_graph_tsv


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k tree/graph pattern matching (VLDB'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    match = sub.add_parser("match", help="top-k tree matching")
    match.add_argument("--graph", required=True, help="data graph (TSV)")
    match.add_argument("--query", required=True, help="query tree (JSON)")
    match.add_argument("-k", type=int, default=10, help="number of matches")
    match.add_argument(
        "--algorithm", choices=ALGORITHMS, default="topk-en",
        help="matching algorithm",
    )

    gpm = sub.add_parser("gpm", help="top-k graph pattern matching (mtree+)")
    gpm.add_argument("--graph", required=True, help="data graph (TSV)")
    gpm.add_argument("--query", required=True, help="query graph (JSON)")
    gpm.add_argument("-k", type=int, default=10)
    gpm.add_argument(
        "--tree-algorithm", choices=("topk-en", "dp-b"), default="topk-en",
        help="tree matcher inside the decomposition framework",
    )

    stats = sub.add_parser("stats", help="offline statistics for a graph")
    stats.add_argument("--graph", required=True, help="data graph (TSV)")

    gen = sub.add_parser("generate", help="generate a synthetic data graph")
    gen.add_argument(
        "--family", choices=("citation", "powerlaw", "uniform"),
        default="citation",
    )
    gen.add_argument("--nodes", type=int, default=1000)
    gen.add_argument("--labels", type=int, default=60)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output TSV path")
    return parser


def _cmd_match(args) -> int:
    graph = load_graph_tsv(args.graph)
    query = load_query(args.query)
    if not isinstance(query, QueryTree):
        print("error: 'match' expects a query-tree document", file=sys.stderr)
        return 2
    matcher = TreeMatcher(graph)
    started = time.perf_counter()
    matches = matcher.top_k(query, args.k, algorithm=args.algorithm)
    elapsed = time.perf_counter() - started
    print(matches_to_json(matches))
    print(
        f"# {len(matches)} matches in {elapsed * 1000:.1f} ms "
        f"({args.algorithm})",
        file=sys.stderr,
    )
    return 0


def _cmd_gpm(args) -> int:
    graph = load_graph_tsv(args.graph)
    query = load_query(args.query)
    if not isinstance(query, QueryGraph):
        print("error: 'gpm' expects a query-graph document", file=sys.stderr)
        return 2
    engine = KGPMEngine(graph, tree_algorithm=args.tree_algorithm)
    started = time.perf_counter()
    matches = engine.top_k(query, args.k)
    elapsed = time.perf_counter() - started
    print(matches_to_json(matches))
    print(
        f"# {len(matches)} matches in {elapsed * 1000:.1f} ms "
        f"(mtree{'+' if args.tree_algorithm == 'topk-en' else ''})",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args) -> int:
    graph = load_graph_tsv(args.graph)
    matcher = TreeMatcher(graph)
    closure = matcher.closure
    store_stats = matcher.store.size_statistics()
    print(f"nodes:            {graph.num_nodes}")
    print(f"edges:            {graph.num_edges}")
    print(f"labels:           {len(graph.labels())}")
    print(f"closure pairs:    {closure.num_pairs}")
    print(f"closure build:    {closure.build_seconds:.2f}s")
    print(f"average theta:    {closure.average_theta():.1f}")
    print(f"store entries:    {store_stats['total_entries']}")
    print(f"store size (est): {matcher.store.estimated_bytes() / 1e6:.1f} MB")
    return 0


def _cmd_generate(args) -> int:
    if args.family == "citation":
        graph = citation_graph(args.nodes, num_labels=args.labels, seed=args.seed)
    elif args.family == "powerlaw":
        graph = powerlaw_graph(args.nodes, num_labels=args.labels, seed=args.seed)
    else:
        graph = erdos_renyi_graph(
            args.nodes, 3 * args.nodes, num_labels=args.labels, seed=args.seed
        )
    save_graph_tsv(graph, args.out)
    print(
        f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "match": _cmd_match,
        "gpm": _cmd_gpm,
        "stats": _cmd_stats,
        "generate": _cmd_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
