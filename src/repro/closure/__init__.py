"""Transitive closure computation, block store layout, and 2-hop labels."""

from repro.closure.constrained import (
    constrained_closure,
    constrained_sources,
    constrained_store,
)
from repro.closure.hybrid import HybridStore
from repro.closure.ondemand import OnDemandStore
from repro.closure.pll import PrunedLandmarkIndex
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure

__all__ = [
    "TransitiveClosure",
    "ClosureStore",
    "OnDemandStore",
    "HybridStore",
    "PrunedLandmarkIndex",
    "constrained_closure",
    "constrained_sources",
    "constrained_store",
]
