"""Label-constrained closure pre-computation.

When the query workload is known in advance, the closure only needs rows
whose *source* node can appear as the tail of some query edge — i.e.
nodes whose label matches a non-leaf query node (Section 5's observation
that the run-time graph is induced by the query's label pairs).  This
module computes that restricted closure, which can be dramatically
cheaper than the full one on graphs with many labels.

The resulting partial :class:`~repro.closure.transitive.TransitiveClosure`
plugs into :class:`~repro.closure.store.ClosureStore` unchanged and
supports exactly the queries whose tail labels were declared.
"""

from __future__ import annotations

from typing import Iterable

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.graph.digraph import LabeledDiGraph, NodeId
from repro.graph.query import WILDCARD, QueryTree
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.twig.semantics import EQUALITY, LabelMatcher


def tail_labels_of_queries(
    queries: Iterable[QueryTree],
) -> set | None:
    """Labels that can appear as closure-edge tails for these queries.

    Those are the labels of *non-leaf* query nodes (every query edge's
    tail).  Returns ``None`` when a wildcard occupies a non-leaf position
    — then every node may be a tail and no restriction is possible.
    """
    labels: set = set()
    for query in queries:
        for u in query.nodes():
            if query.is_leaf(u):
                continue
            label = query.label(u)
            if label == WILDCARD:
                return None
            labels.add(label)
    return labels


def constrained_sources(
    graph: LabeledDiGraph,
    queries: Iterable[QueryTree],
    matcher: LabelMatcher = EQUALITY,
) -> list[NodeId] | None:
    """Data nodes that must be closure sources for the given workload."""
    tails = tail_labels_of_queries(queries)
    if tails is None:
        return None
    alphabet = graph.labels()
    sources: set[NodeId] = set()
    for label in tails:
        data_labels = matcher.data_labels_for(label, alphabet)
        if data_labels is None:
            return None
        for data_label in data_labels:
            sources |= graph.nodes_with_label(data_label)
    return sorted(sources, key=repr)


def constrained_closure(
    graph: LabeledDiGraph,
    queries: Iterable[QueryTree],
    matcher: LabelMatcher = EQUALITY,
) -> TransitiveClosure:
    """Closure restricted to the sources the workload can touch.

    Falls back to the full closure when the workload contains non-leaf
    wildcards (every node is then a potential tail).
    """
    sources = constrained_sources(graph, queries, matcher=matcher)
    if sources is None:
        return TransitiveClosure(graph)
    return TransitiveClosure(graph, sources=sources)


def constrained_store(
    graph: LabeledDiGraph,
    queries: Iterable[QueryTree],
    matcher: LabelMatcher = EQUALITY,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> ClosureStore:
    """A closure store pre-computed for exactly this workload."""
    closure = constrained_closure(graph, queries, matcher=matcher)
    return ClosureStore(graph, closure, block_size=block_size)
