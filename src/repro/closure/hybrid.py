"""Hybrid hot/cold closure store (Section 5, "Managing Closure Size").

The paper proposes: "pre-compute and store in the transitive closure only
the 'hot' lists ..., while others may be computed on the fly by using the
2-hop node labeling techniques".  :class:`HybridStore` implements exactly
that split: the label pairs with the most closure edges (the hot lists,
which dominate storage and are the ones full scans amortize well) are
served from a materialized :class:`~repro.closure.store.ClosureStore`,
and every other pair falls back to the
:class:`~repro.closure.ondemand.OnDemandStore`'s backward searches and
2-hop point queries.

The class implements the same store interface the engines consume, so
``TopkEN``/``DPP`` run unchanged over any hot fraction from 0 (pure
on-demand) to 1 (fully materialized).
"""

from __future__ import annotations

from repro.closure.ondemand import OnDemandStore
from repro.closure.pll import PrunedLandmarkIndex
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.exceptions import ClosureError
from repro.graph.digraph import Label, LabeledDiGraph, NodeId
from repro.storage.blocks import DEFAULT_BLOCK_SIZE, BlockTable
from repro.storage.iostats import IOCounter


class HybridStore:
    """Hot label pairs materialized; cold pairs assembled on demand."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        hot_fraction: float = 0.2,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
        closure: TransitiveClosure | None = None,
        distance_index=None,
        materialized: ClosureStore | None = None,
        hot_pairs: frozenset | None = None,
    ) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ClosureError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}"
            )
        self._graph = graph
        if materialized is not None:
            # Adopt a pre-laid-out hot side (the binary mmap restore
            # path); its closure backs the hot-pair statistics too.
            self._materialized = materialized
            closure = materialized.closure
        else:
            if closure is None:
                closure = TransitiveClosure(graph)
            self._materialized = ClosureStore(
                graph, closure, block_size=block_size, counter=counter
            )
        self.counter = self._materialized.counter
        if distance_index is None:
            # Build the cold-side 2-hop index over the closure's compact
            # artifacts instead of re-interning the same graph twice.
            distance_index = PrunedLandmarkIndex(
                graph, compact=closure.compact_graph
            )
        self._ondemand = OnDemandStore(
            graph, block_size=block_size, counter=self.counter,
            distance_index=distance_index,
        )
        self.hot_fraction = hot_fraction
        self.hot_pairs = (
            frozenset(hot_pairs)
            if hot_pairs is not None
            else self._select_hot_pairs(closure, hot_fraction)
        )

    @staticmethod
    def _select_hot_pairs(
        closure: TransitiveClosure, hot_fraction: float
    ) -> frozenset[tuple[Label, Label]]:
        counts = closure.same_type_statistics()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        keep = round(len(ranked) * hot_fraction)
        return frozenset(pair for pair, _ in ranked[:keep])

    # ------------------------------------------------------------------
    def _is_hot(self, tail_label: Label | None, head_label: Label | None) -> bool:
        """A lookup is served hot only when all its pairs are hot.

        Wildcard lookups (``None`` on either side) span many pairs; they
        are served hot only when *every* matching pair is hot, otherwise
        the on-demand path answers them uniformly.
        """
        if tail_label is not None and head_label is not None:
            return (tail_label, head_label) in self.hot_pairs
        # Wildcards: conservative check across the matching pairs.
        for pair in self._materialized._pairs_matching(tail_label, head_label):
            if pair not in self.hot_pairs:
                return False
        return True

    # ------------------------------------------------------------------
    # Store interface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The data graph."""
        return self._graph

    @property
    def closure(self) -> TransitiveClosure:
        """The full closure backing the materialized (hot) side."""
        return self._materialized.closure

    @property
    def distance_index(self):
        """The 2-hop index answering point distance queries (cold side)."""
        return self._ondemand.distance_index

    def incoming_group(self, head: NodeId, tail_label: Label | None) -> BlockTable:
        """``L^alpha_v`` from the hot tables when possible."""
        head_label = self._graph.label(head)
        if self._is_hot(tail_label, head_label):
            return self._materialized.incoming_group(head, tail_label)
        return self._ondemand.incoming_group(head, tail_label)

    def read_d_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> dict[NodeId, float]:
        """``D^alpha_beta`` from the hot side or recomputed."""
        if self._is_hot(tail_label, head_label):
            return self._materialized.read_d_table(tail_label, head_label)
        return self._ondemand.read_d_table(tail_label, head_label)

    def read_e_table(self, tail_label, head_label):
        """``E^alpha_beta`` from the hot side or recomputed."""
        if self._is_hot(tail_label, head_label):
            return self._materialized.read_e_table(tail_label, head_label)
        return self._ondemand.read_e_table(tail_label, head_label)

    def read_pair_table(
        self,
        tail_label: Label | None,
        head_label: Label | None,
        direct_only: bool = False,
    ):
        """Full ``L^alpha_beta`` stream, hot tables when possible.

        Gives the fully-loaded algorithms (Topk, DP-B, brute force) the
        same interface as the other stores.
        """
        if self._is_hot(tail_label, head_label):
            return self._materialized.read_pair_table(
                tail_label, head_label, direct_only=direct_only
            )
        return self._ondemand.read_pair_table(
            tail_label, head_label, direct_only=direct_only
        )

    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """Point distances always use the 2-hop index (uniform semantics)."""
        return self._ondemand.distance(tail, head)

    def has_direct_edge(self, tail: NodeId, head: NodeId) -> bool:
        """True when ``tail -> head`` is a data-graph edge."""
        return self._graph.has_edge(tail, head)

    # ------------------------------------------------------------------
    def _shared_stats_from(self, ondemand: dict) -> dict:
        """Cold-side contributions that duplicate hot-side structures.

        The on-demand store's backward-search cache re-derives closure
        pairs the materialized tables already hold, and its 2-hop index
        shares the closure's CSR artifacts rather than building its own.
        These are the terms a naive ``materialized + ondemand`` sum
        counts twice; :meth:`stats` subtracts them.  ``ondemand`` is the
        cold side's already-computed ``stats()`` dict (its cache walk is
        the expensive part — don't redo it per term).
        """
        pll_entries = self._ondemand.distance_index.index_size()
        return {
            "pair_count": ondemand["pair_count"] - pll_entries,
            "bytes_estimate": (
                ondemand["bytes_estimate"]
                - self._ondemand.distance_index.index_bytes()
            ),
        }

    def shared_stats(self) -> dict:
        """The hot/cold overlap terms (see :meth:`_shared_stats_from`)."""
        return self._shared_stats_from(self._ondemand.stats())

    def stats(self) -> dict:
        """Uniform size/cost statistics (shared schema across backends).

        Counts each structure once: summing both sides' totals would
        double-count the shared artifacts (every cold backward-search
        entry duplicates a pair the hot tables materialize, and the
        2-hop index rides on the closure's own CSR), so the overlap
        reported by :meth:`shared_stats` is subtracted.
        """
        materialized = self._materialized.stats()
        ondemand = self._ondemand.stats()
        shared = self._shared_stats_from(ondemand)
        return {
            "pair_count": (
                materialized["pair_count"]
                + ondemand["pair_count"]
                - shared["pair_count"]
            ),
            "bytes_estimate": (
                materialized["bytes_estimate"]
                + ondemand["bytes_estimate"]
                - shared["bytes_estimate"]
            ),
            "build_seconds": materialized["build_seconds"],
        }

    def storage_statistics(self) -> dict[str, int | float]:
        """Hot-side storage vs what a full materialization would need."""
        counts = self._materialized.closure.same_type_statistics()
        hot_entries = sum(counts.get(pair, 0) for pair in self.hot_pairs)
        total_entries = sum(counts.values())
        return {
            "hot_pairs": len(self.hot_pairs),
            "total_pairs": len(counts),
            "hot_entries": hot_entries,
            "total_entries": total_entries,
            "hot_storage_fraction": (
                hot_entries / total_entries if total_entries else 0.0
            ),
        }
