"""On-demand closure access — no materialized transitive closure.

Section 3.1/4.1 note that the paper's techniques do not require the full
closure on disk: one can "avoid computing and storing the entire
transitive closure, and assemble only the needed part of the run-time
graph on-demand", answering residual shortest-distance queries with 2-hop
labels (Section 5, "Managing Closure Size").

:class:`OnDemandStore` implements the exact store interface the matching
engines consume, but computes every table lazily from the data graph:

* ``incoming_group(v, alpha)`` — one backward shortest-path search from
  ``v`` (distances *to* ``v``), filtered to ``alpha``-labeled sources;
* ``read_d_table`` / ``read_e_table`` — per label pair, derived from the
  same backward searches (cached per node);
* ``distance`` — answered by a pruned-landmark (2-hop) index.

Every materialized group/table is cached, so repeated queries against the
same label pairs amortize like the paper's "hot lists".  Block reads are
metered through the same counters as the materialized store, which keeps
benchmark comparisons apples-to-apples.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterator

from repro.closure.pll import PrunedLandmarkIndex
from repro.graph.digraph import Label, LabeledDiGraph, NodeId
from repro.storage.blocks import DEFAULT_BLOCK_SIZE, BlockTable, TableDirectory
from repro.storage.iostats import IOCounter

LEntry = tuple[NodeId, float, bool]
EEntry = tuple[NodeId, NodeId, float]


class OnDemandStore:
    """Closure-store interface backed by on-the-fly graph searches."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
        distance_index: PrunedLandmarkIndex | None = None,
    ) -> None:
        self._graph = graph
        self.directory = TableDirectory(counter=counter, block_size=block_size)
        self.counter = self.directory.counter
        self._unit = graph.is_unit_weighted()
        self._pll = (
            distance_index
            if distance_index is not None
            else PrunedLandmarkIndex(graph)
        )
        # node -> {source: distance} for all sources reaching the node.
        self._incoming_cache: dict[NodeId, dict[NodeId, float]] = {}
        # (tail_label, head_node) -> BlockTable.
        self._groups: dict[tuple[Label | None, NodeId], BlockTable] = {}
        self._e_cache: dict[tuple[Label, Label], list[EEntry]] = {}
        self.searches_run = 0

    # ------------------------------------------------------------------
    # Backward search: distances from every node TO the target.
    # ------------------------------------------------------------------
    def _incoming_distances(self, head: NodeId) -> dict[NodeId, float]:
        cached = self._incoming_cache.get(head)
        if cached is not None:
            return cached
        self.searches_run += 1
        graph = self._graph
        dist: dict[NodeId, float] = {}
        if self._unit:
            frontier: deque[tuple[NodeId, float]] = deque(
                (tail, w) for tail, w in graph.predecessors(head).items()
            )
            while frontier:
                node, d = frontier.popleft()
                if node in dist:
                    continue
                dist[node] = d
                for tail, w in graph.predecessors(node).items():
                    if tail not in dist:
                        frontier.append((tail, d + w))
        else:
            heap: list[tuple[float, str, NodeId]] = [
                (w, repr(tail), tail)
                for tail, w in graph.predecessors(head).items()
            ]
            heapq.heapify(heap)
            while heap:
                d, _, node = heapq.heappop(heap)
                if node in dist:
                    continue
                dist[node] = d
                for tail, w in graph.predecessors(node).items():
                    if tail not in dist:
                        heapq.heappush(heap, (d + w, repr(tail), tail))
        self._incoming_cache[head] = dist
        return dist

    # ------------------------------------------------------------------
    # Store interface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The data graph."""
        return self._graph

    def incoming_group(self, head: NodeId, tail_label: Label | None) -> BlockTable:
        """``L^alpha_v`` assembled on demand (metered open + cached)."""
        self.counter.record_open()
        key = (tail_label, head)
        table = self._groups.get(key)
        if table is not None:
            return table
        label_of = self._graph.label
        entries: list[LEntry] = []
        for tail, dist in self._incoming_distances(head).items():
            if tail_label is not None and label_of(tail) != tail_label:
                continue
            entries.append((tail, dist, self._graph.has_edge(tail, head)))
        entries.sort(key=lambda e: (e[1], repr(e[0])))
        table = self.directory.create(f"od-L/{tail_label!r}/{head!r}", entries)
        self._groups[key] = table
        return table

    def _heads_with_label(self, head_label: Label | None) -> Iterator[NodeId]:
        if head_label is None:
            yield from self._graph.nodes()
        else:
            yield from sorted(self._graph.nodes_with_label(head_label), key=repr)

    def read_d_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> dict[NodeId, float]:
        """``D^alpha_beta`` derived from backward searches (metered open)."""
        self.counter.record_open()
        label_of = self._graph.label
        result: dict[NodeId, float] = {}
        for head in self._heads_with_label(head_label):
            best = None
            for tail, dist in self._incoming_distances(head).items():
                if tail_label is not None and label_of(tail) != tail_label:
                    continue
                if best is None or dist < best:
                    best = dist
            if best is not None:
                result[head] = best
        return result

    def read_pair_table(
        self,
        tail_label: Label | None,
        head_label: Label | None,
        direct_only: bool = False,
    ) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Stream every closure triple for a label pair, assembled lazily.

        Mirrors :meth:`repro.closure.store.ClosureStore.read_pair_table`
        so the fully-loaded algorithms (Topk, DP-B, brute force) run over
        this store unchanged: one backward search per qualifying head node
        supplies the triples, and ``direct_only`` keeps only closure edges
        that are also data-graph edges (``/`` axis).
        """
        self.counter.record_open()
        label_of = self._graph.label
        for head in self._heads_with_label(head_label):
            for tail, dist in self._incoming_distances(head).items():
                if tail_label is not None and label_of(tail) != tail_label:
                    continue
                if direct_only and not self._graph.has_edge(tail, head):
                    continue
                yield tail, head, dist

    def read_e_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> list[EEntry]:
        """``E^alpha_beta`` derived from the same backward searches.

        For each ``alpha``-labeled source, its minimum-distance edge to a
        ``beta`` node; computed by inverting the per-head incoming maps.
        """
        self.counter.record_open()
        if tail_label is not None and head_label is not None:
            cached = self._e_cache.get((tail_label, head_label))
            if cached is not None:
                return cached
        label_of = self._graph.label
        best_out: dict[NodeId, tuple[float, NodeId]] = {}
        for head in self._heads_with_label(head_label):
            for tail, dist in self._incoming_distances(head).items():
                if tail_label is not None and label_of(tail) != tail_label:
                    continue
                best = best_out.get(tail)
                if best is None or dist < best[0]:
                    best_out[tail] = (dist, head)
        rows = [
            (tail, head, dist)
            for tail, (dist, head) in sorted(
                best_out.items(), key=lambda kv: repr(kv[0])
            )
        ]
        if tail_label is not None and head_label is not None:
            self._e_cache[(tail_label, head_label)] = rows
        return rows

    @property
    def distance_index(self) -> PrunedLandmarkIndex:
        """The 2-hop index answering point distance queries."""
        return self._pll

    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """Point distance via the 2-hop index (Section 5)."""
        return self._pll.distance(tail, head)

    def has_direct_edge(self, tail: NodeId, head: NodeId) -> bool:
        """True when ``tail -> head`` is a data-graph edge."""
        return self._graph.has_edge(tail, head)

    # ------------------------------------------------------------------
    def cache_statistics(self) -> dict[str, int]:
        """How much closure material was actually assembled."""
        return {
            "searches_run": self.searches_run,
            "nodes_with_incoming_cached": len(self._incoming_cache),
            "groups_materialized": len(self._groups),
            "cached_entries": sum(
                len(d) for d in self._incoming_cache.values()
            ),
            "pll_entries": self._pll.index_size(),
        }
