"""On-demand closure access — no materialized transitive closure.

Section 3.1/4.1 note that the paper's techniques do not require the full
closure on disk: one can "avoid computing and storing the entire
transitive closure, and assemble only the needed part of the run-time
graph on-demand", answering residual shortest-distance queries with 2-hop
labels (Section 5, "Managing Closure Size").

:class:`OnDemandStore` implements the exact store interface the matching
engines consume, but computes every table lazily from the data graph:

* ``incoming_group(v, alpha)`` — one backward shortest-path search from
  ``v`` (distances *to* ``v``), filtered to ``alpha``-labeled sources;
* ``read_d_table`` / ``read_e_table`` — per label pair, derived from the
  same backward searches (cached per node);
* ``distance`` — answered by a pruned-landmark (2-hop) index.

The searches run over the interned CSR layout of :mod:`repro.compact`:
each cached backward result is a pair of id-sorted parallel arrays, so
filtering to one tail label is a binary-search slice of the label's
contiguous id range, and decoding to ``NodeId`` tuples happens at this
API boundary only.

Every materialized group/table is cached, so repeated queries against the
same label pairs amortize like the paper's "hot lists".  Block reads are
metered through the same counters as the materialized store, which keeps
benchmark comparisons apples-to-apples.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import Iterator

from repro.closure.pll import PrunedLandmarkIndex
from repro.compact import CompactGraph, NodeInterner
from repro.graph.digraph import Label, LabeledDiGraph, NodeId
from repro.storage.blocks import DEFAULT_BLOCK_SIZE, BlockTable, TableDirectory
from repro.storage.iostats import IOCounter

LEntry = tuple[NodeId, float, bool]
EEntry = tuple[NodeId, NodeId, float]


class OnDemandStore:
    """Closure-store interface backed by on-the-fly graph searches."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
        distance_index: PrunedLandmarkIndex | None = None,
    ) -> None:
        self._graph = graph
        self.directory = TableDirectory(counter=counter, block_size=block_size)
        self.counter = self.directory.counter
        self._pll = (
            distance_index
            if distance_index is not None
            else PrunedLandmarkIndex(graph)
        )
        # Reuse the 2-hop index's compact artifacts when they describe
        # this very graph (the interner is a pure function of the graph,
        # so sharing is safe); otherwise build our own.
        if self._pll.graph is graph:
            self._interner = self._pll.interner
            self._compact = self._pll.compact_graph
        else:  # pragma: no cover - defensive; indexes are built per graph
            self._interner = NodeInterner.from_graph(graph)
            self._compact = CompactGraph(graph, self._interner)
        # head id -> (source ids ascending, distances) reaching the head.
        self._incoming_cache: dict[int, tuple[array, array]] = {}
        # (tail_label, head_node) -> BlockTable.
        self._groups: dict[tuple[Label | None, NodeId], BlockTable] = {}
        self._e_cache: dict[tuple[Label, Label], list[EEntry]] = {}
        self.searches_run = 0

    # ------------------------------------------------------------------
    # Backward search: distances from every node TO the target.
    # ------------------------------------------------------------------
    def _incoming_distances(self, head_id: int) -> tuple[array, array]:
        cached = self._incoming_cache.get(head_id)
        if cached is not None:
            return cached
        self.searches_run += 1
        result = self._compact.shortest_to(head_id)
        self._incoming_cache[head_id] = result
        return result

    def _incoming_slice(
        self, head_id: int, tail_label: Label | None
    ) -> tuple[array, array, int, int]:
        """The (sources, dists, lo, hi) run matching ``tail_label``."""
        sources, dists = self._incoming_distances(head_id)
        if tail_label is None:
            return sources, dists, 0, len(sources)
        id_range = self._interner.label_range(tail_label)
        lo = bisect_left(sources, id_range.start)
        hi = bisect_left(sources, id_range.stop)
        return sources, dists, lo, hi

    # ------------------------------------------------------------------
    # Store interface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The data graph."""
        return self._graph

    def incoming_group(self, head: NodeId, tail_label: Label | None) -> BlockTable:
        """``L^alpha_v`` assembled on demand (metered open + cached)."""
        self.counter.record_open()
        key = (tail_label, head)
        table = self._groups.get(key)
        if table is not None:
            return table
        resolve = self._interner.resolve
        has_edge = self._compact.has_edge
        head_id = self._interner.get(head)
        entries: list[LEntry] = []
        if head_id is not None:
            sources, dists, lo, hi = self._incoming_slice(head_id, tail_label)
            if tail_label is None:
                # Ids interleave labels here; tie-break on repr like the
                # materialized store's wildcard merge.
                keyed = sorted(
                    (dists[k], repr(resolve(sources[k])), sources[k])
                    for k in range(lo, hi)
                )
                entries = [
                    (resolve(s), d, has_edge(s, head_id)) for d, _, s in keyed
                ]
            else:
                # Within one label, id order equals repr order.
                keyed = sorted(
                    (dists[k], sources[k]) for k in range(lo, hi)
                )
                entries = [
                    (resolve(s), d, has_edge(s, head_id)) for d, s in keyed
                ]
        table = self.directory.create(f"od-L/{tail_label!r}/{head!r}", entries)
        self._groups[key] = table
        return table

    def _heads_with_label(self, head_label: Label | None) -> Iterator[int]:
        if head_label is None:
            yield from range(len(self._interner))
        else:
            yield from self._interner.label_range(head_label)

    def read_d_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> dict[NodeId, float]:
        """``D^alpha_beta`` derived from backward searches (metered open)."""
        self.counter.record_open()
        resolve = self._interner.resolve
        result: dict[NodeId, float] = {}
        for head_id in self._heads_with_label(head_label):
            _, dists, lo, hi = self._incoming_slice(head_id, tail_label)
            best = None
            for k in range(lo, hi):
                if best is None or dists[k] < best:
                    best = dists[k]
            if best is not None:
                result[resolve(head_id)] = best
        return result

    def read_pair_table(
        self,
        tail_label: Label | None,
        head_label: Label | None,
        direct_only: bool = False,
    ) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Stream every closure triple for a label pair, assembled lazily.

        Mirrors :meth:`repro.closure.store.ClosureStore.read_pair_table`
        so the fully-loaded algorithms (Topk, DP-B, brute force) run over
        this store unchanged: one backward search per qualifying head node
        supplies the triples, and ``direct_only`` keeps only closure edges
        that are also data-graph edges (``/`` axis).
        """
        self.counter.record_open()
        resolve = self._interner.resolve
        has_edge = self._compact.has_edge
        for head_id in self._heads_with_label(head_label):
            sources, dists, lo, hi = self._incoming_slice(head_id, tail_label)
            head = resolve(head_id)
            for k in range(lo, hi):
                source_id = sources[k]
                if direct_only and not has_edge(source_id, head_id):
                    continue
                yield resolve(source_id), head, dists[k]

    def read_e_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> list[EEntry]:
        """``E^alpha_beta`` derived from the same backward searches.

        For each ``alpha``-labeled source, its minimum-distance edge to a
        ``beta`` node; computed by inverting the per-head incoming maps.
        """
        self.counter.record_open()
        if tail_label is not None and head_label is not None:
            cached = self._e_cache.get((tail_label, head_label))
            if cached is not None:
                return cached
        resolve = self._interner.resolve
        best_out: dict[int, tuple[float, int]] = {}
        for head_id in self._heads_with_label(head_label):
            sources, dists, lo, hi = self._incoming_slice(head_id, tail_label)
            for k in range(lo, hi):
                source_id = sources[k]
                best = best_out.get(source_id)
                if best is None or dists[k] < best[0]:
                    best_out[source_id] = (dists[k], head_id)
        rows = [
            (resolve(source_id), resolve(head_id), dist)
            for source_id, (dist, head_id) in sorted(best_out.items())
        ]
        rows.sort(key=lambda e: repr(e[0]))
        if tail_label is not None and head_label is not None:
            self._e_cache[(tail_label, head_label)] = rows
        return rows

    @property
    def distance_index(self) -> PrunedLandmarkIndex:
        """The 2-hop index answering point distance queries."""
        return self._pll

    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """Point distance via the 2-hop index (Section 5)."""
        return self._pll.distance(tail, head)

    def has_direct_edge(self, tail: NodeId, head: NodeId) -> bool:
        """True when ``tail -> head`` is a data-graph edge."""
        return self._graph.has_edge(tail, head)

    # ------------------------------------------------------------------
    def cache_statistics(self) -> dict[str, int]:
        """How much closure material was actually assembled."""
        return {
            "searches_run": self.searches_run,
            "nodes_with_incoming_cached": len(self._incoming_cache),
            "groups_materialized": len(self._groups),
            "cached_entries": sum(
                len(sources) for sources, _ in self._incoming_cache.values()
            ),
            "pll_entries": self._pll.index_size(),
        }

    def stats(self) -> dict:
        """Uniform size/cost statistics (shared schema across backends)."""
        cache = self.cache_statistics()
        cache_bytes = sys.getsizeof(self._incoming_cache)
        for sources, dists in self._incoming_cache.values():
            # getsizeof(array) includes the allocated element buffer.
            cache_bytes += sys.getsizeof(sources) + sys.getsizeof(dists)
        return {
            "pair_count": cache["cached_entries"] + cache["pll_entries"],
            "bytes_estimate": cache_bytes + self._pll.index_bytes(),
            "build_seconds": 0.0,
        }
