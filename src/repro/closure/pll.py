"""Pruned landmark labeling (2-hop) distance index.

Section 5 ("Managing Closure Size") proposes keeping only hot closure lists
and answering the remaining shortest-distance queries with 2-hop labels
[1, 8, 26].  This module implements the pruned landmark labeling of Akiba
et al. (SIGMOD'13) for directed graphs: every node ``v`` stores an OUT
label (landmarks reachable from ``v``) and an IN label (landmarks that
reach ``v``); ``dist(u, w) = min over landmarks x of OUT_u[x] + IN_w[x]``.

Unit-weight graphs use pruned BFS; weighted graphs use pruned Dijkstra.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable

from repro.graph.digraph import LabeledDiGraph, NodeId

_INF = float("inf")


class PrunedLandmarkIndex:
    """A 2-hop cover of all-pairs shortest distances.

    Landmarks are processed in decreasing total-degree order (the standard
    heuristic); each landmark's forward search populates IN labels of the
    nodes it reaches and its backward search populates OUT labels, pruning
    any node whose distance is already covered by earlier landmarks.
    """

    def __init__(
        self, graph: LabeledDiGraph, order: Iterable[NodeId] | None = None
    ) -> None:
        self._graph = graph
        if order is None:
            order = sorted(
                graph.nodes(),
                key=lambda v: (-(graph.out_degree(v) + graph.in_degree(v)), repr(v)),
            )
        self._rank = {node: i for i, node in enumerate(order)}
        # label_out[v]: {landmark: dist(v -> landmark)}
        self.label_out: dict[NodeId, dict[NodeId, float]] = {
            v: {} for v in graph.nodes()
        }
        # label_in[v]: {landmark: dist(landmark -> v)}
        self.label_in: dict[NodeId, dict[NodeId, float]] = {
            v: {} for v in graph.nodes()
        }
        unit = graph.is_unit_weighted()
        for landmark in order:
            self._expand(landmark, forward=True, unit=unit)
            self._expand(landmark, forward=False, unit=unit)

    # ------------------------------------------------------------------
    def _covered(self, tail: NodeId, head: NodeId) -> float:
        """Distance tail -> head using labels built so far (inf if none)."""
        out_l = self.label_out[tail]
        in_l = self.label_in[head]
        # Iterate the smaller label for speed.
        if len(out_l) > len(in_l):
            best = _INF
            for landmark, d_in in in_l.items():
                d_out = out_l.get(landmark)
                if d_out is not None and d_out + d_in < best:
                    best = d_out + d_in
            return best
        best = _INF
        for landmark, d_out in out_l.items():
            d_in = in_l.get(landmark)
            if d_in is not None and d_out + d_in < best:
                best = d_out + d_in
        return best

    def _neighbors(self, node: NodeId, forward: bool):
        if forward:
            return self._graph.successors(node).items()
        return self._graph.predecessors(node).items()

    def _expand(self, landmark: NodeId, forward: bool, unit: bool) -> None:
        """Pruned search from ``landmark``; fills IN (forward) or OUT labels."""
        rank_of = self._rank
        my_rank = rank_of[landmark]
        target = self.label_in if forward else self.label_out
        if unit:
            frontier: deque[tuple[NodeId, float]] = deque()
            for nxt, w in self._neighbors(landmark, forward):
                frontier.append((nxt, w))
            dist_of: dict[NodeId, float] = {}
            while frontier:
                node, dist = frontier.popleft()
                if node in dist_of:
                    continue
                dist_of[node] = dist
                if node == landmark:
                    # A cycle back to the landmark: record the self distance
                    # (closure semantics count non-empty cycles) once, on the
                    # forward pass only to avoid duplication.
                    if forward:
                        self.label_in[landmark][landmark] = dist
                    continue
                if rank_of[node] < my_rank:
                    continue  # already a landmark; its searches covered this
                covered = (
                    self._covered(landmark, node)
                    if forward
                    else self._covered(node, landmark)
                )
                if covered <= dist:
                    continue  # pruned
                target[node][landmark] = dist
                for nxt, w in self._neighbors(node, forward):
                    if nxt not in dist_of:
                        frontier.append((nxt, dist + w))
        else:
            heap: list[tuple[float, int, NodeId]] = []
            counter = 0
            for nxt, w in self._neighbors(landmark, forward):
                heapq.heappush(heap, (w, counter, nxt))
                counter += 1
            done: set[NodeId] = set()
            while heap:
                dist, _, node = heapq.heappop(heap)
                if node in done:
                    continue
                done.add(node)
                if node == landmark:
                    if forward:
                        self.label_in[landmark][landmark] = dist
                    continue
                if rank_of[node] < my_rank:
                    continue
                covered = (
                    self._covered(landmark, node)
                    if forward
                    else self._covered(node, landmark)
                )
                if covered <= dist:
                    continue
                target[node][landmark] = dist
                for nxt, w in self._neighbors(node, forward):
                    if nxt not in done:
                        heapq.heappush(heap, (dist + w, counter, nxt))
                        counter += 1

    # ------------------------------------------------------------------
    @classmethod
    def from_labels(
        cls,
        graph: LabeledDiGraph,
        label_out: dict[NodeId, dict[NodeId, float]],
        label_in: dict[NodeId, dict[NodeId, float]],
    ) -> "PrunedLandmarkIndex":
        """Rebuild an index from persisted 2-hop labels.

        Distance queries only need the label maps, so the pruned searches
        — the expensive construction phase — are skipped entirely.  Nodes
        absent from the persisted maps get empty labels.
        """
        self = cls.__new__(cls)
        self._graph = graph
        self._rank = {}
        self.label_out = {v: {} for v in graph.nodes()}
        self.label_in = {v: {} for v in graph.nodes()}
        for node, labels in label_out.items():
            self.label_out[node] = dict(labels)
        for node, labels in label_in.items():
            self.label_in[node] = dict(labels)
        return self

    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """Shortest distance via the 2-hop cover (``None`` if unreachable).

        Matches the closure semantics: only non-empty paths count, so a
        node is at distance ``None`` from itself unless it lies on a cycle.
        """
        best = _INF
        out_l = self.label_out[tail]
        in_l = self.label_in[head]
        if len(out_l) > len(in_l):
            for landmark, d_in in in_l.items():
                d_out = out_l.get(landmark)
                if d_out is not None and d_out + d_in < best:
                    best = d_out + d_in
        else:
            for landmark, d_out in out_l.items():
                d_in = in_l.get(landmark)
                if d_in is not None and d_out + d_in < best:
                    best = d_out + d_in
        # Direct label hits: landmark == endpoint.
        d = in_l.get(tail)
        if d is not None and d < best:
            best = d
        d = out_l.get(head)
        if d is not None and d < best:
            best = d
        return None if best == _INF else best

    def index_size(self) -> int:
        """Total number of label entries (the space cost of the index)."""
        return sum(len(l) for l in self.label_out.values()) + sum(
            len(l) for l in self.label_in.values()
        )
