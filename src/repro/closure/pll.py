"""Pruned landmark labeling (2-hop) distance index.

Section 5 ("Managing Closure Size") proposes keeping only hot closure lists
and answering the remaining shortest-distance queries with 2-hop labels
[1, 8, 26].  This module implements the pruned landmark labeling of Akiba
et al. (SIGMOD'13) for directed graphs: every node ``v`` stores an OUT
label (landmarks reachable from ``v``) and an IN label (landmarks that
reach ``v``); ``dist(u, w) = min over landmarks x of OUT_u[x] + IN_w[x]``.

The pruned searches run over the interned CSR layout of
:mod:`repro.compact`; label maps are keyed by interned ints internally
and decoded only at the public API boundary (:meth:`distance` interns
its endpoints, :attr:`label_out`/:attr:`label_in` decode for
persistence).

Unit-weight graphs use pruned BFS; weighted graphs use pruned Dijkstra.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Iterable

from repro.compact import CompactGraph, NodeInterner
from repro.exceptions import GraphError
from repro.graph.digraph import LabeledDiGraph, NodeId

_INF = float("inf")


class PrunedLandmarkIndex:
    """A 2-hop cover of all-pairs shortest distances.

    Landmarks are processed in decreasing total-degree order (the standard
    heuristic); each landmark's forward search populates IN labels of the
    nodes it reaches and its backward search populates OUT labels, pruning
    any node whose distance is already covered by earlier landmarks.
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        order: Iterable[NodeId] | None = None,
        compact: CompactGraph | None = None,
    ) -> None:
        self._graph = graph
        if compact is not None:
            # Share already-built compact artifacts (e.g. the hybrid
            # store's closure CSR) — they are a pure function of the
            # graph, so reuse is safe and halves resident CSR memory.
            self._interner = compact.interner
            self._compact = compact
        else:
            self._interner = NodeInterner.from_graph(graph)
            self._compact = CompactGraph(graph, self._interner)
        n = len(self._interner)
        if order is None:
            order_ids = sorted(
                range(n),
                key=lambda v: (
                    -(self._compact.out_degree(v) + self._compact.in_degree(v)),
                    repr(self._interner.resolve(v)),
                ),
            )
        else:
            order_ids = [self._interner.intern(node) for node in order]
        self._rank = [0] * n
        for position, node_id in enumerate(order_ids):
            self._rank[node_id] = position
        # _out[v]: {landmark: dist(v -> landmark)}
        self._out: list[dict[int, float]] = [{} for _ in range(n)]
        # _in[v]: {landmark: dist(landmark -> v)}
        self._in: list[dict[int, float]] = [{} for _ in range(n)]
        for landmark in order_ids:
            self._expand(landmark, forward=True)
            self._expand(landmark, forward=False)

    # ------------------------------------------------------------------
    def _covered(self, tail_id: int, head_id: int) -> float:
        """Distance tail -> head using labels built so far (inf if none)."""
        out_l = self._out[tail_id]
        in_l = self._in[head_id]
        # Iterate the smaller label for speed.
        if len(out_l) > len(in_l):
            best = _INF
            for landmark, d_in in in_l.items():
                d_out = out_l.get(landmark)
                if d_out is not None and d_out + d_in < best:
                    best = d_out + d_in
            return best
        best = _INF
        for landmark, d_out in out_l.items():
            d_in = in_l.get(landmark)
            if d_in is not None and d_out + d_in < best:
                best = d_out + d_in
        return best

    def _expand(self, landmark: int, forward: bool) -> None:
        """Pruned search from ``landmark``; fills IN (forward) or OUT labels."""
        cgraph = self._compact
        if forward:
            offsets, targets, weights = (
                cgraph.out_offsets, cgraph.out_targets, cgraph.out_weights,
            )
        else:
            offsets, targets, weights = (
                cgraph.in_offsets, cgraph.in_targets, cgraph.in_weights,
            )
        rank_of = self._rank
        my_rank = rank_of[landmark]
        target_labels = self._in if forward else self._out
        if cgraph.unit_weighted:
            frontier: deque[tuple[int, float]] = deque()
            for k in range(offsets[landmark], offsets[landmark + 1]):
                frontier.append((targets[k], weights[k]))
            seen: set[int] = set()
            while frontier:
                node, dist = frontier.popleft()
                if node in seen:
                    continue
                seen.add(node)
                if node == landmark:
                    # A cycle back to the landmark: record the self distance
                    # (closure semantics count non-empty cycles) once, on the
                    # forward pass only to avoid duplication.
                    if forward:
                        self._in[landmark][landmark] = dist
                    continue
                if rank_of[node] < my_rank:
                    continue  # already a landmark; its searches covered this
                covered = (
                    self._covered(landmark, node)
                    if forward
                    else self._covered(node, landmark)
                )
                if covered <= dist:
                    continue  # pruned
                target_labels[node][landmark] = dist
                for k in range(offsets[node], offsets[node + 1]):
                    nxt = targets[k]
                    if nxt not in seen:
                        frontier.append((nxt, dist + weights[k]))
        else:
            heap: list[tuple[float, int]] = [
                (weights[k], targets[k])
                for k in range(offsets[landmark], offsets[landmark + 1])
            ]
            heapq.heapify(heap)
            done: set[int] = set()
            while heap:
                dist, node = heapq.heappop(heap)
                if node in done:
                    continue
                done.add(node)
                if node == landmark:
                    if forward:
                        self._in[landmark][landmark] = dist
                    continue
                if rank_of[node] < my_rank:
                    continue
                covered = (
                    self._covered(landmark, node)
                    if forward
                    else self._covered(node, landmark)
                )
                if covered <= dist:
                    continue
                target_labels[node][landmark] = dist
                for k in range(offsets[node], offsets[node + 1]):
                    nxt = targets[k]
                    if nxt not in done:
                        heapq.heappush(heap, (dist + weights[k], nxt))

    # ------------------------------------------------------------------
    @classmethod
    def from_interned_labels(
        cls,
        graph: LabeledDiGraph,
        interner: NodeInterner,
        compact: CompactGraph,
        label_out: list[dict[int, float]],
        label_in: list[dict[int, float]],
    ) -> "PrunedLandmarkIndex":
        """Adopt already-interned label maps (the binary persistence path).

        Unlike :meth:`from_labels` there is no decode/re-intern pass: the
        supplied per-node ``{landmark_id: dist}`` dicts are used as-is and
        the interner/CSR artifacts (typically reconstructed from the same
        index file) are shared, not rebuilt.
        """
        n = len(interner)
        if len(label_out) != n or len(label_in) != n:
            raise GraphError(
                f"label maps cover {len(label_out)}/{len(label_in)} nodes "
                f"but the interner has {n}"
            )
        self = cls.__new__(cls)
        self._graph = graph
        self._interner = interner
        self._compact = compact
        self._rank = [0] * n
        self._out = label_out
        self._in = label_in
        return self

    @classmethod
    def from_labels(
        cls,
        graph: LabeledDiGraph,
        label_out: dict[NodeId, dict[NodeId, float]],
        label_in: dict[NodeId, dict[NodeId, float]],
    ) -> "PrunedLandmarkIndex":
        """Rebuild an index from persisted 2-hop labels.

        Distance queries only need the label maps, so the pruned searches
        — the expensive construction phase — are skipped entirely.  Nodes
        absent from the persisted maps get empty labels.
        """
        self = cls.__new__(cls)
        self._graph = graph
        self._interner = NodeInterner.from_graph(graph)
        self._compact = CompactGraph(graph, self._interner)
        n = len(self._interner)
        self._rank = [0] * n
        self._out = [{} for _ in range(n)]
        self._in = [{} for _ in range(n)]
        intern = self._interner.get
        for target, source in ((self._out, label_out), (self._in, label_in)):
            for node, labels in source.items():
                node_id = intern(node)
                if node_id is None:
                    continue
                target[node_id] = {
                    intern(lm): float(d)
                    for lm, d in labels.items()
                    if intern(lm) is not None
                }
        return self

    # ------------------------------------------------------------------
    # Public surface (NodeId vocabulary)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The data graph this index was built over."""
        return self._graph

    @property
    def interner(self) -> NodeInterner:
        """The ``NodeId <-> int`` mapping (shared with the lazy stores)."""
        return self._interner

    @property
    def compact_graph(self) -> CompactGraph:
        """The CSR snapshot the pruned searches ran over."""
        return self._compact

    @property
    def label_out(self) -> dict[NodeId, dict[NodeId, float]]:
        """Decoded OUT labels per node (persistence/introspection)."""
        resolve = self._interner.resolve
        return {
            resolve(v): {resolve(lm): d for lm, d in labels.items()}
            for v, labels in enumerate(self._out)
        }

    @property
    def label_in(self) -> dict[NodeId, dict[NodeId, float]]:
        """Decoded IN labels per node (persistence/introspection)."""
        resolve = self._interner.resolve
        return {
            resolve(v): {resolve(lm): d for lm, d in labels.items()}
            for v, labels in enumerate(self._in)
        }

    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """Shortest distance via the 2-hop cover (``None`` if unreachable).

        Matches the closure semantics: only non-empty paths count, so a
        node is at distance ``None`` from itself unless it lies on a cycle.
        """
        tail_id = self._interner.get(tail)
        head_id = self._interner.get(head)
        if tail_id is None:
            raise KeyError(tail)
        if head_id is None:
            raise KeyError(head)
        best = _INF
        out_l = self._out[tail_id]
        in_l = self._in[head_id]
        if len(out_l) > len(in_l):
            for landmark, d_in in in_l.items():
                d_out = out_l.get(landmark)
                if d_out is not None and d_out + d_in < best:
                    best = d_out + d_in
        else:
            for landmark, d_out in out_l.items():
                d_in = in_l.get(landmark)
                if d_in is not None and d_out + d_in < best:
                    best = d_out + d_in
        # Direct label hits: landmark == endpoint.
        d = in_l.get(tail_id)
        if d is not None and d < best:
            best = d
        d = out_l.get(head_id)
        if d is not None and d < best:
            best = d
        return None if best == _INF else best

    def index_size(self) -> int:
        """Total number of label entries (the space cost of the index)."""
        return sum(len(labels) for labels in self._out) + sum(
            len(labels) for labels in self._in
        )

    def index_bytes(self) -> int:
        """Measured resident bytes of the label maps (containers + boxed
        distance values; interned int keys are shared and not counted)."""
        total = 0
        for side in (self._out, self._in):
            total += sys.getsizeof(side)
            for labels in side:
                total += sys.getsizeof(labels)
                total += sum(sys.getsizeof(d) for d in labels.values())
        return total

    def stats(self) -> dict:
        """Uniform size/cost statistics (shared schema across backends)."""
        return {
            "pair_count": self.index_size(),
            "bytes_estimate": self.index_bytes(),
            "build_seconds": 0.0,
        }
