"""Block-organized closure store — the disk layout of Sections 3.1 & 4.1.

For every pair of labels ``alpha, beta`` the store keeps:

* ``L`` groups: the incoming closure edges to each ``beta``-labeled node
  ``v`` from ``alpha``-labeled nodes, as one contiguous, distance-sorted
  block run per node (the paper's ``L^alpha_v`` groups inside table
  ``L^alpha_beta``).  Each entry is ``(tail, distance, is_direct)``; the
  ``is_direct`` flag marks closure edges that are also data-graph edges and
  supports the ``/`` axis of Section 5.
* ``D^alpha_beta``: per target node ``v``, ``d^alpha_v`` — the minimum
  incoming distance from ``alpha`` nodes.  The paper stores only values
  greater than 1; we store all of them so the node universe of a label is
  recoverable from the ``D`` table alone (documented deviation, see
  DESIGN.md).
* ``E^alpha_beta``: per source node ``v`` labeled ``alpha``, its single
  minimum-distance outgoing closure edge to a ``beta`` node (the paper's
  ``E_v`` entries, regrouped by label pair).

Physically each ``L^alpha_beta`` table is *one* flat distance-sorted run
of parallel typed arrays (interned tail ids, distances, direct flags)
with per-node group offsets: opening ``L^alpha_v`` is an O(1) binary
search + slice bound, and entry tuples are decoded per block read, not
materialized at build time.  The ``D`` table is implicit — ``d^alpha_v``
is the first (minimum) distance of ``v``'s group run.  External callers
see ``NodeId`` tuples exactly as before: decoding happens at this API
boundary (DESIGN.md, "The interned-ID boundary contract").

All reads go through the metered block layer so algorithms can be compared
by blocks touched, and wildcard lookups (label ``None``) merge across the
corresponding label dimension.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterator

from repro.closure.transitive import TransitiveClosure
from repro.compact import buffer_bytes
from repro.exceptions import ClosureError
from repro.graph.digraph import Label, LabeledDiGraph, NodeId
from repro.storage.blocks import (
    DEFAULT_BLOCK_SIZE,
    BlockTable,
    LazyBlockTable,
    TableDirectory,
)
from repro.storage.iostats import IOCounter

#: Entry of an ``L`` group: (tail node, shortest distance, is direct edge).
LEntry = tuple[NodeId, float, bool]
#: Entry of a ``D`` table: (target node, minimum incoming distance).
DEntry = tuple[NodeId, float]
#: Entry of an ``E`` table: (source node, target node, distance).
EEntry = tuple[NodeId, NodeId, float]


def _fmt(label: Label) -> str:
    return repr(label)


class _PairTable:
    """Columnar ``L^alpha_beta`` + ``E^alpha_beta`` for one label pair.

    ``tails``/``dists``/``direct`` hold every entry of the table, grouped
    by head node (heads ascending by interned id) and distance-sorted
    within each group; ``offsets[j]:offsets[j+1]`` bounds the group of
    ``heads[j]``.  ``e_*`` hold the per-source minimum outgoing edge.
    """

    __slots__ = (
        "tails", "dists", "direct", "heads", "offsets",
        "e_tails", "e_heads", "e_dists",
    )

    def __init__(self, entries: list[tuple[int, float, int, int]]) -> None:
        # entries: (head, dist, tail, is_direct), sorted by (head, dist, tail).
        self.tails = array("i", (e[2] for e in entries))
        self.dists = array("d", (e[1] for e in entries))
        self.direct = bytearray(e[3] for e in entries)
        self.heads = array("i")
        self.offsets = array("i")
        best_out: dict[int, tuple[float, int]] = {}
        previous_head = None
        for position, (head, dist, tail, _) in enumerate(entries):
            if head != previous_head:
                self.heads.append(head)
                self.offsets.append(position)
                previous_head = head
            candidate = (dist, head)
            current = best_out.get(tail)
            if current is None or candidate < current:
                best_out[tail] = candidate
        self.offsets.append(len(self.tails))
        self.e_tails = array("i", sorted(best_out))
        self.e_dists = array("d", (best_out[t][0] for t in self.e_tails))
        self.e_heads = array("i", (best_out[t][1] for t in self.e_tails))

    @classmethod
    def from_columns(
        cls, tails, dists, direct, heads, offsets, e_tails, e_heads, e_dists
    ) -> "_PairTable":
        """Adopt already-built columns (the mmap persistence fast path).

        The buffers may be ``array``/``bytearray`` objects or read-only
        memoryviews over an ``mmap`` section: every read path only
        indexes, slices, and bisects them, so mapped tables page in per
        block read without any decode-at-open cost.
        """
        self = cls.__new__(cls)
        self.tails, self.dists, self.direct = tails, dists, direct
        self.heads, self.offsets = heads, offsets
        self.e_tails, self.e_heads, self.e_dists = e_tails, e_heads, e_dists
        return self

    @property
    def num_entries(self) -> int:
        return len(self.tails)

    @property
    def num_groups(self) -> int:
        return len(self.heads)

    def group_bounds(self, head_id: int) -> tuple[int, int] | None:
        """The ``[start, stop)`` run of ``head_id``'s group, or ``None``."""
        j = bisect_left(self.heads, head_id)
        if j < len(self.heads) and self.heads[j] == head_id:
            return self.offsets[j], self.offsets[j + 1]
        return None

    def bytes_resident(self) -> int:
        """Measured bytes of all typed buffers (mapped extent for mmap)."""
        return (
            buffer_bytes(self.tails)
            + buffer_bytes(self.dists)
            + buffer_bytes(self.direct)
            + buffer_bytes(self.heads)
            + buffer_bytes(self.offsets)
            + buffer_bytes(self.e_tails)
            + buffer_bytes(self.e_heads)
            + buffer_bytes(self.e_dists)
        )


class ClosureStore:
    """Metered, block-organized view of a transitive closure."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        closure: TransitiveClosure,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
    ) -> None:
        self._graph = graph
        self._closure = closure
        self._interner = closure.interner
        self.directory = TableDirectory(counter=counter, block_size=block_size)
        self.counter = self.directory.counter

        # (tail_label, head_label) -> columnar pair table.
        self._pair_tables: dict[tuple[Label, Label], _PairTable] = {}
        # head id -> set of tail labels with a non-empty group.
        self._tail_labels_of: dict[int, set[Label]] = {}

        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: LabeledDiGraph,
        closure: TransitiveClosure | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
    ) -> "ClosureStore":
        """Compute the closure (if not given) and lay it out in blocks."""
        if closure is None:
            closure = TransitiveClosure(graph)
        return cls(graph, closure, block_size=block_size, counter=counter)

    @classmethod
    def from_tables(
        cls,
        graph: LabeledDiGraph,
        closure: TransitiveClosure,
        pair_tables: dict[tuple[Label, Label], _PairTable],
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
    ) -> "ClosureStore":
        """Adopt already-laid-out pair tables (the mmap persistence path).

        Skips :meth:`_build` entirely: the tables' columns slice straight
        out of whatever buffers they were opened over (typically an
        ``mmap``), so opening a store costs O(groups) directory work, not
        O(pairs log pairs) layout work.
        """
        self = cls.__new__(cls)
        self._graph = graph
        self._closure = closure
        self._interner = closure.interner
        self.directory = TableDirectory(counter=counter, block_size=block_size)
        self.counter = self.directory.counter
        self._pair_tables = dict(pair_tables)
        self._tail_labels_of = {}
        for (alpha, _beta), table in self._pair_tables.items():
            for head_id in table.heads:
                self._tail_labels_of.setdefault(head_id, set()).add(alpha)
        return self

    def _build(self) -> None:
        interner = self._interner
        cgraph = self._closure.compact_graph
        rows = self._closure.rows
        label_of = interner.label_of
        out_offsets, out_targets = cgraph.out_offsets, cgraph.out_targets
        ranges = list(interner.label_ranges())
        # Pure integer sort keys end to end: (head, dist, tail) — within a
        # label, id order equals the repr order the dict layout sorted by.
        buckets: dict[tuple[Label, Label], list[tuple[int, float, int, int]]] = {}
        for source_id in rows.sources():
            targets, dists = rows.row(source_id)
            row_len = len(targets)
            if not row_len:
                continue
            alpha = label_of(source_id)
            # Direct-edge flags for the whole row in one merge walk: both
            # the row targets and the CSR out-neighbors are id-sorted.
            flags = bytearray(row_len)
            walk = out_offsets[source_id]
            out_hi = out_offsets[source_id + 1]
            for k in range(row_len):
                target_id = targets[k]
                while walk < out_hi and out_targets[walk] < target_id:
                    walk += 1
                if walk < out_hi and out_targets[walk] == target_id:
                    flags[k] = 1
            for beta, id_range in ranges:
                lo = bisect_left(targets, id_range.start)
                hi = bisect_left(targets, id_range.stop)
                if hi <= lo:
                    continue
                buckets.setdefault((alpha, beta), []).extend(
                    zip(
                        targets[lo:hi],
                        dists[lo:hi],
                        (source_id,) * (hi - lo),
                        flags[lo:hi],
                    )
                )
        for pair, bucket in buckets.items():
            bucket.sort()
            table = _PairTable(bucket)
            self._pair_tables[pair] = table
            for head_id in table.heads:
                self._tail_labels_of.setdefault(head_id, set()).add(pair[0])

    # ------------------------------------------------------------------
    # Structural lookups (directory metadata, unmetered)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The data graph this store was built from."""
        return self._graph

    @property
    def closure(self) -> TransitiveClosure:
        """The in-memory closure (used for unmetered distance probes)."""
        return self._closure

    def _pairs_matching(
        self, tail_label: Label | None, head_label: Label | None
    ) -> Iterator[tuple[Label, Label]]:
        if tail_label is not None and head_label is not None:
            if (tail_label, head_label) in self._pair_tables:
                yield (tail_label, head_label)
            return
        for pair in self._pair_tables:
            if tail_label is not None and pair[0] != tail_label:
                continue
            if head_label is not None and pair[1] != head_label:
                continue
            yield pair

    def group_targets(
        self, tail_label: Label | None, head_label: Label | None
    ) -> list[NodeId]:
        """Head nodes with a non-empty incoming group for the label pair.

        ``None`` on either side acts as a wildcard and merges the matching
        tables (Section 5 wildcard support).
        """
        resolve = self._interner.resolve
        if tail_label is not None and head_label is not None:
            table = self._pair_tables.get((tail_label, head_label))
            if table is None:
                return []
            return [resolve(head_id) for head_id in table.heads]
        seen: set[int] = set()
        for pair in self._pairs_matching(tail_label, head_label):
            seen.update(self._pair_tables[pair].heads)
        return sorted((resolve(head_id) for head_id in seen), key=repr)

    def tail_labels_of(self, head: NodeId) -> frozenset[Label]:
        """Tail labels with a non-empty incoming group into ``head``."""
        head_id = self._interner.get(head)
        if head_id is None:
            return frozenset()
        return frozenset(self._tail_labels_of.get(head_id, ()))

    # ------------------------------------------------------------------
    # Metered reads
    # ------------------------------------------------------------------
    def _group_fetch(self, table: _PairTable, base: int):
        """Decode closure entries for one group slice (per block read)."""
        resolve = self._interner.resolve
        tails, dists, direct = table.tails, table.dists, table.direct

        def fetch(start: int, stop: int) -> tuple[LEntry, ...]:
            return tuple(
                (resolve(tails[k]), dists[k], bool(direct[k]))
                for k in range(base + start, base + stop)
            )

        return fetch

    def incoming_group(self, head: NodeId, tail_label: Label | None) -> BlockTable:
        """Open the ``L^alpha_v`` group for node ``head`` (metered open).

        With a concrete tail label this is an O(1) slice bound into the
        flat pair table; entries decode per block read.  With
        ``tail_label=None`` (wildcard parent) the groups for every tail
        label are merged into one distance-sorted virtual table.
        """
        self.counter.record_open()
        head_id = self._interner.get(head)
        if tail_label is not None:
            bounds = None
            if head_id is not None:
                table = self._pair_tables.get(
                    (tail_label, self._interner.label_of(head_id))
                )
                if table is not None:
                    bounds = table.group_bounds(head_id)
            if bounds is None:
                return BlockTable(
                    f"L/{_fmt(tail_label)}/?/{head!r}", (), self.counter,
                    self.directory.block_size,
                )
            start, stop = bounds
            name = (
                f"L/{_fmt(tail_label)}/{_fmt(self._graph.label(head))}/{head!r}"
            )
            return LazyBlockTable(
                name,
                stop - start,
                self._group_fetch(table, start),
                self.counter,
                self.directory.block_size,
            )
        merged: list[LEntry] = []
        if head_id is not None:
            for alpha in self._tail_labels_of.get(head_id, ()):
                table = self._pair_tables[
                    (alpha, self._interner.label_of(head_id))
                ]
                start, stop = table.group_bounds(head_id)
                merged.extend(self._group_fetch(table, start)(0, stop - start))
        merged.sort(key=lambda e: (e[1], repr(e[0])))
        return BlockTable(
            f"L/*/{head!r}", merged, self.counter, self.directory.block_size
        )

    def read_pair_table(
        self,
        tail_label: Label | None,
        head_label: Label | None,
        direct_only: bool = False,
    ) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Read every closure triple for a label pair (fully metered).

        This is the run-time-graph identification read of Section 3.1: the
        full ``L^alpha_beta`` table streamed from storage.  ``direct_only``
        filters to closure edges that are also data-graph edges (``/``
        axis).
        """
        nodes = self._interner.nodes()
        block_size = self.directory.block_size
        record_read = self.counter.record_read
        for pair in self._pairs_matching(tail_label, head_label):
            self.counter.record_open()
            table = self._pair_tables[pair]
            tails, dists, direct = table.tails, table.dists, table.direct
            for j in range(table.num_groups):
                head = nodes[table.heads[j]]
                name = f"L/{_fmt(pair[0])}/{_fmt(pair[1])}/{head!r}"
                position = table.offsets[j]
                stop = table.offsets[j + 1]
                while position < stop:
                    chunk_end = min(position + block_size, stop)
                    record_read(name, chunk_end - position)
                    if direct_only:
                        for tail_id, dist, flag in zip(
                            tails[position:chunk_end],
                            dists[position:chunk_end],
                            direct[position:chunk_end],
                        ):
                            if flag:
                                yield nodes[tail_id], head, dist
                    else:
                        for tail_id, dist in zip(
                            tails[position:chunk_end], dists[position:chunk_end]
                        ):
                            yield nodes[tail_id], head, dist
                    position = chunk_end

    def read_d_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> dict[NodeId, float]:
        """Read ``D^alpha_beta`` (metered): node -> min incoming distance.

        The ``D`` value of a node is the first (minimum) distance of its
        group run.  Wildcards merge tables by taking the minimum per node.
        """
        resolve = self._interner.resolve
        block_size = self.directory.block_size
        result: dict[NodeId, float] = {}
        for pair in self._pairs_matching(tail_label, head_label):
            table = self._pair_tables[pair]
            self.counter.record_open()
            name = f"D/{_fmt(pair[0])}/{_fmt(pair[1])}"
            for start in range(0, table.num_groups, block_size):
                chunk_end = min(start + block_size, table.num_groups)
                self.counter.record_read(name, chunk_end - start)
                for j in range(start, chunk_end):
                    node = resolve(table.heads[j])
                    dist = table.dists[table.offsets[j]]
                    best = result.get(node)
                    if best is None or dist < best:
                        result[node] = dist
        return result

    def read_e_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> list[EEntry]:
        """Read ``E^alpha_beta`` (metered): min outgoing edge per source.

        With a wildcard head label, each source keeps its overall minimum
        outgoing closure edge.
        """
        resolve = self._interner.resolve
        block_size = self.directory.block_size
        merged: dict[NodeId, tuple[float, NodeId]] = {}
        for pair in self._pairs_matching(tail_label, head_label):
            table = self._pair_tables[pair]
            self.counter.record_open()
            name = f"E/{_fmt(pair[0])}/{_fmt(pair[1])}"
            count = len(table.e_tails)
            for start in range(0, count, block_size):
                chunk_end = min(start + block_size, count)
                self.counter.record_read(name, chunk_end - start)
                for k in range(start, chunk_end):
                    tail = resolve(table.e_tails[k])
                    dist = table.e_dists[k]
                    best = merged.get(tail)
                    if best is None or dist < best[0]:
                        merged[tail] = (dist, resolve(table.e_heads[k]))
        return [
            (tail, head, dist)
            for tail, (dist, head) in sorted(merged.items(), key=lambda kv: repr(kv[0]))
        ]

    # ------------------------------------------------------------------
    # Convenience probes (unmetered; used by verifiers and tests)
    # ------------------------------------------------------------------
    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """Shortest distance from ``tail`` to ``head`` (or ``None``)."""
        return self._closure.distance(tail, head)

    def has_direct_edge(self, tail: NodeId, head: NodeId) -> bool:
        """True when ``tail -> head`` is an edge of the data graph."""
        return self._graph.has_edge(tail, head)

    # ------------------------------------------------------------------
    # Size statistics (Table 2)
    # ------------------------------------------------------------------
    def size_statistics(self) -> dict[str, int]:
        """Entry/block counts by table family, for the Table 2 report."""
        block_size = self.directory.block_size
        stats = {
            "l_entries": 0,
            "l_blocks": 0,
            "d_entries": 0,
            "e_entries": 0,
        }
        for table in self._pair_tables.values():
            stats["l_entries"] += table.num_entries
            for j in range(table.num_groups):
                group_len = table.offsets[j + 1] - table.offsets[j]
                stats["l_blocks"] += (group_len + block_size - 1) // block_size
            stats["d_entries"] += table.num_groups
            stats["e_entries"] += len(table.e_tails)
        stats["total_entries"] = (
            stats["l_entries"] + stats["d_entries"] + stats["e_entries"]
        )
        return stats

    def estimated_bytes(self, bytes_per_entry: int = 12) -> int:
        """Rough on-disk size (the paper's GB column) from entry counts."""
        if bytes_per_entry <= 0:
            raise ClosureError("bytes_per_entry must be positive")
        return self.size_statistics()["total_entries"] * bytes_per_entry

    def bytes_resident(self) -> int:
        """Measured in-memory bytes of the columnar table buffers."""
        return sum(
            table.bytes_resident() for table in self._pair_tables.values()
        )

    def stats(self) -> dict:
        """Uniform size/cost statistics (shared schema across backends)."""
        return {
            "pair_count": self._closure.num_pairs,
            "bytes_estimate": self.bytes_resident(),
            "build_seconds": self._closure.build_seconds,
        }
