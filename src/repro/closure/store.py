"""Block-organized closure store — the disk layout of Sections 3.1 & 4.1.

For every pair of labels ``alpha, beta`` the store keeps:

* ``L`` groups: the incoming closure edges to each ``beta``-labeled node
  ``v`` from ``alpha``-labeled nodes, as one contiguous, distance-sorted
  block run per node (the paper's ``L^alpha_v`` groups inside table
  ``L^alpha_beta``).  Each entry is ``(tail, distance, is_direct)``; the
  ``is_direct`` flag marks closure edges that are also data-graph edges and
  supports the ``/`` axis of Section 5.
* ``D^alpha_beta``: per target node ``v``, ``d^alpha_v`` — the minimum
  incoming distance from ``alpha`` nodes.  The paper stores only values
  greater than 1; we store all of them so the node universe of a label is
  recoverable from the ``D`` table alone (documented deviation, see
  DESIGN.md).
* ``E^alpha_beta``: per source node ``v`` labeled ``alpha``, its single
  minimum-distance outgoing closure edge to a ``beta`` node (the paper's
  ``E_v`` entries, regrouped by label pair).

All reads go through the metered block layer so algorithms can be compared
by blocks touched, and wildcard lookups (label ``None``) merge across the
corresponding label dimension.
"""

from __future__ import annotations

from typing import Iterator

from repro.closure.transitive import TransitiveClosure
from repro.exceptions import ClosureError
from repro.graph.digraph import Label, LabeledDiGraph, NodeId
from repro.storage.blocks import DEFAULT_BLOCK_SIZE, BlockTable, TableDirectory
from repro.storage.iostats import IOCounter

#: Entry of an ``L`` group: (tail node, shortest distance, is direct edge).
LEntry = tuple[NodeId, float, bool]
#: Entry of a ``D`` table: (target node, minimum incoming distance).
DEntry = tuple[NodeId, float]
#: Entry of an ``E`` table: (source node, target node, distance).
EEntry = tuple[NodeId, NodeId, float]


def _fmt(label: Label) -> str:
    return repr(label)


class ClosureStore:
    """Metered, block-organized view of a transitive closure."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        closure: TransitiveClosure,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
    ) -> None:
        self._graph = graph
        self._closure = closure
        self.directory = TableDirectory(counter=counter, block_size=block_size)
        self.counter = self.directory.counter

        # (tail_label, head_node) -> BlockTable of LEntry, distance-sorted.
        self._groups: dict[tuple[Label, NodeId], BlockTable] = {}
        # (tail_label, head_label) -> sorted list of head nodes with groups.
        self._targets_by_pair: dict[tuple[Label, Label], list[NodeId]] = {}
        # head node -> set of tail labels with a non-empty group.
        self._tail_labels_of: dict[NodeId, set[Label]] = {}
        # (tail_label, head_label) -> D table.
        self._d_tables: dict[tuple[Label, Label], BlockTable] = {}
        # (tail_label, head_label) -> E table.
        self._e_tables: dict[tuple[Label, Label], BlockTable] = {}

        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: LabeledDiGraph,
        closure: TransitiveClosure | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counter: IOCounter | None = None,
    ) -> "ClosureStore":
        """Compute the closure (if not given) and lay it out in blocks."""
        if closure is None:
            closure = TransitiveClosure(graph)
        return cls(graph, closure, block_size=block_size, counter=counter)

    def _build(self) -> None:
        label = self._graph.label
        incoming: dict[tuple[Label, NodeId], list[LEntry]] = {}
        best_out: dict[tuple[NodeId, Label], tuple[float, NodeId]] = {}
        for tail, head, dist in self._closure.pairs():
            tail_label = label(tail)
            head_label = label(head)
            is_direct = self._graph.has_edge(tail, head)
            incoming.setdefault((tail_label, head), []).append(
                (tail, dist, is_direct)
            )
            out_key = (tail, head_label)
            best = best_out.get(out_key)
            if best is None or dist < best[0]:
                best_out[out_key] = (dist, head)

        d_rows: dict[tuple[Label, Label], list[DEntry]] = {}
        for (tail_label, head), entries in incoming.items():
            entries.sort(key=lambda e: (e[1], repr(e[0])))
            name = f"L/{_fmt(tail_label)}/{_fmt(label(head))}/{head!r}"
            self._groups[(tail_label, head)] = self.directory.create(name, entries)
            head_label = label(head)
            pair = (tail_label, head_label)
            self._targets_by_pair.setdefault(pair, []).append(head)
            self._tail_labels_of.setdefault(head, set()).add(tail_label)
            d_rows.setdefault(pair, []).append((head, entries[0][1]))

        for pair, rows in self._targets_by_pair.items():
            rows.sort(key=repr)
        for pair, rows in d_rows.items():
            rows.sort(key=lambda e: repr(e[0]))
            name = f"D/{_fmt(pair[0])}/{_fmt(pair[1])}"
            self._d_tables[pair] = self.directory.create(name, rows)

        e_rows: dict[tuple[Label, Label], list[EEntry]] = {}
        for (tail, head_label), (dist, head) in best_out.items():
            pair = (label(tail), head_label)
            e_rows.setdefault(pair, []).append((tail, head, dist))
        for pair, rows in e_rows.items():
            rows.sort(key=lambda e: repr(e[0]))
            name = f"E/{_fmt(pair[0])}/{_fmt(pair[1])}"
            self._e_tables[pair] = self.directory.create(name, rows)

    # ------------------------------------------------------------------
    # Structural lookups (directory metadata, unmetered)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The data graph this store was built from."""
        return self._graph

    @property
    def closure(self) -> TransitiveClosure:
        """The in-memory closure (used for unmetered distance probes)."""
        return self._closure

    def _pairs_matching(
        self, tail_label: Label | None, head_label: Label | None
    ) -> Iterator[tuple[Label, Label]]:
        for pair in self._targets_by_pair:
            if tail_label is not None and pair[0] != tail_label:
                continue
            if head_label is not None and pair[1] != head_label:
                continue
            yield pair

    def group_targets(
        self, tail_label: Label | None, head_label: Label | None
    ) -> list[NodeId]:
        """Head nodes with a non-empty incoming group for the label pair.

        ``None`` on either side acts as a wildcard and merges the matching
        tables (Section 5 wildcard support).
        """
        if tail_label is not None and head_label is not None:
            return list(self._targets_by_pair.get((tail_label, head_label), ()))
        seen: set[NodeId] = set()
        for pair in self._pairs_matching(tail_label, head_label):
            seen.update(self._targets_by_pair[pair])
        return sorted(seen, key=repr)

    def tail_labels_of(self, head: NodeId) -> frozenset[Label]:
        """Tail labels with a non-empty incoming group into ``head``."""
        return frozenset(self._tail_labels_of.get(head, ()))

    # ------------------------------------------------------------------
    # Metered reads
    # ------------------------------------------------------------------
    def incoming_group(self, head: NodeId, tail_label: Label | None) -> BlockTable:
        """Open the ``L^alpha_v`` group for node ``head`` (metered open).

        With ``tail_label=None`` (wildcard parent) the groups for every tail
        label are merged into one distance-sorted virtual table.
        """
        self.counter.record_open()
        if tail_label is not None:
            table = self._groups.get((tail_label, head))
            if table is not None:
                return table
            return BlockTable(
                f"L/{_fmt(tail_label)}/?/{head!r}", (), self.counter,
                self.directory.block_size,
            )
        merged: list[LEntry] = []
        for alpha in self._tail_labels_of.get(head, ()):
            merged.extend(self._groups[(alpha, head)].peek_unmetered())
        merged.sort(key=lambda e: (e[1], repr(e[0])))
        return BlockTable(
            f"L/*/{head!r}", merged, self.counter, self.directory.block_size
        )

    def read_pair_table(
        self,
        tail_label: Label | None,
        head_label: Label | None,
        direct_only: bool = False,
    ) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Read every closure triple for a label pair (fully metered).

        This is the run-time-graph identification read of Section 3.1: the
        full ``L^alpha_beta`` table streamed from storage.  ``direct_only``
        filters to closure edges that are also data-graph edges (``/``
        axis).
        """
        for pair in self._pairs_matching(tail_label, head_label):
            self.counter.record_open()
            for head in self._targets_by_pair[pair]:
                table = self._groups[(pair[0], head)]
                for block in table.iter_blocks():
                    for tail, dist, is_direct in block:
                        if direct_only and not is_direct:
                            continue
                        yield tail, head, dist

    def read_d_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> dict[NodeId, float]:
        """Read ``D^alpha_beta`` (metered): node -> min incoming distance.

        Wildcards merge tables by taking the minimum per node.
        """
        result: dict[NodeId, float] = {}
        for pair in self._pairs_matching(tail_label, head_label):
            table = self._d_tables[pair]
            self.counter.record_open()
            for block in table.iter_blocks():
                for node, dist in block:
                    best = result.get(node)
                    if best is None or dist < best:
                        result[node] = dist
        return result

    def read_e_table(
        self, tail_label: Label | None, head_label: Label | None
    ) -> list[EEntry]:
        """Read ``E^alpha_beta`` (metered): min outgoing edge per source.

        With a wildcard head label, each source keeps its overall minimum
        outgoing closure edge.
        """
        merged: dict[NodeId, tuple[float, NodeId]] = {}
        for pair in self._pairs_matching(tail_label, head_label):
            table = self._e_tables[pair]
            self.counter.record_open()
            for block in table.iter_blocks():
                for tail, head, dist in block:
                    best = merged.get(tail)
                    if best is None or dist < best[0]:
                        merged[tail] = (dist, head)
        return [
            (tail, head, dist)
            for tail, (dist, head) in sorted(merged.items(), key=lambda kv: repr(kv[0]))
        ]

    # ------------------------------------------------------------------
    # Convenience probes (unmetered; used by verifiers and tests)
    # ------------------------------------------------------------------
    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """Shortest distance from ``tail`` to ``head`` (or ``None``)."""
        return self._closure.distance(tail, head)

    def has_direct_edge(self, tail: NodeId, head: NodeId) -> bool:
        """True when ``tail -> head`` is an edge of the data graph."""
        return self._graph.has_edge(tail, head)

    # ------------------------------------------------------------------
    # Size statistics (Table 2)
    # ------------------------------------------------------------------
    def size_statistics(self) -> dict[str, int]:
        """Entry/block counts by table family, for the Table 2 report."""
        stats = {
            "l_entries": 0,
            "l_blocks": 0,
            "d_entries": 0,
            "e_entries": 0,
        }
        for table in self._groups.values():
            stats["l_entries"] += table.num_entries
            stats["l_blocks"] += table.num_blocks
        for table in self._d_tables.values():
            stats["d_entries"] += table.num_entries
        for table in self._e_tables.values():
            stats["e_entries"] += table.num_entries
        stats["total_entries"] = (
            stats["l_entries"] + stats["d_entries"] + stats["e_entries"]
        )
        return stats

    def estimated_bytes(self, bytes_per_entry: int = 12) -> int:
        """Rough on-disk size (the paper's GB column) from entry counts."""
        if bytes_per_entry <= 0:
            raise ClosureError("bytes_per_entry must be positive")
        return self.size_statistics()["total_entries"] * bytes_per_entry
