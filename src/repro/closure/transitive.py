"""Transitive closure with shortest distances (Section 3.1 pre-computation).

``Gc`` has an edge ``(v, v')`` iff a non-empty directed path runs from
``v`` to ``v'`` in ``G``; its weight is the shortest such distance.  We
compute it with one BFS (unit weights) or Dijkstra (general positive
weights) per source node — the ``O(n_G * m_G)`` method the paper cites —
running over the CSR layout of :mod:`repro.compact` and storing each row
as parallel id-sorted ``(target, dist)`` arrays instead of nested dicts.

External callers keep the ``NodeId`` vocabulary: every public method
interns/decodes at the call boundary (see DESIGN.md, "The interned-ID
boundary contract"), so semantics are unchanged while a closure pair
costs ~12 bytes instead of a dict entry.
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_left
from collections.abc import Mapping as MappingABC
from typing import Iterable, Iterator, Mapping

from repro.compact import ClosureRows, CompactGraph, NodeInterner
from repro.exceptions import ClosureError
from repro.graph.digraph import Label, LabeledDiGraph, NodeId


class _RowView(MappingABC):
    """Read-only ``{target: dist}`` view over one array-backed row."""

    __slots__ = ("_interner", "_targets", "_dists")

    def __init__(self, interner: NodeInterner, targets: array, dists: array) -> None:
        self._interner = interner
        self._targets = targets
        self._dists = dists

    def __getitem__(self, node: NodeId) -> float:
        node_id = self._interner.get(node)
        if node_id is not None:
            targets = self._targets
            k = bisect_left(targets, node_id)
            if k < len(targets) and targets[k] == node_id:
                return self._dists[k]
        raise KeyError(node)

    def __iter__(self) -> Iterator[NodeId]:
        resolve = self._interner.resolve
        return (resolve(t) for t in self._targets)

    def __len__(self) -> int:
        return len(self._targets)

    # O(n) bulk accessors over the parallel arrays — the Mapping mixins
    # would re-intern and binary-search per key.
    def items(self):
        resolve = self._interner.resolve
        return [
            (resolve(t), d) for t, d in zip(self._targets, self._dists)
        ]

    def values(self):
        return list(self._dists)

    def get(self, node: NodeId, default=None):
        try:
            return self[node]
        except KeyError:
            return default


class TransitiveClosure:
    """All-pairs reachability with shortest distances.

    Parameters
    ----------
    graph:
        The data graph.
    sources:
        Optional subset of nodes to expand from.  The default expands every
        node (the full closure of the paper's offline pre-computation); a
        restricted source set supports label-constrained, on-demand closures
        (Section 5, "Managing Closure Size").
    """

    def __init__(
        self, graph: LabeledDiGraph, sources: Iterable[NodeId] | None = None
    ) -> None:
        self._graph = graph
        # Materializing the source list is the caller's workload-analysis
        # cost, not closure construction — keep it out of build_seconds.
        expand = list(sources) if sources is not None else None
        started = time.perf_counter()
        self._interner = NodeInterner.from_graph(graph)
        self._compact = CompactGraph(graph, self._interner)
        if expand is None:
            self._rows = ClosureRows.build(self._compact)
        else:
            self._rows = ClosureRows.build(
                self._compact, (self._interner.intern(s) for s in expand)
            )
        self.build_seconds = time.perf_counter() - started
        self._partial = sources is not None
        self._type_counts: dict[tuple[Label, Label], int] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def _from_rows(
        cls,
        graph: LabeledDiGraph,
        interner: NodeInterner,
        compact: CompactGraph,
        rows: ClosureRows,
        partial: bool = False,
    ) -> "TransitiveClosure":
        """Adopt already-built compact artifacts (refresh/persistence)."""
        self = cls.__new__(cls)
        self._graph = graph
        self._interner = interner
        self._compact = compact
        self._rows = rows
        self.build_seconds = 0.0
        self._partial = partial
        self._type_counts = None
        return self

    @classmethod
    def from_distances(
        cls,
        graph: LabeledDiGraph,
        distances: Mapping[NodeId, Mapping[NodeId, float]],
        partial: bool = False,
        _share_rows: bool = False,
    ) -> "TransitiveClosure":
        """Rebuild a closure from previously computed distance rows.

        Used by index persistence (:mod:`repro.engine`): the shortest-path
        computation — the expensive offline phase — is skipped entirely and
        ``build_seconds`` is reported as 0.  ``_share_rows`` is retained
        for API compatibility; rows are always re-encoded into the
        array-backed layout (sharing now happens structurally, one
        immutable array pair per row).
        """
        interner = NodeInterner.from_graph(graph)
        compact = CompactGraph(graph, interner)
        interned: dict[int, dict[int, float]] = {}
        for tail, row in distances.items():
            interned[interner.intern(tail)] = {
                interner.intern(head): float(dist) for head, dist in row.items()
            }
        rows = ClosureRows.from_interned_mapping(interned)
        return cls._from_rows(graph, interner, compact, rows, partial=partial)

    def refreshed(
        self,
        graph: LabeledDiGraph,
        changed_tails: Iterable[NodeId],
    ) -> tuple["TransitiveClosure", int, frozenset]:
        """An updated closure over ``graph``, reusing unaffected rows.

        ``changed_tails`` are the tail endpoints of every added or removed
        edge.  A shortest path from ``s`` can only change if it runs
        through a changed edge, which requires ``s`` to reach that edge's
        tail — so only rows that contain a changed tail (or belong to one)
        are recomputed; every other row carries over verbatim (the arrays
        are immutable and shared, not copied).  New nodes of ``graph`` get
        fresh rows.

        Returns ``(closure, rows_recomputed, affected_labels)`` where
        ``affected_labels`` is the set of labels of nodes involved in any
        pair whose distance actually changed — the selective cache
        invalidation signal of the serving layer.  Only full (non-partial)
        closures support refresh; partial ones must be rebuilt against
        their source set.
        """
        if self._partial:
            raise ClosureError(
                "partial closures cannot be incrementally refreshed; "
                "rebuild from the declared source set"
            )
        changed = set(changed_tails)
        new_interner = NodeInterner.from_graph(graph)
        new_compact = CompactGraph(graph, new_interner)
        old_interner = self._interner
        same_universe = old_interner.same_universe(new_interner)
        changed_old = {old_interner.get(t) for t in changed}
        changed_old.discard(None)
        old_to_new: list[int | None] | None = None
        if not same_universe:
            old_to_new = [new_interner.get(n) for n in old_interner.nodes()]
        label = graph.label
        rows: dict[int, tuple[array, array]] = {}
        recomputed = 0
        affected: set = set()
        for source_id in range(len(new_interner)):
            node = new_interner.resolve(source_id)
            old_id = old_interner.get(node)
            old_row = self._rows.row(old_id) if old_id is not None else None
            if old_row is not None and old_id not in changed_old:
                targets, _ = old_row
                if not any(t in changed_old for t in targets):
                    carried = (
                        old_row
                        if same_universe
                        else _remap_row(old_row, old_to_new)
                    )
                    if carried is not None:
                        rows[source_id] = carried
                        continue
            new_row = new_compact.shortest_from(source_id)
            rows[source_id] = new_row
            recomputed += 1
            old_decoded = (
                _decode_row(old_interner, old_row)
                if old_row is not None
                else None
            )
            new_decoded = _decode_row(new_interner, new_row)
            if old_decoded != new_decoded:
                affected.add(label(node))
                old_decoded = old_decoded or {}
                for head in old_decoded.keys() | new_decoded.keys():
                    if old_decoded.get(head) != new_decoded.get(head):
                        # A removed head may have left the graph entirely;
                        # updates are edge-level, so it has not — but stay
                        # defensive and skip labels of vanished nodes.
                        if head in graph:
                            affected.add(label(head))
        return (
            TransitiveClosure._from_rows(
                graph, new_interner, new_compact, ClosureRows(rows)
            ),
            recomputed,
            frozenset(affected),
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The underlying data graph."""
        return self._graph

    @property
    def interner(self) -> NodeInterner:
        """The ``NodeId <-> int`` mapping this closure is encoded with."""
        return self._interner

    @property
    def compact_graph(self) -> CompactGraph:
        """The CSR snapshot of the data graph (shared with the store)."""
        return self._compact

    @property
    def rows(self) -> ClosureRows:
        """The interned array-backed rows (for the columnar store layer)."""
        return self._rows

    @property
    def num_pairs(self) -> int:
        """Number of closure edges (``|Ec|``) — the Table 2 size statistic."""
        return self._rows.num_pairs

    @property
    def is_partial(self) -> bool:
        """True when built from a restricted source set."""
        return self._partial

    def sources(self) -> Iterator[NodeId]:
        """Iterate the closure sources (all graph nodes unless partial)."""
        resolve = self._interner.resolve
        return (resolve(s) for s in self._rows.sources())

    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """``delta_min(tail, head)`` or ``None`` when ``head`` is unreachable."""
        tail_id = self._interner.get(tail)
        if tail_id is None or tail_id not in self._rows:
            if self._partial:
                raise ClosureError(
                    f"node {tail!r} was not a closure source (partial closure)"
                )
            return None
        head_id = self._interner.get(head)
        if head_id is None:
            return None
        return self._rows.get(tail_id, head_id)

    def successors(self, tail: NodeId) -> Mapping[NodeId, float]:
        """All closure successors of ``tail`` with their distances."""
        tail_id = self._interner.get(tail)
        row = self._rows.row(tail_id) if tail_id is not None else None
        if row is None:
            if self._partial and tail in self._graph:
                raise ClosureError(
                    f"node {tail!r} was not a closure source (partial closure)"
                )
            return {}
        return _RowView(self._interner, row[0], row[1])

    def pairs(self) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Iterate all closure triples ``(tail, head, distance)``."""
        resolve = self._interner.resolve
        for source_id, target_id, dist in self._rows.pairs():
            yield resolve(source_id), resolve(target_id), dist

    def pairs_with_labels(
        self,
    ) -> Iterator[tuple[NodeId, Label, NodeId, Label, float]]:
        """Iterate triples annotated with endpoint labels."""
        label = self._graph.label
        for tail, head, dist in self.pairs():
            yield tail, label(tail), head, label(head), dist

    def same_type_statistics(self) -> dict[tuple[Label, Label], int]:
        """Count closure edges per label pair (the paper's ``theta`` numbers).

        Two closure edges have the same *type* when their endpoint labels
        agree; ``theta`` is the average count per type and drives the
        average-case bound ``m_R = theta * n_T`` (Section 1/3.1).  Counts
        come straight from the id-sorted rows: each label's targets form
        one contiguous run found by binary search.  Memoized (the closure
        is immutable).
        """
        if self._type_counts is None:
            counts: dict[tuple[Label, Label], int] = {}
            label_of = self._interner.label_of
            ranges = list(self._interner.label_ranges())
            for source_id in self._rows.sources():
                targets, _ = self._rows.row(source_id)
                if not targets:
                    continue
                alpha = label_of(source_id)
                for beta, id_range in ranges:
                    lo = bisect_left(targets, id_range.start)
                    hi = bisect_left(targets, id_range.stop)
                    if hi > lo:
                        key = (alpha, beta)
                        counts[key] = counts.get(key, 0) + (hi - lo)
            self._type_counts = counts
        return self._type_counts

    def average_theta(self) -> float:
        """Average number of closure edges of the same type."""
        counts = self.same_type_statistics()
        if not counts:
            return 0.0
        return sum(counts.values()) / len(counts)

    def stats(self) -> dict:
        """Uniform size/cost statistics (shared schema across backends)."""
        return {
            "pair_count": self.num_pairs,
            "bytes_estimate": self._rows.bytes_resident(),
            "build_seconds": self.build_seconds,
            "partial": self._partial,
        }


def _decode_row(
    interner: NodeInterner, row: tuple[array, array]
) -> dict[NodeId, float]:
    targets, dists = row
    resolve = interner.resolve
    return {resolve(targets[k]): dists[k] for k in range(len(targets))}


def _remap_row(
    row: tuple[array, array], old_to_new: list[int | None]
) -> tuple[array, array] | None:
    """Re-encode a row under a new interner; ``None`` if a target vanished."""
    targets, dists = row
    pairs: list[tuple[int, float]] = []
    for k in range(len(targets)):
        new_id = old_to_new[targets[k]]
        if new_id is None:
            return None
        pairs.append((new_id, dists[k]))
    pairs.sort()
    return (
        array("i", (t for t, _ in pairs)),
        array("d", (d for _, d in pairs)),
    )
