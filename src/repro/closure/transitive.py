"""Transitive closure with shortest distances (Section 3.1 pre-computation).

``Gc`` has an edge ``(v, v')`` iff a non-empty directed path runs from
``v`` to ``v'`` in ``G``; its weight is the shortest such distance.  We
compute it with one BFS (unit weights) or Dijkstra (general positive
weights) per source node — the ``O(n_G * m_G)`` method the paper cites.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Mapping

from repro.exceptions import ClosureError
from repro.graph.digraph import Label, LabeledDiGraph, NodeId
from repro.graph.traversal import single_source_distances


class TransitiveClosure:
    """All-pairs reachability with shortest distances.

    Parameters
    ----------
    graph:
        The data graph.
    sources:
        Optional subset of nodes to expand from.  The default expands every
        node (the full closure of the paper's offline pre-computation); a
        restricted source set supports label-constrained, on-demand closures
        (Section 5, "Managing Closure Size").
    """

    def __init__(
        self, graph: LabeledDiGraph, sources: Iterable[NodeId] | None = None
    ) -> None:
        self._graph = graph
        started = time.perf_counter()
        unit = graph.is_unit_weighted()
        expand = list(sources) if sources is not None else list(graph.nodes())
        self._dist: dict[NodeId, dict[NodeId, float]] = {}
        pair_count = 0
        for source in expand:
            reached = single_source_distances(graph, source, unit_weights=unit)
            self._dist[source] = reached
            pair_count += len(reached)
        self._num_pairs = pair_count
        self.build_seconds = time.perf_counter() - started
        self._partial = sources is not None
        self._type_counts: dict[tuple[Label, Label], int] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_distances(
        cls,
        graph: LabeledDiGraph,
        distances: Mapping[NodeId, Mapping[NodeId, float]],
        partial: bool = False,
        _share_rows: bool = False,
    ) -> "TransitiveClosure":
        """Rebuild a closure from previously computed distance rows.

        Used by index persistence (:mod:`repro.engine`): the shortest-path
        computation — the expensive offline phase — is skipped entirely and
        ``build_seconds`` is reported as 0.  ``_share_rows`` adopts the
        given row dicts by reference instead of copying — only for
        callers that guarantee the rows are never mutated afterwards
        (:meth:`refreshed`, whose carried-over rows belong to immutable
        closures).
        """
        self = cls.__new__(cls)
        self._graph = graph
        if _share_rows:
            self._dist = dict(distances)
        else:
            self._dist = {tail: dict(row) for tail, row in distances.items()}
        self._num_pairs = sum(len(row) for row in self._dist.values())
        self.build_seconds = 0.0
        self._partial = partial
        self._type_counts = None
        return self

    def refreshed(
        self,
        graph: LabeledDiGraph,
        changed_tails: Iterable[NodeId],
    ) -> tuple["TransitiveClosure", int, frozenset]:
        """An updated closure over ``graph``, reusing unaffected rows.

        ``changed_tails`` are the tail endpoints of every added or removed
        edge.  A shortest path from ``s`` can only change if it runs
        through a changed edge, which requires ``s`` to reach that edge's
        tail — so only rows that contain a changed tail (or belong to one)
        are recomputed; every other row carries over verbatim.  New nodes
        of ``graph`` get fresh rows.

        Returns ``(closure, rows_recomputed, affected_labels)`` where
        ``affected_labels`` is the set of labels of nodes involved in any
        pair whose distance actually changed — the selective cache
        invalidation signal of the serving layer.  Only full (non-partial)
        closures support refresh; partial ones must be rebuilt against
        their source set.
        """
        if self._partial:
            raise ClosureError(
                "partial closures cannot be incrementally refreshed; "
                "rebuild from the declared source set"
            )
        changed = set(changed_tails)
        unit = graph.is_unit_weighted()
        label = graph.label
        distances: dict[NodeId, dict[NodeId, float]] = {}
        recomputed = 0
        affected: set = set()
        for source in graph.nodes():
            old_row = self._dist.get(source)
            if (
                old_row is not None
                and source not in changed
                and not changed & old_row.keys()
            ):
                distances[source] = old_row
                continue
            new_row = single_source_distances(graph, source, unit_weights=unit)
            distances[source] = new_row
            recomputed += 1
            if old_row != new_row:
                affected.add(label(source))
                old_row = old_row or {}
                for head in old_row.keys() | new_row.keys():
                    if old_row.get(head) != new_row.get(head):
                        # A removed head may have left the graph entirely;
                        # updates are edge-level, so it has not — but stay
                        # defensive and skip labels of vanished nodes.
                        if head in graph:
                            affected.add(label(head))
        return (
            TransitiveClosure.from_distances(graph, distances, _share_rows=True),
            recomputed,
            frozenset(affected),
        )

    @property
    def graph(self) -> LabeledDiGraph:
        """The underlying data graph."""
        return self._graph

    @property
    def num_pairs(self) -> int:
        """Number of closure edges (``|Ec|``) — the Table 2 size statistic."""
        return self._num_pairs

    @property
    def is_partial(self) -> bool:
        """True when built from a restricted source set."""
        return self._partial

    def distance(self, tail: NodeId, head: NodeId) -> float | None:
        """``delta_min(tail, head)`` or ``None`` when ``head`` is unreachable."""
        row = self._dist.get(tail)
        if row is None:
            if self._partial:
                raise ClosureError(
                    f"node {tail!r} was not a closure source (partial closure)"
                )
            return None
        return row.get(head)

    def successors(self, tail: NodeId) -> Mapping[NodeId, float]:
        """All closure successors of ``tail`` with their distances."""
        row = self._dist.get(tail)
        if row is None:
            if self._partial and tail in self._graph:
                raise ClosureError(
                    f"node {tail!r} was not a closure source (partial closure)"
                )
            return {}
        return row

    def pairs(self) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Iterate all closure triples ``(tail, head, distance)``."""
        for tail, row in self._dist.items():
            for head, dist in row.items():
                yield tail, head, dist

    def pairs_with_labels(
        self,
    ) -> Iterator[tuple[NodeId, Label, NodeId, Label, float]]:
        """Iterate triples annotated with endpoint labels."""
        label = self._graph.label
        for tail, head, dist in self.pairs():
            yield tail, label(tail), head, label(head), dist

    def same_type_statistics(self) -> dict[tuple[Label, Label], int]:
        """Count closure edges per label pair (the paper's ``theta`` numbers).

        Two closure edges have the same *type* when their endpoint labels
        agree; ``theta`` is the average count per type and drives the
        average-case bound ``m_R = theta * n_T`` (Section 1/3.1).  The scan
        over all closure pairs is memoized (the closure is immutable).
        """
        if self._type_counts is None:
            counts: dict[tuple[Label, Label], int] = {}
            for _, tail_label, __, head_label, ___ in self.pairs_with_labels():
                key = (tail_label, head_label)
                counts[key] = counts.get(key, 0) + 1
            self._type_counts = counts
        return self._type_counts

    def average_theta(self) -> float:
        """Average number of closure edges of the same type."""
        counts = self.same_type_statistics()
        if not counts:
            return 0.0
        return sum(counts.values()) / len(counts)
