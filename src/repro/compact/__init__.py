"""Compact interned-ID columnar core.

This package is the memory layer beneath the closure machinery: node
identities are interned to dense integers (:class:`NodeInterner`), the
data graph is laid out as CSR adjacency over stdlib ``array`` buffers
(:class:`CompactGraph`), and transitive-closure rows are parallel
``(target, dist)`` arrays (:class:`ClosureRows`) instead of nested
dicts.  The layers above (``repro.closure`` and everything on top of
it) translate between external ``NodeId`` objects and interned ints at
their API boundary only — see DESIGN.md, "The interned-ID boundary
contract".

Layering: ``repro.compact`` sits directly above ``repro.graph`` and
below ``repro.closure``.  It must never import from the closure,
storage, engine, or service layers (enforced by the CI ruff check and
``tests/compact/test_layering.py``).

Optional acceleration: setting ``REPRO_COMPACT_NUMPY=1`` lets the
builders use numpy for bulk index collection when numpy is installed;
the pure-stdlib paths remain the default and numpy is never required.
"""

from repro.compact.accel import numpy_enabled, numpy_or_none
from repro.compact.csr import CompactGraph
from repro.compact.interner import NodeInterner
from repro.compact.rows import ClosureRows, buffer_bytes
from repro.compact.span import SpanView, forward_closure

__all__ = [
    "CompactGraph",
    "ClosureRows",
    "NodeInterner",
    "SpanView",
    "buffer_bytes",
    "forward_closure",
    "numpy_enabled",
    "numpy_or_none",
]
