"""Optional numpy acceleration behind a feature flag.

The compact layer is pure standard library by default.  When the
environment variable ``REPRO_COMPACT_NUMPY`` is set to ``1``/``true``/
``yes``/``on`` *and* numpy is importable, bulk operations (collecting
reached ids out of a distance buffer) take a vectorized path.  Numpy is
never required: with the flag off or numpy missing, every caller falls
back to the stdlib loop and produces bit-identical results.
"""

from __future__ import annotations

import os

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_cache: list = []  # [module | None], resolved lazily


def numpy_enabled() -> bool:
    """True when the ``REPRO_COMPACT_NUMPY`` feature flag is on."""
    return os.environ.get("REPRO_COMPACT_NUMPY", "").strip().lower() in _TRUTHY


def numpy_or_none():
    """The numpy module when the flag is on and numpy imports, else None."""
    if not numpy_enabled():
        return None
    if not _cache:
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on environment
            numpy = None
        _cache.append(numpy)
    return _cache[0]
