"""Optional numpy acceleration behind a feature flag.

The compact layer is pure standard library by default.  When the
environment variable ``REPRO_COMPACT_NUMPY`` is set to ``1``/``true``/
``yes``/``on`` *and* numpy is importable, bulk operations (collecting
reached ids out of a distance buffer) take a vectorized path.  Numpy is
never required: with the flag off or numpy missing, every caller falls
back to the stdlib loop and produces bit-identical results.
"""

from __future__ import annotations

import os

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_cache: list = []  # [module | None], resolved lazily


def numpy_enabled() -> bool:
    """True when the ``REPRO_COMPACT_NUMPY`` feature flag is on."""
    return os.environ.get("REPRO_COMPACT_NUMPY", "").strip().lower() in _TRUTHY


def numpy_or_none():
    """The numpy module when the flag is on and numpy imports, else None."""
    if not numpy_enabled():
        return None
    return _import_numpy()


def _import_numpy():
    if not _cache:
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on environment
            numpy = None
        _cache.append(numpy)
    return _cache[0]


def resolve_numpy(override=None):
    """Resolve the numpy module for an explicit or flag-driven request.

    ``override=None`` defers to the ``REPRO_COMPACT_NUMPY`` flag (the
    common path); ``override=True`` requests numpy regardless of the
    flag (returns ``None`` when numpy is not importable); ``override=
    False`` forces the stdlib path.  Callers that expose a
    ``use_numpy`` parameter (the kernel executor, benches, tests) route
    through this so both paths stay explicitly exercisable.
    """
    if override is False:
        return None
    if override is True:
        return _import_numpy()
    return numpy_or_none()


def lower_slots(np, parents, children, dists, bs_child, alive_child,
                reprs_child, num_parents):
    """Vectorized slot lowering for one query edge (the kernel ACCUM op).

    Given the probed closure rows of an edge as parallel columns
    (``parents``/``children`` are candidate indexes, ``dists`` the
    closure distances), keep rows whose child is viable, key each row by
    ``bs[child] + dist`` (one binary float op — the interpreter's exact
    arithmetic), and group-sort rows by ``(parent, key, repr(child))``,
    the interpreter's frozen ``StaticSlot`` order.  Returns
    ``(offsets, keys, childs, mins)`` where ``offsets`` is the CSR
    group index over parents and ``mins[p]`` is the best key of parent
    ``p``'s group (``inf`` for an empty group — the interpreter's
    dead-branch marker).
    """
    parents = np.asarray(parents, dtype=np.int64)
    children = np.asarray(children, dtype=np.int64)
    dists = np.asarray(dists, dtype=np.float64)
    bs_child = np.asarray(bs_child, dtype=np.float64)
    alive_child = np.asarray(alive_child, dtype=bool)
    reprs_child = np.asarray(reprs_child, dtype=object)

    mask = alive_child[children] if len(children) else np.zeros(0, dtype=bool)
    p = parents[mask]
    c = children[mask]
    keys = bs_child[c] + dists[mask]
    # lexsort: last key is primary -> group by parent, then (key, repr).
    order = np.lexsort((reprs_child[c], keys, p))
    p_sorted = p[order]
    keys_sorted = keys[order]
    childs_sorted = c[order]
    offsets = np.searchsorted(p_sorted, np.arange(num_parents + 1))
    mins = np.full(num_parents, np.inf)
    starts = offsets[:-1]
    nonempty = offsets[1:] > starts
    if len(keys_sorted):
        mins[nonempty] = keys_sorted[starts[nonempty]]
    return offsets, keys_sorted, childs_sorted, mins
