"""CSR adjacency over interned ids — the compact data-graph layout.

A :class:`CompactGraph` freezes a :class:`~repro.graph.digraph.LabeledDiGraph`
into four flat buffers per direction (offsets, targets, weights), built
from stdlib ``array('i')`` / ``array('d')``.  The closure builders run
their per-source searches directly over these buffers, and the search
results come back as parallel id-sorted arrays ready for the
array-backed closure rows.

Shortest-distance semantics match :mod:`repro.graph.traversal`: only
non-empty paths count, so a source appears in its own result iff it
lies on a cycle.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left
from collections import deque
from typing import Iterator

from repro.compact.accel import numpy_or_none
from repro.compact.interner import NodeInterner
from repro.graph.digraph import LabeledDiGraph


class CompactGraph:
    """Immutable CSR snapshot of a labeled digraph, both directions."""

    __slots__ = (
        "interner",
        "num_nodes",
        "num_edges",
        "unit_weighted",
        "out_offsets",
        "out_targets",
        "out_weights",
        "in_offsets",
        "in_targets",
        "in_weights",
    )

    def __init__(
        self, graph: LabeledDiGraph, interner: NodeInterner | None = None
    ) -> None:
        if interner is None:
            interner = NodeInterner.from_graph(graph)
        self.interner = interner
        self.num_nodes = len(interner)
        self.num_edges = graph.num_edges
        self.unit_weighted = graph.is_unit_weighted()
        self.out_offsets, self.out_targets, self.out_weights = self._pack(
            graph, interner, forward=True
        )
        self.in_offsets, self.in_targets, self.in_weights = self._pack(
            graph, interner, forward=False
        )

    @classmethod
    def from_buffers(
        cls,
        interner: NodeInterner,
        num_edges: int,
        unit_weighted: bool,
        out_offsets,
        out_targets,
        out_weights,
        in_offsets,
        in_targets,
        in_weights,
    ) -> "CompactGraph":
        """Adopt already-packed CSR buffers (persistence fast path).

        The buffers may be ``array`` objects or read-only memoryviews
        over an ``mmap`` — every probe and search in this class only
        indexes, slices, and bisects, so mapped buffers page in lazily
        and are never copied.
        """
        self = cls.__new__(cls)
        self.interner = interner
        self.num_nodes = len(interner)
        self.num_edges = num_edges
        self.unit_weighted = unit_weighted
        self.out_offsets, self.out_targets, self.out_weights = (
            out_offsets, out_targets, out_weights,
        )
        self.in_offsets, self.in_targets, self.in_weights = (
            in_offsets, in_targets, in_weights,
        )
        return self

    @staticmethod
    def _pack(
        graph: LabeledDiGraph, interner: NodeInterner, forward: bool
    ) -> tuple[array, array, array]:
        offsets = array("i", [0])
        targets = array("i")
        weights = array("d")
        intern = interner.intern
        for node in interner.nodes():
            neighbors = (
                graph.successors(node) if forward else graph.predecessors(node)
            )
            row = sorted((intern(other), w) for other, w in neighbors.items())
            targets.extend(t for t, _ in row)
            weights.extend(w for _, w in row)
            offsets.append(len(targets))
        return offsets, targets, weights

    # ------------------------------------------------------------------
    # Adjacency probes
    # ------------------------------------------------------------------
    def out_edges(self, node_id: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(target_id, weight)`` for out-edges of ``node_id``."""
        targets, weights = self.out_targets, self.out_weights
        for k in range(self.out_offsets[node_id], self.out_offsets[node_id + 1]):
            yield targets[k], weights[k]

    def in_edges(self, node_id: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(source_id, weight)`` for in-edges of ``node_id``."""
        targets, weights = self.in_targets, self.in_weights
        for k in range(self.in_offsets[node_id], self.in_offsets[node_id + 1]):
            yield targets[k], weights[k]

    def out_degree(self, node_id: int) -> int:
        """Number of out-edges of ``node_id``."""
        return self.out_offsets[node_id + 1] - self.out_offsets[node_id]

    def in_degree(self, node_id: int) -> int:
        """Number of in-edges of ``node_id``."""
        return self.in_offsets[node_id + 1] - self.in_offsets[node_id]

    def has_edge(self, tail_id: int, head_id: int) -> bool:
        """True when the direct edge ``tail -> head`` exists (binary search)."""
        lo = self.out_offsets[tail_id]
        hi = self.out_offsets[tail_id + 1]
        k = bisect_left(self.out_targets, head_id, lo, hi)
        return k < hi and self.out_targets[k] == head_id

    # ------------------------------------------------------------------
    # Single-source shortest distances (closure-row builders)
    # ------------------------------------------------------------------
    def shortest_from(self, source: int) -> tuple[array, array]:
        """Distances from ``source`` as id-sorted parallel arrays.

        Returns ``(targets, dists)`` with targets ascending.  The source
        itself appears iff it lies on a non-empty cycle, matching the
        closure definition.
        """
        return self._shortest(source, forward=True)

    def shortest_to(self, target: int) -> tuple[array, array]:
        """Distances *to* ``target`` (backward search), id-sorted."""
        return self._shortest(target, forward=False)

    def _shortest(self, origin: int, forward: bool) -> tuple[array, array]:
        if forward:
            offsets, targets, weights = (
                self.out_offsets, self.out_targets, self.out_weights,
            )
        else:
            offsets, targets, weights = (
                self.in_offsets, self.in_targets, self.in_weights,
            )
        n = self.num_nodes
        dist = array("d", bytes(8 * n))  # zero-filled; 0.0 marks "unreached"
        # A distance of 0.0 can never be legitimate (weights are positive
        # and only non-empty paths count), so 0.0 doubles as the sentinel.
        if self.unit_weighted:
            frontier: deque[tuple[int, float]] = deque()
            for k in range(offsets[origin], offsets[origin + 1]):
                frontier.append((targets[k], weights[k]))
            while frontier:
                node, d = frontier.popleft()
                if dist[node] != 0.0:
                    continue
                dist[node] = d
                for k in range(offsets[node], offsets[node + 1]):
                    nxt = targets[k]
                    if dist[nxt] == 0.0:
                        frontier.append((nxt, d + weights[k]))
        else:
            heap: list[tuple[float, int]] = [
                (weights[k], targets[k])
                for k in range(offsets[origin], offsets[origin + 1])
            ]
            heapq.heapify(heap)
            while heap:
                d, node = heapq.heappop(heap)
                if dist[node] != 0.0:
                    continue
                dist[node] = d
                for k in range(offsets[node], offsets[node + 1]):
                    nxt = targets[k]
                    if dist[nxt] == 0.0:
                        heapq.heappush(heap, (d + weights[k], nxt))
        return self._collect(dist)

    @staticmethod
    def _collect(dist: array) -> tuple[array, array]:
        """Turn a dense distance buffer into (targets, dists) arrays."""
        np = numpy_or_none()
        if np is not None:
            vec = np.frombuffer(dist, dtype=np.float64)
            reached = np.flatnonzero(vec != 0.0)
            out_targets = array("i", reached.astype(np.int32).tolist())
            out_dists = array("d", vec[reached].tolist())
            return out_targets, out_dists
        out_targets = array("i")
        out_dists = array("d")
        for node, d in enumerate(dist):
            if d != 0.0:
                out_targets.append(node)
                out_dists.append(d)
        return out_targets, out_dists
