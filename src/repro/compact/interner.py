"""Interned node identities — the int core of the compact layer.

A :class:`NodeInterner` assigns every node of a labeled graph a dense
integer id.  Ids are label-major: labels are ordered by ``repr`` and
the nodes of each label are ordered by ``repr`` within it, so

* every label owns exactly one contiguous id range
  (:meth:`NodeInterner.label_range`), which turns "all nodes labeled
  alpha" into an O(1) slice, and
* the id order *inside* a label equals the ``repr`` order the decoded
  layers above sort by, so per-label outputs decoded from id-sorted
  arrays match the historical ``repr``-sorted outputs byte for byte.

The mapping is a pure function of the node/label universe: two
interners built from equal graphs are identical, which is what lets
:meth:`repro.closure.transitive.TransitiveClosure.refreshed` share rows
across snapshots without remapping when the node set is unchanged.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Mapping

from repro.exceptions import GraphError
from repro.graph.digraph import Label, LabeledDiGraph, NodeId


class NodeInterner:
    """Stable, label-sorted ``NodeId <-> int`` mapping."""

    __slots__ = ("_nodes", "_ids", "_ranges", "_starts", "_range_labels")

    def __init__(self, labeled_nodes: Mapping[NodeId, Label]) -> None:
        by_label: dict[Label, list[NodeId]] = {}
        for node, label in labeled_nodes.items():
            by_label.setdefault(label, []).append(node)
        nodes: list[NodeId] = []
        self._ranges: dict[Label, range] = {}
        #: Range start ids, parallel to ``_range_labels`` (for bisect).
        self._starts: list[int] = []
        self._range_labels: list[Label] = []
        for label in sorted(by_label, key=repr):
            members = sorted(by_label[label], key=repr)
            start = len(nodes)
            nodes.extend(members)
            self._ranges[label] = range(start, len(nodes))
            self._starts.append(start)
            self._range_labels.append(label)
        self._nodes: tuple[NodeId, ...] = tuple(nodes)
        self._ids: dict[NodeId, int] = {
            node: i for i, node in enumerate(self._nodes)
        }

    @classmethod
    def from_graph(cls, graph: LabeledDiGraph) -> "NodeInterner":
        """Intern every node of ``graph`` (the usual entry point)."""
        return cls({node: graph.label(node) for node in graph.nodes()})

    @classmethod
    def from_sorted(
        cls,
        nodes: Iterator[NodeId] | tuple[NodeId, ...],
        label_counts: Iterator[tuple[Label, int]],
    ) -> "NodeInterner":
        """Adopt an already-canonical layout (persistence fast path).

        ``nodes`` must be in interned-id order and ``label_counts`` must
        list ``(label, node_count)`` in id-range order — exactly what
        :meth:`nodes` and :meth:`label_ranges` of the interner that was
        persisted produce.  Because the mapping is a pure function of the
        node/label universe, adopting the stored order skips both sorts.
        """
        self = cls.__new__(cls)
        self._nodes = tuple(nodes)
        self._ids = {node: i for i, node in enumerate(self._nodes)}
        self._ranges = {}
        self._starts = []
        self._range_labels = []
        start = 0
        for label, count in label_counts:
            self._ranges[label] = range(start, start + count)
            self._starts.append(start)
            self._range_labels.append(label)
            start += count
        if start != len(self._nodes):
            raise GraphError(
                f"label counts cover {start} ids but {len(self._nodes)} "
                "nodes were supplied"
            )
        return self

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def intern(self, node: NodeId) -> int:
        """The id of ``node``; raises :class:`GraphError` when unknown."""
        try:
            return self._ids[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} is not interned") from exc

    def get(self, node: NodeId) -> int | None:
        """The id of ``node``, or ``None`` when unknown."""
        return self._ids.get(node)

    def resolve(self, node_id: int) -> NodeId:
        """The node behind ``node_id``."""
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._ids

    def nodes(self) -> tuple[NodeId, ...]:
        """All nodes, in id order."""
        return self._nodes

    # ------------------------------------------------------------------
    # Label geometry
    # ------------------------------------------------------------------
    def label_range(self, label: Label) -> range:
        """The contiguous id range of ``label`` (empty when unknown)."""
        return self._ranges.get(label, range(0))

    def label_of(self, node_id: int) -> Label:
        """The label owning ``node_id`` (O(log #labels) bisect)."""
        if not 0 <= node_id < len(self._nodes):
            raise GraphError(f"interned id {node_id} out of range")
        return self._range_labels[bisect_right(self._starts, node_id) - 1]

    def labels(self) -> tuple[Label, ...]:
        """All labels, in id-range order."""
        return tuple(self._range_labels)

    def label_ranges(self) -> Iterator[tuple[Label, range]]:
        """Iterate ``(label, id_range)`` in id order."""
        for label in self._range_labels:
            yield label, self._ranges[label]

    # ------------------------------------------------------------------
    def same_universe(self, other: "NodeInterner") -> bool:
        """True when both interners assign identical ids to identical nodes.

        Because the assignment is a pure function of the node/label
        universe, comparing the decoded node tuples and the label
        geometry suffices.
        """
        return (
            self._nodes == other._nodes
            and self._starts == other._starts
            and self._range_labels == other._range_labels
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeInterner(nodes={len(self._nodes)}, "
            f"labels={len(self._range_labels)})"
        )
