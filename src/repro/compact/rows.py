"""Array-backed transitive-closure rows.

One :class:`ClosureRows` holds, per closure source, the parallel
``(target_id, dist)`` arrays produced by the CSR searches — the compact
replacement for the historical dict-of-dicts distance rows.  Targets
are id-sorted, so point lookups are binary searches and per-label
target runs are contiguous slices.

Rows are immutable once built; sharing a row between two instances
(the incremental-refresh path) is safe and free.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping

from repro.compact.csr import CompactGraph

#: One row: (id-sorted target ids, aligned distances).
Row = tuple[array, array]


class ClosureRows:
    """Per-source parallel (target, dist) arrays, keyed by interned id."""

    __slots__ = ("_rows", "_num_pairs")

    def __init__(self, rows: dict[int, Row]) -> None:
        self._rows = rows
        self._num_pairs = sum(len(t) for t, _ in rows.values())

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, cgraph: CompactGraph, source_ids: Iterable[int] | None = None
    ) -> "ClosureRows":
        """Run one CSR search per source (all nodes when ``None``)."""
        ids = range(cgraph.num_nodes) if source_ids is None else sorted(source_ids)
        return cls({s: cgraph.shortest_from(s) for s in ids})

    @classmethod
    def from_flat(
        cls, sources, row_offsets, targets, dists
    ) -> "ClosureRows":
        """Adopt one flat ``(targets, dists)`` run per source (mmap path).

        ``row_offsets[k]:row_offsets[k+1]`` bounds the run of
        ``sources[k]`` inside the flat ``targets``/``dists`` buffers.
        Rows become zero-copy slices of the supplied buffers, so a
        memory-mapped closure pages in per row on first touch.
        """
        rows: dict[int, Row] = {}
        for k, source in enumerate(sources):
            lo, hi = row_offsets[k], row_offsets[k + 1]
            rows[source] = (targets[lo:hi], dists[lo:hi])
        return cls(rows)

    @classmethod
    def from_interned_mapping(
        cls, mapping: Mapping[int, Mapping[int, float]]
    ) -> "ClosureRows":
        """Encode already-interned ``{source: {target: dist}}`` rows."""
        rows: dict[int, Row] = {}
        for source in sorted(mapping):
            targets = array("i")
            dists = array("d")
            for target in sorted(mapping[source]):
                targets.append(target)
                dists.append(mapping[source][target])
            rows[source] = (targets, dists)
        return cls(rows)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Total (source, target) pairs across all rows."""
        return self._num_pairs

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, source_id: int) -> bool:
        return source_id in self._rows

    def sources(self) -> Iterator[int]:
        """Iterate source ids (ascending — rows are built in id order)."""
        return iter(self._rows)

    def row(self, source_id: int) -> Row | None:
        """The ``(targets, dists)`` arrays of a source, or ``None``."""
        return self._rows.get(source_id)

    def get(self, source_id: int, target_id: int) -> float | None:
        """Point lookup ``dist(source, target)`` via binary search."""
        row = self._rows.get(source_id)
        if row is None:
            return None
        targets, dists = row
        k = bisect_left(targets, target_id)
        if k < len(targets) and targets[k] == target_id:
            return dists[k]
        return None

    def pairs(self) -> Iterator[tuple[int, int, float]]:
        """Iterate interned ``(source, target, dist)`` triples, id order."""
        for source, (targets, dists) in self._rows.items():
            for k in range(len(targets)):
                yield source, targets[k], dists[k]

    # ------------------------------------------------------------------
    def bytes_resident(self) -> int:
        """Measured bytes: array buffers + container overhead.

        Memory-mapped rows (memoryview slices over an ``mmap``) report
        their mapped length — the index-size statistic stays comparable
        across in-memory and mmap-backed closures, while actual residency
        is the OS page cache's business (the cold-start bench reports RSS
        separately).
        """
        total = sys.getsizeof(self._rows)
        for row in self._rows.values():
            targets, dists = row
            total += sys.getsizeof(row)
            # getsizeof(array) includes the allocated element buffer;
            # memoryviews report their mapped extent instead.
            total += buffer_bytes(targets) + buffer_bytes(dists)
        return total


def buffer_bytes(buf) -> int:
    """Size of a typed buffer: allocated bytes or mapped extent."""
    if isinstance(buf, memoryview):
        return buf.nbytes
    return sys.getsizeof(buf)
