"""Span-restricted views over the compact CSR layer.

A *span* is a contiguous interned-id interval — exactly what one label
(or a run of adjacent labels) owns under the label-major id assignment
of :class:`~repro.compact.interner.NodeInterner`.  The sharding layer
(:mod:`repro.shard`) partitions a graph into such spans; this module
supplies the id-level machinery it needs:

* :func:`forward_closure` — the set of ids reachable from a seed span
  (seeds included), computed by BFS over the CSR out-adjacency.  A shard
  that materializes the induced subgraph on this *closed* set answers
  every query rooted inside its span with globally-correct distances:
  shortest paths never leave the forward closure of their source.
* :class:`SpanView` — a read-only restriction of a
  :class:`~repro.compact.csr.CompactGraph` to one span: membership
  tests, the closed member set, and the boundary pairs (edges from a
  member to a node outside the owned span) that the shard writer
  persists.

Layering: like the rest of ``repro.compact`` this module sits directly
above ``repro.graph`` and imports nothing from the closure, storage,
engine, service, or shard layers.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Iterable, Iterator

from repro.compact.csr import CompactGraph
from repro.exceptions import GraphError


def forward_closure(compact: CompactGraph, seeds: Iterable[int]) -> array:
    """Sorted ids of ``seeds`` plus everything reachable from them.

    Plain BFS over the out-adjacency: reachability (not distance) is all
    that is needed to *delimit* the closed set — the distances inside the
    induced subgraph are recomputed exactly by whichever backend the
    shard engine builds on it.
    """
    num_nodes = compact.num_nodes
    visited = bytearray(num_nodes)
    queue: deque[int] = deque()
    for seed in seeds:
        if not 0 <= seed < num_nodes:
            raise GraphError(
                f"seed id {seed} outside the interned range [0, {num_nodes})"
            )
        if not visited[seed]:
            visited[seed] = 1
            queue.append(seed)
    out_offsets = compact.out_offsets
    out_targets = compact.out_targets
    while queue:
        node = queue.popleft()
        for position in range(out_offsets[node], out_offsets[node + 1]):
            target = out_targets[position]
            if not visited[target]:
                visited[target] = 1
                queue.append(target)
    return array("i", (i for i in range(num_nodes) if visited[i]))


class SpanView:
    """One contiguous id span of a compact graph, with its closure.

    ``span`` is a half-open ``(start, stop)`` interval of interned ids.
    The view computes, lazily and once:

    * :meth:`members` — the forward closure of the span (owned ids plus
      every id reachable from them), the node set a shard materializes;
    * :meth:`boundary_pairs` — the ``(tail, head)`` edges leaving the
      owned span from inside the member set (the cut the shard writer
      records so cross-span reachability stays answerable locally).
    """

    __slots__ = ("compact", "start", "stop", "_members", "_pairs")

    def __init__(self, compact: CompactGraph, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= compact.num_nodes:
            raise GraphError(
                f"span [{start}, {stop}) outside the interned range "
                f"[0, {compact.num_nodes})"
            )
        self.compact = compact
        self.start = start
        self.stop = stop
        self._members: array | None = None
        self._pairs: tuple[array, array] | None = None

    # ------------------------------------------------------------------
    def owns(self, node_id: int) -> bool:
        """True when ``node_id`` falls inside the owned span."""
        return self.start <= node_id < self.stop

    @property
    def owned_count(self) -> int:
        return self.stop - self.start

    def owned_ids(self) -> range:
        """The owned ids themselves (contiguous by construction)."""
        return range(self.start, self.stop)

    # ------------------------------------------------------------------
    def members(self) -> array:
        """Sorted ids of the closed set: owned ∪ reachable-from-owned."""
        if self._members is None:
            self._members = forward_closure(self.compact, self.owned_ids())
        return self._members

    def boundary_pairs(self) -> tuple[array, array]:
        """Parallel ``(tails, heads)`` arrays of edges leaving the span.

        A pair ``(t, h)`` has ``t`` inside the member set and ``h``
        outside the *owned* span — the cut edges whose heads the closed
        set replicates.  Edges wholly inside the owned span are not
        boundary pairs even when their tail is a replicated member.
        """
        if self._pairs is None:
            tails = array("i")
            heads = array("i")
            out_edges = self.compact.out_edges
            for tail in self.members():
                for head, _weight in out_edges(tail):
                    if not self.owns(head):
                        tails.append(tail)
                        heads.append(head)
            self._pairs = (tails, heads)
        return self._pairs

    def replicated_ids(self) -> Iterator[int]:
        """Member ids outside the owned span (present as replicas)."""
        return (i for i in self.members() if not self.owns(i))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanView([{self.start}, {self.stop}) of "
            f"{self.compact.num_nodes} ids)"
        )
