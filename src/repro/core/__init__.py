"""Core top-k tree matching algorithms (the paper's contribution)."""

from repro.core.api import ALGORITHMS, TreeMatcher, top_k_tree_matches
from repro.core.baseline_dp import DPBEnumerator, dpb_matches
from repro.core.baseline_dpp import DPPEnumerator, dpp_matches
from repro.core.brute_force import all_matches, brute_force_topk
from repro.core.diversity import assignment_distance, diverse_top_k, diversify
from repro.core.matches import EnumerationStats, Match, MatchRef
from repro.core.topk import TopkEnumerator, topk_matches
from repro.core.topk_en import LazyTopkEngine, TopkEN, topk_en_matches

__all__ = [
    "TreeMatcher",
    "top_k_tree_matches",
    "ALGORITHMS",
    "Match",
    "MatchRef",
    "EnumerationStats",
    "TopkEnumerator",
    "topk_matches",
    "TopkEN",
    "LazyTopkEngine",
    "topk_en_matches",
    "DPBEnumerator",
    "dpb_matches",
    "DPPEnumerator",
    "dpp_matches",
    "all_matches",
    "brute_force_topk",
    "diversify",
    "diverse_top_k",
    "assignment_distance",
]
