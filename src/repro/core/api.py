"""High-level facade: one object, all algorithms.

:class:`TreeMatcher` owns the offline artifacts (transitive closure +
block store) for one data graph and answers top-k twig queries with any of
the implemented algorithms.  This is the entry point examples and most
tests use; the algorithm classes remain available for instrumented runs.
"""

from __future__ import annotations

from typing import Literal

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.baseline_dp import DPBEnumerator
from repro.core.baseline_dpp import DPPEnumerator
from repro.core.brute_force import brute_force_topk
from repro.core.matches import Match
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QueryTree
from repro.runtime.graph import build_runtime_graph
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.twig.semantics import EQUALITY, LabelMatcher

Algorithm = Literal["topk-en", "topk", "dp-b", "dp-p", "brute-force"]

#: All supported algorithm names, in the order the paper introduces them.
ALGORITHMS: tuple[str, ...] = ("dp-b", "dp-p", "topk", "topk-en", "brute-force")


class TreeMatcher:
    """Top-k twig matching over one data graph.

    Builds the transitive closure and the block-organized closure store
    once (the paper's offline pre-computation); each :meth:`top_k` call
    then runs the requested algorithm.  The default algorithm is
    ``topk-en`` — the paper's overall winner.
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        block_size: int = DEFAULT_BLOCK_SIZE,
        matcher: LabelMatcher = EQUALITY,
        node_weight=None,
    ) -> None:
        self.graph = graph
        self.closure = TransitiveClosure(graph)
        self.store = ClosureStore(graph, self.closure, block_size=block_size)
        self.label_matcher = matcher
        self.node_weight = node_weight

    def top_k(
        self, query: QueryTree, k: int, algorithm: Algorithm = "topk-en"
    ) -> list[Match]:
        """Return the ``k`` lowest-score matches of ``query``.

        Fewer than ``k`` matches are returned when the graph has fewer.
        """
        engine = self.engine(query, algorithm)
        if algorithm == "brute-force":
            return engine  # already the result list
        return engine.top_k(k)

    def engine(self, query: QueryTree, algorithm: Algorithm = "topk-en"):
        """Build (and return) the algorithm engine for ``query``.

        Useful when the caller wants streaming access or statistics; for
        ``brute-force`` the full sorted result list is returned instead.
        """
        if algorithm == "topk-en":
            return TopkEN(
                self.store, query, matcher=self.label_matcher,
                node_weight=self.node_weight,
            )
        if algorithm == "dp-p":
            return DPPEnumerator(
                self.store, query, matcher=self.label_matcher,
                node_weight=self.node_weight,
            )
        if algorithm == "topk":
            gr = build_runtime_graph(self.store, query, matcher=self.label_matcher)
            return TopkEnumerator(gr, node_weight=self.node_weight)
        if algorithm == "dp-b":
            gr = build_runtime_graph(self.store, query, matcher=self.label_matcher)
            return DPBEnumerator(gr, node_weight=self.node_weight)
        if algorithm == "brute-force":
            gr = build_runtime_graph(self.store, query, matcher=self.label_matcher)
            from repro.core.brute_force import all_matches

            return all_matches(gr, node_weight=self.node_weight)[
                : len(self.graph) ** 2 + 10
            ]
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")


def top_k_tree_matches(
    graph: LabeledDiGraph,
    query: QueryTree,
    k: int,
    algorithm: Algorithm = "topk-en",
) -> list[Match]:
    """One-shot convenience: build a :class:`TreeMatcher` and query it."""
    return TreeMatcher(graph).top_k(query, k, algorithm=algorithm)
