"""Deprecated facade — superseded by :mod:`repro.engine`.

:class:`TreeMatcher` was the original one-object entry point: it
hard-wired one eager transitive closure + block store and selected
algorithms by string.  The engine layer (:class:`repro.engine.MatchEngine`)
generalizes all of that — pluggable closure backends, an automatic query
planner, lazy result streams, and index persistence — so this module now
only keeps the old names working:

* ``TreeMatcher(graph)`` builds a ``MatchEngine`` pinned to the ``full``
  backend and forwards every call (a :class:`DeprecationWarning` fires).
* ``top_k_tree_matches(...)`` forwards to a one-shot engine.

New code should use::

    from repro.engine import MatchEngine

    engine = MatchEngine(graph)          # backend/algorithm chosen by plan
    matches = engine.top_k(query, k=5)
"""

from __future__ import annotations

import warnings
from typing import Literal

from repro.core.matches import Match
from repro.engine.config import ALGORITHMS  # re-exported for compatibility
from repro.engine.core import MatchEngine
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QueryTree
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.twig.semantics import EQUALITY, LabelMatcher

Algorithm = Literal["topk-en", "topk", "dp-b", "dp-p", "brute-force"]

__all__ = ["ALGORITHMS", "Algorithm", "TreeMatcher", "top_k_tree_matches"]

_DEPRECATION = (
    "TreeMatcher is deprecated; use repro.engine.MatchEngine, which adds "
    "pluggable closure backends, query planning, result streams, and "
    "index persistence"
)


class TreeMatcher:
    """Deprecated: thin shim over a ``full``-backend :class:`MatchEngine`.

    Preserves the original surface — ``top_k``, ``engine``, and the
    ``graph`` / ``closure`` / ``store`` offline artifacts — while all
    work happens in :mod:`repro.engine`.
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        block_size: int = DEFAULT_BLOCK_SIZE,
        matcher: LabelMatcher = EQUALITY,
        node_weight=None,
    ) -> None:
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        self._engine = MatchEngine(
            graph,
            backend="full",
            block_size=block_size,
            label_matcher=matcher,
            node_weight=node_weight,
        )
        self.graph = graph
        self.closure = self._engine.closure
        self.store = self._engine.store
        self.label_matcher = matcher
        self.node_weight = node_weight

    def top_k(
        self, query: QueryTree, k: int, algorithm: Algorithm = "topk-en"
    ) -> list[Match]:
        """Return the ``k`` lowest-score matches of ``query``.

        Fewer than ``k`` matches are returned when the graph has fewer.
        Every algorithm — including ``brute-force`` — honors ``k``.
        """
        return self._engine.top_k(query, k, algorithm=algorithm)

    def engine(self, query: QueryTree, algorithm: Algorithm = "topk-en"):
        """Build (and return) the algorithm engine for ``query``.

        Always an engine-like object exposing ``top_k(k)`` / ``stream()``
        / ``stats`` — for ``brute-force`` too (a
        :class:`~repro.core.brute_force.BruteForceEngine`), which used to
        leak a bare, arbitrarily truncated list.
        """
        return self._engine.engine_for(query, algorithm=algorithm)


def top_k_tree_matches(
    graph: LabeledDiGraph,
    query: QueryTree,
    k: int,
    algorithm: Algorithm = "topk-en",
) -> list[Match]:
    """Deprecated one-shot convenience; use ``MatchEngine(graph).top_k``."""
    warnings.warn(
        "top_k_tree_matches is deprecated; use "
        "repro.engine.MatchEngine(graph).top_k(query, k)",
        DeprecationWarning,
        stacklevel=2,
    )
    engine = MatchEngine(graph, backend="full")
    return engine.top_k(query, k, algorithm=algorithm)
