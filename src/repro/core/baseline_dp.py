"""DP-B — the dynamic-programming baseline of Gou & Chirkova [21].

Reimplemented from its description in [21] and in the paper (the original
Java bytecodes are not distributable): every run-time node maintains a
lazily materialized stream of its k best *subtree* matches, built from

* per-slot streams — for each child query node, the merged sequence of
  ``(child node, child rank)`` pairs ordered by
  ``delta(v, child) + child_subtree_score(rank)``; and
* a per-node combination heap over rank vectors (one rank per slot),
  where the neighbors of a vector increment a single coordinate.

Enumerating the next match at a node costs ``O(d_u^2 + log k)``-ish work
in the worst case (the paper's stated DP-B bound is
``O(n_T (d_T + log k))`` per round), and the whole run-time graph is
loaded up front — the two properties the optimal enumerator improves on.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.core.matches import EnumerationStats, Match
from repro.exceptions import MatchingError
from repro.graph.query import QNodeId, QueryTree
from repro.runtime.graph import RNode, RuntimeGraph
from repro.utils.heap import TieBreakHeap

_INF = float("inf")


class _SlotStream:
    """Merged best-first stream of (child, child-rank) pairs for one slot."""

    __slots__ = ("_mat", "_heap", "_node_stream_of")

    def __init__(self, entries, seed_scores, node_stream_of) -> None:
        # entries: list[(child_rnode, delta)]; seed_scores: bs of children.
        self._node_stream_of = node_stream_of
        self._mat: list[tuple[float, RNode, int, float]] = []
        self._heap = TieBreakHeap()
        for child, delta in entries:
            best = seed_scores.get(child)
            if best is None:
                continue
            self._heap.push(delta + best, (child, 1, delta))

    def get(self, rank: int):
        """The ``rank``-th (1-based) slot assignment, or ``None``."""
        while len(self._mat) < rank and self._heap:
            key, (child, child_rank, delta) = self._heap.pop()
            self._mat.append((key, child, child_rank, delta))
            nxt = self._node_stream_of(child).score(child_rank + 1)
            if nxt is not None:
                self._heap.push(delta + nxt, (child, child_rank + 1, delta))
        if rank <= len(self._mat):
            return self._mat[rank - 1]
        return None


class _NodeStream:
    """k-best subtree matches at one run-time node (combination heap)."""

    __slots__ = ("_slots", "_mat", "_heap", "_seen")

    def __init__(self, slot_streams: list[_SlotStream], base: float = 0.0) -> None:
        self._slots = slot_streams
        self._mat: list[tuple[float, tuple[int, ...]]] = []
        self._heap = TieBreakHeap()
        self._seen: set[tuple[int, ...]] = set()
        if not slot_streams:
            # Leaf: the single empty combination (base = node weight).
            self._mat.append((base, ()))
            return
        seed = tuple([1] * len(slot_streams))
        total = base
        for stream in slot_streams:
            first = stream.get(1)
            if first is None:
                return  # not viable; stream stays empty
            total += first[0]
        self._seen.add(seed)
        self._heap.push(total, seed)

    def score(self, rank: int) -> float | None:
        """Score of the ``rank``-th best subtree match (or ``None``)."""
        combo = self.combo(rank)
        if combo is None:
            return None
        return self._mat[rank - 1][0]

    def combo(self, rank: int) -> tuple[int, ...] | None:
        """Rank vector of the ``rank``-th best subtree match (or ``None``)."""
        while len(self._mat) < rank and self._heap:
            score, vector = self._heap.pop()
            self._mat.append((score, vector))
            for i, stream in enumerate(self._slots):
                nxt = stream.get(vector[i] + 1)
                if nxt is None:
                    continue
                cur = stream.get(vector[i])
                neighbor = vector[:i] + (vector[i] + 1,) + vector[i + 1 :]
                if neighbor in self._seen:
                    continue
                self._seen.add(neighbor)
                self._heap.push(score - cur[0] + nxt[0], neighbor)
        if rank <= len(self._mat):
            return self._mat[rank - 1][1]
        return None


def _zero_weight(node) -> float:
    """Default node-weight function: pure edge-distance scoring."""
    return 0.0


class DPBEnumerator:
    """Top-k enumeration via per-node k-best DP streams (DP-B).

    ``node_weight`` optionally adds non-negative per-node weights to the
    score (footnote 2), mirroring the other engines.
    """

    def __init__(self, gr: RuntimeGraph, node_weight=None) -> None:
        self.gr = gr
        self._node_weight = node_weight if node_weight is not None else _zero_weight
        self.query: QueryTree = gr.query
        self.stats = EnumerationStats()
        started = time.perf_counter()
        self._bs: dict[RNode, float] = {}
        self._streams: dict[RNode, _NodeStream] = {}
        self._slot_streams: dict[RNode, list[tuple[QNodeId, _SlotStream]]] = {}
        self._compute_bs()
        # DP-B materializes its DP table (a priority queue per node) at
        # every run-time node bottom-up; build every stream eagerly, as
        # the original does — the lazily-materialized variant would be an
        # optimization the baseline does not have.
        for u in reversed(list(self.query.bfs_order())):
            for v in gr.viable_candidates(u):
                if (u, v) in self._bs:
                    self._node_stream((u, v))
        self._root_stream = self._build_root_stream()
        self.stats.init_seconds = time.perf_counter() - started
        self.results: list[Match] = []

    # ------------------------------------------------------------------
    def _compute_bs(self) -> None:
        """Bottom-up rank-1 scores (seeds for every lazy stream)."""
        gr = self.gr
        query = self.query
        for u in reversed(list(query.bfs_order())):
            kids = query.children(u)
            for v in gr.viable_candidates(u):
                total = float(self._node_weight(v))
                for u_child in kids:
                    best = _INF
                    for v_child, dist in gr.slot(u, v, u_child):
                        child = self._bs.get((u_child, v_child))
                        if child is not None and child + dist < best:
                            best = child + dist
                    if best == _INF:
                        total = _INF
                        break
                    total += best
                if total < _INF:
                    self._bs[(u, v)] = total

    def _node_stream(self, rnode: RNode) -> _NodeStream:
        stream = self._streams.get(rnode)
        if stream is not None:
            return stream
        u, v = rnode
        slot_streams: list[tuple[QNodeId, _SlotStream]] = []
        for u_child in self.query.children(u):
            entries = [
                ((u_child, v_child), dist)
                for v_child, dist in self.gr.slot(u, v, u_child)
            ]
            slot_streams.append(
                (u_child, _SlotStream(entries, self._bs, self._node_stream))
            )
        stream = _NodeStream(
            [s for _, s in slot_streams], base=float(self._node_weight(v))
        )
        self._streams[rnode] = stream
        self._slot_streams[rnode] = slot_streams
        return stream

    def _build_root_stream(self) -> _SlotStream:
        root = self.query.root
        entries = [
            ((root, v), 0.0)
            for v in self.gr.roots()
            if (root, v) in self._bs
        ]
        return _SlotStream(entries, self._bs, self._node_stream)

    # ------------------------------------------------------------------
    def _recover(self, rnode: RNode, rank: int, assignment: dict) -> None:
        """Materialize the rank-th subtree match at ``rnode`` into ``assignment``."""
        u, v = rnode
        assignment[u] = v
        stream = self._node_stream(rnode)
        combo = stream.combo(rank)
        if combo is None:
            raise MatchingError(f"rank {rank} unavailable at {rnode!r}")
        for (u_child, slot_stream), slot_rank in zip(
            self._slot_streams[rnode], combo
        ):
            entry = slot_stream.get(slot_rank)
            if entry is None:
                raise MatchingError(f"slot rank {slot_rank} unavailable")
            _, child, child_rank, __ = entry
            self._recover(child, child_rank, assignment)

    def top1_score(self) -> float | None:
        """Best match score (or ``None`` when no match exists)."""
        first = self._root_stream.get(1)
        return None if first is None else first[0]

    def _advance(self) -> Match | None:
        rank = len(self.results) + 1
        entry = self._root_stream.get(rank)
        if entry is None:
            return None
        score, root_rnode, root_rank, _ = entry
        assignment: dict = {}
        self._recover(root_rnode, root_rank, assignment)
        self.stats.rounds += 1
        match = Match(assignment=assignment, score=score)
        self.results.append(match)
        return match

    def stream(self) -> Iterator[Match]:
        """Yield matches best-first (cached results replay)."""
        index = 0
        while True:
            while index < len(self.results):
                yield self.results[index]
                index += 1
            if self._advance() is None:
                return

    def __iter__(self) -> Iterator[Match]:
        return self.stream()

    def top_k(self, k: int) -> list[Match]:
        """Return up to ``k`` best matches."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        while len(self.results) < k:
            if self._advance() is None:
                break
        self.stats.enum_seconds += time.perf_counter() - started
        return list(self.results[:k])


def dpb_matches(gr: RuntimeGraph, k: int) -> list[Match]:
    """Convenience wrapper for the DP-B baseline."""
    return DPBEnumerator(gr).top_k(k)
