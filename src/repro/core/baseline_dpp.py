"""DP-P — the priority-order baseline of Gou & Chirkova [21].

DP-P runs the DP-B computation while loading run-time-graph edges on
demand, always extending the partial match with the smallest current
score; its loading trigger is ``bs(v) + e_v`` — *without* the structural
remaining-edge term, which is exactly the bound-tightness gap the paper's
Topk-EN improves on (Section 4).

This reimplementation reuses the lazy engine with ``bound="loose"`` so the
edge-loading behaviour (what gets pulled from storage, and when) follows
DP-P's weaker trigger, and models DP-B's per-round recomputation cost by
re-deriving the replacement candidates of each emitted match with linear
slot scans (``O(n_T * d)`` per round) instead of the O(1)/O(log k) shared
L/H bookkeeping.  Scores and matches are identical to the other
algorithms; only the cost profile differs — which is what the Figure 6/7
comparisons measure.  See DESIGN.md ("Baselines").
"""

from __future__ import annotations

from repro.closure.store import ClosureStore
from repro.core.matches import Match
from repro.core.topk_en import LazyTopkEngine
from repro.graph.query import QueryTree
from repro.twig.semantics import EQUALITY, LabelMatcher


class DPPEnumerator(LazyTopkEngine):
    """Loose-trigger lazy loading + DP-style per-round recomputation."""

    def __init__(
        self,
        store: ClosureStore,
        query: QueryTree,
        matcher: LabelMatcher = EQUALITY,
        node_weight=None,
    ) -> None:
        super().__init__(
            store, query, matcher=matcher, bound="loose", node_weight=node_weight
        )

    def _dp_recompute(self, match: Match) -> float:
        """Re-derive the emitted match's subtree scores by full slot scans.

        This mirrors DP-B's pull-down recomputation: for every query node,
        the minimum over the corresponding slot is recomputed from scratch.
        The result (the match score) is asserted to agree and discarded —
        only its cost is of interest.
        """
        total = 0.0
        for u in self.query.bfs_order():
            parent = self.query.parent(u)
            if parent is None:
                continue
            state = self._states.get((parent, match.assignment[parent]))
            if state is None:
                continue
            slot = state.slots.get(u)
            if slot is None:
                continue
            # Linear scan (DP-B has no shared extracted prefix to reuse).
            best = min(key for key, _ in slot.entries())
            total += best
        return total

    def _advance(self) -> Match | None:
        match = super()._advance()
        if match is not None:
            self.stats.extra["dp_rescan_score"] = self._dp_recompute(match)
        return match


def dpp_matches(store: ClosureStore, query: QueryTree, k: int) -> list[Match]:
    """Convenience wrapper for the DP-P baseline."""
    return DPPEnumerator(store, query).top_k(k)
