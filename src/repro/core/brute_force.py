"""Exhaustive match enumeration — the correctness oracle for tests.

Not part of the paper: enumerates *all* tree-pattern matches by explicit
backtracking over the run-time graph and sorts them by penalty score.
Exponential in general; tests keep instances small and the ``limit``
guard fails loudly if an instance explodes.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.matches import EnumerationStats, Match
from repro.exceptions import MatchingError
from repro.graph.query import QueryTree
from repro.runtime.graph import RuntimeGraph


def all_matches(
    gr: RuntimeGraph, limit: int = 200_000, node_weight=None
) -> list[Match]:
    """Enumerate every match of ``gr.query``, sorted by score.

    Ties are broken by the repr of the assignment so the order is total
    and deterministic.  Raises :class:`MatchingError` when more than
    ``limit`` partial assignments are expanded.  ``node_weight`` adds
    per-node weights to the score (footnote 2).
    """
    weight_of = node_weight if node_weight is not None else (lambda node: 0.0)
    query: QueryTree = gr.query
    order = list(query.bfs_order())
    results: list[Match] = []
    expanded = 0

    def backtrack(index: int, assignment: dict, score: float) -> None:
        nonlocal expanded
        expanded += 1
        if expanded > limit:
            raise MatchingError(f"brute force exceeded {limit} expansions")
        if index == len(order):
            results.append(Match(assignment=dict(assignment), score=score))
            return
        u = order[index]
        parent = query.parent(u)
        if parent is None:
            for v in gr.roots():
                assignment[u] = v
                backtrack(index + 1, assignment, score + weight_of(v))
                del assignment[u]
            return
        for v, dist in gr.slot(parent, assignment[parent], u):
            assignment[u] = v
            backtrack(index + 1, assignment, score + dist + weight_of(v))
            del assignment[u]

    backtrack(0, {}, 0.0)
    results.sort(key=lambda m: (m.score, repr(sorted(m.assignment.items(), key=repr))))
    return results


def brute_force_topk(gr: RuntimeGraph, k: int, limit: int = 200_000) -> list[Match]:
    """First ``k`` matches of :func:`all_matches`."""
    return all_matches(gr, limit=limit)[:k]


class BruteForceEngine:
    """Engine-like facade over exhaustive enumeration.

    Exposes the same ``top_k`` / ``stream`` / ``compute_first`` / ``stats``
    surface as the real enumerators so the facade and engine layers treat
    ``brute-force`` uniformly: ``top_k(k)`` honors ``k``, and ``stream``
    replays cached results before advancing, like the lazy engines.
    """

    def __init__(
        self, gr: RuntimeGraph, node_weight=None, limit: int = 200_000
    ) -> None:
        self._all = all_matches(gr, limit=limit, node_weight=node_weight)
        self.stats = EnumerationStats()
        self.results: list[Match] = []

    def compute_first(self) -> float | None:
        """Score of the best match (``None`` when there is none)."""
        return self._all[0].score if self._all else None

    def top_k(self, k: int) -> list[Match]:
        """Return up to ``k`` best matches."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if len(self.results) < k:
            self.results = list(self._all[:k])
            self.stats.rounds = len(self.results)
        return list(self._all[:k])

    def stream(self) -> Iterator[Match]:
        """Yield matches best-first; replays cached results on re-iteration."""
        index = 0
        while True:
            while index < len(self.results):
                yield self.results[index]
                index += 1
            if len(self.results) >= len(self._all):
                return
            self.results.append(self._all[len(self.results)])
            self.stats.rounds = len(self.results)

    def __iter__(self) -> Iterator[Match]:
        return self.stream()
