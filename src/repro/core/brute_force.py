"""Exhaustive match enumeration — the correctness oracle for tests.

Not part of the paper: enumerates *all* tree-pattern matches by explicit
backtracking over the run-time graph and sorts them by penalty score.
Exponential in general; tests keep instances small and the ``limit``
guard fails loudly if an instance explodes.
"""

from __future__ import annotations

from repro.core.matches import Match
from repro.exceptions import MatchingError
from repro.graph.query import QueryTree
from repro.runtime.graph import RuntimeGraph


def all_matches(
    gr: RuntimeGraph, limit: int = 200_000, node_weight=None
) -> list[Match]:
    """Enumerate every match of ``gr.query``, sorted by score.

    Ties are broken by the repr of the assignment so the order is total
    and deterministic.  Raises :class:`MatchingError` when more than
    ``limit`` partial assignments are expanded.  ``node_weight`` adds
    per-node weights to the score (footnote 2).
    """
    weight_of = node_weight if node_weight is not None else (lambda node: 0.0)
    query: QueryTree = gr.query
    order = list(query.bfs_order())
    results: list[Match] = []
    expanded = 0

    def backtrack(index: int, assignment: dict, score: float) -> None:
        nonlocal expanded
        expanded += 1
        if expanded > limit:
            raise MatchingError(f"brute force exceeded {limit} expansions")
        if index == len(order):
            results.append(Match(assignment=dict(assignment), score=score))
            return
        u = order[index]
        parent = query.parent(u)
        if parent is None:
            for v in gr.roots():
                assignment[u] = v
                backtrack(index + 1, assignment, score + weight_of(v))
                del assignment[u]
            return
        for v, dist in gr.slot(parent, assignment[parent], u):
            assignment[u] = v
            backtrack(index + 1, assignment, score + dist + weight_of(v))
            del assignment[u]

    backtrack(0, {}, 0.0)
    results.sort(key=lambda m: (m.score, repr(sorted(m.assignment.items(), key=repr))))
    return results


def brute_force_topk(gr: RuntimeGraph, k: int, limit: int = 200_000) -> list[Match]:
    """First ``k`` matches of :func:`all_matches`."""
    return all_matches(gr, limit=limit)[:k]
