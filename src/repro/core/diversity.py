"""Diversified top-k matching — the paper's stated future work.

The conclusion lists "generate the 'diverse' top-k results" as an open
problem: consecutive top-k matches often differ in a single node, which
is uninformative for exploratory queries.  This module implements the
standard greedy swap-distance filter on top of any best-first match
stream: a match is emitted only if it differs from every previously
emitted match in at least ``min_distance`` query positions.

Because every engine in this library exposes matches as a non-decreasing
score stream, the greedy filter inherits the classic guarantee: each
emitted match is the *lowest-scoring* match satisfying the diversity
constraint against the already-emitted set.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.matches import Match


def assignment_distance(a: Match, b: Match) -> int:
    """Number of query positions where two matches differ."""
    keys = set(a.assignment) | set(b.assignment)
    return sum(1 for key in keys if a.assignment.get(key) != b.assignment.get(key))


def diversify(
    stream: Iterable[Match],
    min_distance: int = 2,
    max_considered: int | None = None,
) -> Iterator[Match]:
    """Filter a best-first match stream down to pairwise-diverse matches.

    Parameters
    ----------
    stream:
        Matches in non-decreasing score order (any engine's ``stream()``).
    min_distance:
        Minimum number of differing positions against *every* previously
        emitted match.  ``1`` disables filtering (all matches differ in at
        least one position by construction).
    max_considered:
        Optional cap on how many stream matches to inspect; ``None``
        consumes the stream until exhausted or the consumer stops.
    """
    if min_distance < 1:
        raise ValueError(f"min_distance must be >= 1, got {min_distance}")
    emitted: list[Match] = []
    for index, match in enumerate(stream):
        if max_considered is not None and index >= max_considered:
            return
        if all(assignment_distance(match, prev) >= min_distance for prev in emitted):
            emitted.append(match)
            yield match


def diverse_top_k(
    engine, k: int, min_distance: int = 2, max_considered: int | None = None
) -> list[Match]:
    """The ``k`` best pairwise-diverse matches from an engine.

    ``engine`` is any object with a ``stream()`` method yielding matches
    best-first (TopkEnumerator, TopkEN, DPBEnumerator, ...).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return []
    out: list[Match] = []
    for match in diversify(
        engine.stream(), min_distance=min_distance, max_considered=max_considered
    ):
        out.append(match)
        if len(out) >= k:
            break
    return out
