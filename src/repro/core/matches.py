"""Match representation and O(n_T) recovery from compact refs.

Section 3.3 ("Recovering the Match from Score"): the enumeration never
stores full matches for candidates — each candidate is a *ref* holding its
score, a link to the parent match it was derived from, and the single node
replacement that distinguishes it.  Only when a ref is popped as a top-l
result is the full assignment materialized, by copying the parent's
assignment and re-expanding the best subtree below the replacement point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

from repro.exceptions import MatchingError
from repro.graph.query import QNodeId, QueryTree

NodeId = Hashable


@dataclass(frozen=True)
class Match:
    """A complete tree-pattern match: assignment plus penalty score."""

    assignment: Mapping[QNodeId, NodeId]
    score: float

    def __post_init__(self) -> None:
        # Engines accumulate scores in int or float arithmetic depending on
        # the edge-weight types they saw; normalize at the API boundary.
        object.__setattr__(self, "score", float(self.score))

    def mapped_nodes(self) -> tuple[NodeId, ...]:
        """Data nodes in query breadth-first order-independent sorted form."""
        return tuple(sorted(self.assignment.values(), key=repr))

    def __iter__(self):
        yield from self.assignment.items()


class MatchRef:
    """Compact candidate: parent link + one node replacement.

    Attributes
    ----------
    score:
        Full penalty score (maintained incrementally, Section 3.3).
    parent:
        The materialized match this candidate was derived from (``None``
        for the top-1 seed).
    div_qnode:
        The query node whose assignment was replaced (the Lawler division
        position of the subspace this ref is the best match of).
    new_node:
        The data node now assigned at ``div_qnode``.
    rank:
        Rank of ``new_node`` in its slot (drives the next Case-1 request).
    slot:
        The slot object the replacement was drawn from (shared L/H lists).
    exclusions:
        Exclusion chain for dynamic slots (``None`` for static slots,
        where the rank encodes the exclusion set).
    round_heap:
        The per-round queue ``Q_l`` this ref was the representative of.
    """

    __slots__ = (
        "score",
        "parent",
        "div_qnode",
        "new_node",
        "rank",
        "slot",
        "exclusions",
        "round_heap",
        "assignment",
        "pending_since",
        "sel_key",
    )

    def __init__(
        self,
        score: float,
        parent: "MatchRef | None",
        div_qnode: QNodeId,
        new_node: NodeId,
        rank: int,
        slot: Any,
        exclusions: Any = None,
    ) -> None:
        self.score = score
        self.parent = parent
        self.div_qnode = div_qnode
        self.new_node = new_node
        self.rank = rank
        self.slot = slot
        self.exclusions = exclusions
        self.round_heap = None
        self.assignment: dict[QNodeId, NodeId] | None = None
        self.pending_since = None
        #: Slot key of ``new_node`` at selection time (drives incremental
        #: score arithmetic in the dynamic-slot enumerator).
        self.sel_key: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchRef(score={self.score}, div={self.div_qnode!r}, "
            f"node={self.new_node!r}, rank={self.rank})"
        )


SlotMin = Callable[[QNodeId, NodeId, QNodeId], tuple[float, tuple[QNodeId, NodeId]] | None]


def materialize(query: QueryTree, ref: MatchRef, slot_min: SlotMin) -> dict[QNodeId, NodeId]:
    """Recover the full assignment of a popped ref in O(n_T).

    ``slot_min`` returns the frozen rank-1 entry of the slot
    ``(parent query node, parent data node, child query node)`` —
    the best-child pointers built during initialization.  The walk sets
    ``div_qnode`` to the replacement node and re-expands its subtree along
    those pointers; everything outside the subtree is copied from the
    parent match.
    """
    if ref.assignment is not None:
        return ref.assignment
    if ref.parent is None:
        assignment: dict[QNodeId, NodeId] = {}
    else:
        parent_assignment = ref.parent.assignment
        if parent_assignment is None:
            raise MatchingError("parent match must be materialized first")
        assignment = dict(parent_assignment)
    assignment[ref.div_qnode] = ref.new_node
    stack = [ref.div_qnode]
    while stack:
        u = stack.pop()
        v = assignment[u]
        for u_child in query.children(u):
            best = slot_min(u, v, u_child)
            if best is None:
                raise MatchingError(
                    f"no viable child at slot ({u!r}, {v!r}, {u_child!r}) "
                    "during materialization"
                )
            _, child_rnode = best
            assignment[u_child] = child_rnode[1]
            stack.append(u_child)
    ref.assignment = assignment
    return assignment


@dataclass
class EnumerationStats:
    """Counters reported by the enumerators (for benches and tests)."""

    rounds: int = 0
    candidates_generated: int = 0
    case1_requests: int = 0
    case2_requests: int = 0
    empty_subspaces: int = 0
    pending_parks: int = 0
    expansions: int = 0
    edges_loaded: int = 0
    active_nodes: int = 0
    init_seconds: float = 0.0
    top1_seconds: float = 0.0
    enum_seconds: float = 0.0
    extra: dict = field(default_factory=dict)
