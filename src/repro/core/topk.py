"""Algorithm 1 — the optimal Lawler-based enumerator (``Topk``).

Works over a fully loaded run-time graph.  One-time initialization builds
the ``L``/``H`` slots bottom-up and the ``bs`` scores (O(m_R)); each
enumeration round then costs O(n_T + log k):

* exactly one Case-1 replacement (Theorem 3.1) — an ``ith(rank)`` request
  on the slot the popped match was drawn from (O(log) via the shared
  extracted prefix);
* at most ``n_T`` Case-2 replacements (Theorem 3.2) — O(1) ``ith(2)``
  peeks;
* queue maintenance through the per-round heaps ``Q_l`` and the global
  heap ``Q`` (O(log k)).
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.core.matches import EnumerationStats, Match, MatchRef, materialize
from repro.graph.query import QNodeId
from repro.runtime.graph import RNode, RuntimeGraph
from repro.runtime.slots import StaticSlot
from repro.utils.heap import TieBreakHeap

_INF = float("inf")


def _ZERO(node) -> float:
    """Default node-weight function: pure edge-distance scoring."""
    return 0.0


class TopkEnumerator:
    """Stateful enumerator: build once, then stream matches best-first.

    ``node_weight`` optionally adds a non-negative per-node weight to the
    penalty score (the paper's footnote 2):
    ``S(M) = sum of edge distances + sum of node weights``.
    """

    def __init__(self, gr: RuntimeGraph, node_weight=None) -> None:
        self.gr = gr
        self.query = gr.query
        self._node_weight = node_weight if node_weight is not None else _ZERO
        self.stats = EnumerationStats()
        started = time.perf_counter()
        # (u, v, u_child) -> StaticSlot of (key, (u_child, v_child)).
        self._slots: dict[tuple[QNodeId, RNode | None, QNodeId], StaticSlot] = {}
        self._bs: dict[RNode, float] = {}
        self._build_slots()
        self._root_slot = self._build_root_slot()
        self.stats.init_seconds = time.perf_counter() - started
        self._queue = TieBreakHeap()
        self._started = False
        self.results: list[Match] = []

    # ------------------------------------------------------------------
    # Initialization (bottom-up bs + L/H lists)
    # ------------------------------------------------------------------
    def _build_slots(self) -> None:
        query = self.query
        gr = self.gr
        bs = self._bs
        weight_of = self._node_weight
        for u in reversed(list(query.bfs_order())):
            kids = query.children(u)
            for v in gr.viable_candidates(u):
                if not kids:
                    bs[(u, v)] = float(weight_of(v))
                    continue
                total = float(weight_of(v))
                for u_child in kids:
                    entries = []
                    for v_child, dist in gr.slot(u, v, u_child):
                        child_bs = bs.get((u_child, v_child))
                        if child_bs is None:
                            continue
                        entries.append((child_bs + dist, (u_child, v_child)))
                    slot = StaticSlot(entries)
                    self._slots[(u, v, u_child)] = slot
                    best = slot.min()
                    if best is None:
                        total = _INF
                        break
                    total += best[0]
                if total < _INF:
                    bs[(u, v)] = total

    def _build_root_slot(self) -> StaticSlot:
        root = self.query.root
        entries = [
            (self._bs[(root, v)], (root, v))
            for v in self.gr.roots()
            if (root, v) in self._bs
        ]
        return StaticSlot(entries)

    # ------------------------------------------------------------------
    # Slot access helpers
    # ------------------------------------------------------------------
    def _slot_of(self, u: QNodeId, v, u_child: QNodeId) -> StaticSlot | None:
        return self._slots.get((u, v, u_child))

    def _slot_min(self, u: QNodeId, v, u_child: QNodeId):
        slot = self._slots.get((u, v, u_child))
        if slot is None:
            return None
        return slot.min()

    def top1_score(self) -> float | None:
        """Score of the best match, or ``None`` when no match exists."""
        best = self._root_slot.min()
        return None if best is None else best[0]

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def _seed(self) -> None:
        self._started = True
        best = self._root_slot.min()
        if best is None:
            return
        score, rnode = best
        ref = MatchRef(
            score=score,
            parent=None,
            div_qnode=self.query.root,
            new_node=rnode[1],
            rank=1,
            slot=self._root_slot,
        )
        self._queue.push(score, ref)

    def _promote_sibling(self, ref: MatchRef) -> None:
        """When a ref pops from ``Q``, promote the next best of its ``Q_l``."""
        heap: TieBreakHeap | None = ref.round_heap
        if heap is None or not heap:
            return
        score, sibling = heap.pop()
        sibling.round_heap = heap
        self._queue.push(score, sibling)

    def _divide(self, ref: MatchRef) -> None:
        """Split the popped match's subspace (procedure Divide)."""
        query = self.query
        order = query.bfs_order()
        assignment = ref.assignment
        candidates: list[MatchRef] = []

        # Case 1 (Theorem 3.1): next rank at the popped match's own slot.
        self.stats.case1_requests += 1
        old = ref.slot.ith(ref.rank)
        nxt = ref.slot.ith(ref.rank + 1)
        if nxt is None:
            self.stats.empty_subspaces += 1
        else:
            ref.slot.materialize_rank(ref.rank + 1)
            new_score = ref.score + (nxt[0] - old[0])
            # The popped match serves as materialization parent: the two
            # agree everywhere outside the replaced subtree.
            candidates.append(
                MatchRef(
                    score=new_score,
                    parent=ref,
                    div_qnode=ref.div_qnode,
                    new_node=nxt[1][1],
                    rank=ref.rank + 1,
                    slot=ref.slot,
                )
            )

        # Case 2 (Theorem 3.2): second-best sibling at every later position.
        div_position = query.position(ref.div_qnode)
        for position in range(div_position + 1, query.num_nodes):
            u_x = order[position]
            parent_q = query.parent(u_x)
            slot = self._slot_of(parent_q, assignment[parent_q], u_x)
            self.stats.case2_requests += 1
            if slot is None:
                self.stats.empty_subspaces += 1
                continue
            second = slot.ith(2)
            if second is None:
                self.stats.empty_subspaces += 1
                continue
            first = slot.ith(1)
            new_score = ref.score + (second[0] - first[0])
            candidates.append(
                MatchRef(
                    score=new_score,
                    parent=ref,
                    div_qnode=u_x,
                    new_node=second[1][1],
                    rank=2,
                    slot=slot,
                )
            )

        self.stats.candidates_generated += len(candidates)
        if not candidates:
            return
        # Per-round queue Q_l: only the best enters Q, carrying Q_l along.
        best_index = min(range(len(candidates)), key=lambda i: candidates[i].score)
        best = candidates.pop(best_index)
        if candidates:
            round_heap = TieBreakHeap()
            for cand in candidates:
                round_heap.push(cand.score, cand)
            best.round_heap = round_heap
        self._queue.push(best.score, best)

    def _advance(self) -> Match | None:
        """Produce the next-best match, or ``None`` when exhausted."""
        if not self._started:
            self._seed()
        if not self._queue:
            return None
        score, ref = self._queue.pop()
        self._promote_sibling(ref)
        assignment = materialize(self.query, ref, self._slot_min)
        self.stats.rounds += 1
        self._divide(ref)
        match = Match(assignment=dict(assignment), score=score)
        self.results.append(match)
        return match

    def __iter__(self) -> Iterator[Match]:
        return self.stream()

    def stream(self) -> Iterator[Match]:
        """Yield matches in non-decreasing score order.

        Already-produced matches replay from the cache, so multiple
        ``stream()``/``top_k()`` calls are consistent with one another.
        """
        index = 0
        while True:
            while index < len(self.results):
                yield self.results[index]
                index += 1
            if self._advance() is None:
                return

    def top_k(self, k: int) -> list[Match]:
        """Return up to ``k`` best matches (fewer when G has fewer)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        while len(self.results) < k:
            if self._advance() is None:
                break
        self.stats.enum_seconds += time.perf_counter() - started
        return list(self.results[:k])


def topk_matches(gr: RuntimeGraph, k: int) -> list[Match]:
    """Convenience wrapper: enumerate the top-``k`` matches of ``gr``."""
    return TopkEnumerator(gr).top_k(k)
