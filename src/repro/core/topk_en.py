"""Algorithms 2 & 3 — priority-based lazy access (``ComputeFirst``/``Topk-EN``).

Instead of loading the whole run-time graph, the engine pulls closure
blocks on demand, steered by the global priority queue ``Qg``.  Every
queued run-time node ``v`` carries

    ``lb(v) = bs(v) + e_v + L(q(v))``

where ``bs`` is the best known subtree score at ``v``, ``e_v`` lower-bounds
the distance of any *unloaded* incoming edge to ``v`` (the ``D`` table
minimum before the first block, then the last loaded distance — groups are
distance-sorted), and ``L(u) = n_T - 1 - |T_u|`` is the structural bound on
the rest of the query (Section 4.2).  With ``bound="loose"`` the ``L``
term is dropped — that is the weaker DP-P trigger the paper compares
against, reused by our DP-P baseline and the bound-tightness ablation.

Monotonicity of popped ``lb`` values (Theorem 4.1) makes the current top
of ``Qg`` a *guard*: any match that involves a not-yet-loaded edge scores
at least the guard.  ``ComputeFirst`` (Algorithm 2) pops and expands until
a root-position node surfaces — its ``bs`` is then the top-1 score
(Theorem 4.2).  Enumeration (Algorithm 3) runs the same Lawler divisions
as Algorithm 1 but over *dynamic* slots: a candidate computed from
partially loaded slots is emitted only once its score is at or below the
guard; otherwise it parks in a pending pool and is re-evaluated after
expansions (the paper's delayed insertion into ``Q``).

Implementation deviations from the paper's letter (all documented in
DESIGN.md, all correctness-preserving): full ``D`` tables, leaf copies
entering ``Qg``, exclusion chains instead of rank arithmetic on dynamic
slots, and no per-round ``Q_l`` sub-heaps.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterator

from repro.closure.store import ClosureStore
from repro.core.matches import EnumerationStats, Match, MatchRef, materialize
from repro.exceptions import MatchingError
from repro.graph.query import EdgeType, QNodeId, QueryTree
from repro.runtime.slots import DynamicSlot, ExclusionChain
from repro.storage.blocks import BlockTable
from repro.twig.semantics import EQUALITY, LabelMatcher
from repro.utils.heap import LazyDeletionHeap, TieBreakHeap

_INF = float("inf")
NodeId = Hashable


def _zero_weight(node) -> float:
    """Default node-weight function: pure edge-distance scoring."""
    return 0.0
RNode = tuple[QNodeId, NodeId]

#: Trigger bounds: the paper's structural bound vs the DP-P-style loose one.
BOUNDS = ("structural", "loose")


class _NodeState:
    """Per run-time-node bookkeeping for the lazy engine."""

    __slots__ = (
        "rnode",
        "qnode",
        "data_node",
        "bs",
        "slots",
        "slot_mins",
        "nonempty_slots",
        "active",
        "popped",
        "exhausted",
        "matchable",
        "e_floor",
        "lb",
        "cursor",
    )

    def __init__(self, rnode: RNode) -> None:
        self.rnode = rnode
        self.qnode, self.data_node = rnode
        self.bs = 0.0
        self.slots: dict[QNodeId, DynamicSlot] = {}
        self.slot_mins: dict[QNodeId, float] = {}
        self.nonempty_slots = 0
        self.active = False
        self.popped = False
        self.exhausted = False
        self.matchable = True
        self.e_floor = 0.0
        self.lb = _INF
        self.cursor: "_GroupCursor | None" = None


class _GroupCursor:
    """Block-by-block reader over a node's incoming ``L`` group."""

    __slots__ = ("table", "next_block", "done")

    def __init__(self, table: BlockTable) -> None:
        self.table = table
        self.next_block = 0
        self.done = table.num_blocks == 0

    def read_next(self) -> tuple:
        block = self.table.read_block(self.next_block)
        self.next_block += 1
        if self.next_block >= self.table.num_blocks:
            self.done = True
        return block


class _Pending:
    """A Lawler subspace whose best match cannot be certified yet."""

    __slots__ = ("parent", "div_qnode", "slot", "exclusions", "base_score")

    def __init__(self, parent, div_qnode, slot, exclusions, base_score) -> None:
        self.parent = parent
        self.div_qnode = div_qnode
        self.slot = slot
        self.exclusions = exclusions
        self.base_score = base_score

    def tentative(self) -> tuple[float, tuple | None]:
        """(score, (key, node)) for the current best non-excluded entry."""
        best = self.slot.best_excluding(self.exclusions)
        if best is None:
            return _INF, None
        return self.base_score + best[0], best


class LazyTopkEngine:
    """Shared machinery of ``Topk-EN`` (tight bound) and ``DP-P`` (loose)."""

    def __init__(
        self,
        store: ClosureStore,
        query: QueryTree,
        matcher: LabelMatcher = EQUALITY,
        bound: str = "structural",
        node_weight=None,
    ) -> None:
        if bound not in BOUNDS:
            raise ValueError(f"bound must be one of {BOUNDS}, got {bound!r}")
        self.store = store
        self.query = query
        self.matcher = matcher
        self.bound = bound
        # Footnote 2: optional non-negative per-node weights in the score.
        self._weighted = node_weight is not None
        self._node_weight = node_weight if node_weight is not None else _zero_weight
        self.stats = EnumerationStats()
        self._alphabet = store.graph.labels()
        self._min_weight = self._minimum_edge_weight()
        self._states: dict[RNode, _NodeState] = {}
        self._dmin: dict[RNode, float] = {}
        # Leaf copies waiting outside Qg until their slot is constrained.
        self._dormant: dict[QNodeId, list[_NodeState]] = {}
        self._qg: LazyDeletionHeap = LazyDeletionHeap(key_of=lambda s: s.lb)
        self._root_slot = DynamicSlot()
        self._queue = TieBreakHeap()
        self._pending: list[_Pending] = []
        self.results: list[Match] = []
        self._seeded = False
        self._top1_done = False
        started = time.perf_counter()
        self._initialize()
        self.stats.init_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Initialization (Algorithm 2, line 1-3)
    # ------------------------------------------------------------------
    def _minimum_edge_weight(self) -> float:
        weights = [w for _, __, w in self.store.graph.edges()]
        return min(weights) if weights else 0.0

    def _tail_labels(self, qnode: QNodeId) -> list | None:
        return self.matcher.data_labels_for(self.query.label(qnode), self._alphabet)

    def _structural_bound(self, qnode: QNodeId) -> float:
        if self.bound == "loose":
            return 0.0
        return self.query.remaining_lower_bound(qnode) * self._min_weight

    def _initialize(self) -> None:
        query = self.query
        if query.num_nodes == 1:
            self._initialize_single_node()
            return
        # D tables for every query edge: candidate universes + e_v floors.
        candidates_of: dict[QNodeId, dict[NodeId, float]] = {}
        for u_p, u, _ in query.edges():
            tail_labels = self._tail_labels(u_p)
            head_labels = self._tail_labels(u)
            merged: dict[NodeId, float] = {}
            for tl in tail_labels if tail_labels is not None else [None]:
                for hl in head_labels if head_labels is not None else [None]:
                    for node, dist in self.store.read_d_table(tl, hl).items():
                        best = merged.get(node)
                        if best is None or dist < best:
                            merged[node] = dist
            candidates_of[u] = merged
            for node, dist in merged.items():
                self._dmin[(u, node)] = dist

        # Leaf copies: active with bs = 0, but *dormant* — they only join Qg
        # once an enumeration subspace constrains their slot.  For the top-1
        # phase the E-table minima make their expansion unnecessary: any
        # match using an unloaded leaf edge is dominated by the match that
        # swaps in the parent's E-minimum leaf, which is already loaded
        # (see DESIGN.md, "lazy leaf activation").  Leaves reached by a '/'
        # edge get no E pre-seed (E rows carry no direct-edge flag), so
        # their copies join Qg immediately.
        for u in query.nodes():
            if not query.is_leaf(u):
                continue
            # Dormancy relies on the E pre-seed being the slot's true
            # minimum; '/' edges have no pre-seed and node weights can move
            # the minimum to a different leaf, so both cases queue leaves
            # immediately instead.
            immediate = (
                self.query.edge_type(query.parent(u), u) is EdgeType.CHILD
                or self._weighted
            )
            bound = self._structural_bound(u)
            dormant: list[_NodeState] = []
            for node, dist in candidates_of.get(u, {}).items():
                state = self._state((u, node))
                state.active = True
                state.e_floor = dist
                state.bs = float(self._node_weight(node))
                state.lb = state.bs + dist + bound
                if immediate:
                    self._qg.push(state)
                    self.stats.active_nodes += 1
                else:
                    dormant.append(state)
            if not immediate:
                self._dormant[u] = dormant

        # E tables for leaf edges: pre-seed parent slots with the minimum
        # outgoing edge per prospective parent ('/'-edges excluded: E rows
        # carry no direct-edge flag).
        for u_p, u, etype in query.edges():
            if not query.is_leaf(u) or etype is EdgeType.CHILD:
                continue
            tail_labels = self._tail_labels(u_p)
            head_labels = self._tail_labels(u)
            for tl in tail_labels if tail_labels is not None else [None]:
                for hl in head_labels if head_labels is not None else [None]:
                    for tail, head, dist in self.store.read_e_table(tl, hl):
                        self.stats.extra["e_init_entries"] = (
                            self.stats.extra.get("e_init_entries", 0) + 1
                        )
                        key = dist + float(self._node_weight(head))
                        self._insert_edge(u_p, tail, u, key, (u, head))

    def _initialize_single_node(self) -> None:
        """Degenerate one-node query: every label match is a score-0 match."""
        root = self.query.root
        labels = self._tail_labels(root)
        if labels is None:
            nodes = set(self.store.graph.nodes())
        else:
            nodes = set()
            for label in labels:
                nodes |= self.store.graph.nodes_with_label(label)
        for node in sorted(nodes, key=repr):
            self._root_slot.insert(float(self._node_weight(node)), (root, node))
        self._top1_done = True

    # ------------------------------------------------------------------
    # State and slot bookkeeping
    # ------------------------------------------------------------------
    def _state(self, rnode: RNode) -> _NodeState:
        state = self._states.get(rnode)
        if state is None:
            state = _NodeState(rnode)
            self._states[rnode] = state
        return state

    def _guard(self) -> float:
        if not self._qg:
            return _INF
        key, _ = self._qg.peek()
        return key

    def _insert_edge(
        self,
        u_parent: QNodeId,
        parent_node: NodeId,
        u_child: QNodeId,
        key_delta: float,
        child_rnode: RNode,
    ) -> None:
        """Register a loaded edge in the parent copy's child slot.

        ``key_delta`` is ``bs(child) + delta(parent, child)`` — final on
        arrival (Theorem 4.2).  Handles activation and ``bs``/``lb``
        updates of the parent copy.
        """
        parent_rnode = (u_parent, parent_node)
        state = self._state(parent_rnode)
        slot = state.slots.get(u_child)
        if slot is None:
            slot = DynamicSlot()
            state.slots[u_child] = slot
        was_empty = not slot
        if not slot.insert(key_delta, child_rnode):
            return
        if was_empty:
            state.nonempty_slots += 1
            state.slot_mins[u_child] = key_delta
            if state.nonempty_slots == len(self.query.children(u_parent)):
                self._activate(state)
            return
        current = state.slot_mins[u_child]
        if key_delta < current:
            state.slot_mins[u_child] = key_delta
            if state.active:
                if state.popped:
                    raise MatchingError(
                        "bs decreased after pop — Theorem 4.2 violated "
                        f"at {parent_rnode!r}"
                    )
                state.bs += key_delta - current
                self._refresh_lb(state)

    def _activate(self, state: _NodeState) -> None:
        """All child slots non-empty: compute bs and queue on Qg."""
        u = state.qnode
        is_root = self.query.parent(u) is None
        if not is_root and state.rnode not in self._dmin:
            # No incoming edge from the parent's label: the copy can never
            # participate in a match — leave it inactive.
            state.matchable = False
            return
        state.active = True
        state.bs = float(self._node_weight(state.data_node)) + sum(
            state.slot_mins.values()
        )
        state.e_floor = 0.0 if is_root else self._dmin[state.rnode]
        self.stats.active_nodes += 1
        self._refresh_lb(state)

    def _refresh_lb(self, state: _NodeState) -> None:
        u = state.qnode
        if self.query.parent(u) is None:
            state.lb = state.bs
        else:
            state.lb = state.bs + state.e_floor + self._structural_bound(u)
        if not state.popped:
            self._qg.push(state)

    # ------------------------------------------------------------------
    # Expansion (procedure Expand of Algorithm 2)
    # ------------------------------------------------------------------
    def _open_cursor(self, state: _NodeState) -> _GroupCursor:
        u = state.qnode
        u_parent = self.query.parent(u)
        tail_labels = self._tail_labels(u_parent)
        if tail_labels is None:
            table = self.store.incoming_group(state.data_node, None)
        elif len(tail_labels) == 1:
            table = self.store.incoming_group(state.data_node, tail_labels[0])
        else:
            # Containment-style matchers: merge all groups, filter on label.
            table = self.store.incoming_group(state.data_node, None)
        return _GroupCursor(table)

    def _accepts_tail(self, u_parent: QNodeId, tail: NodeId) -> bool:
        return self.matcher.matches(
            self.query.label(u_parent), self.store.graph.label(tail)
        )

    def _expand_step(self) -> None:
        """Pop the Qg top; either surface a root match or load its blocks."""
        _, state = self._qg.pop()
        state.popped = True
        u = state.qnode
        if self.query.parent(u) is None:
            # A root-position copy: its bs is a complete match score.
            self._root_slot.insert(state.bs, state.rnode)
            state.exhausted = True
            return
        self.stats.expansions += 1
        u_parent = self.query.parent(u)
        direct_only = self.query.edge_type(u_parent, u) is EdgeType.CHILD
        if state.cursor is None:
            state.cursor = self._open_cursor(state)
        cursor = state.cursor
        while True:
            if cursor.done:
                state.exhausted = True
                state.e_floor = _INF
                return
            block = cursor.read_next()
            for tail, dist, is_direct in block:
                self.stats.edges_loaded += 1
                if direct_only and not is_direct:
                    continue
                if not self._accepts_tail(u_parent, tail):
                    continue
                self._insert_edge(u_parent, tail, u, state.bs + dist, state.rnode)
            if block:
                state.e_floor = max(state.e_floor, block[-1][1])
            if cursor.done:
                state.exhausted = True
                state.e_floor = _INF
                return
            # "If an estimation of the next block still makes v the top,
            # keep loading" (Algorithm 2 line 14).
            new_lb = state.bs + state.e_floor + self._structural_bound(u)
            if self._qg and new_lb > self._guard():
                state.lb = new_lb
                state.popped = False
                self._qg.push(state)
                return

    # ------------------------------------------------------------------
    # Top-1 (Algorithm 2 main loop)
    # ------------------------------------------------------------------
    def compute_first(self) -> float | None:
        """Run ``ComputeFirst``: returns the top-1 score (or ``None``)."""
        started = time.perf_counter()
        while not self._top1_done:
            if not self._qg:
                self._top1_done = True
                break
            before = len(self._root_slot)
            self._expand_step()
            if len(self._root_slot) > before:
                self._top1_done = True
        self.stats.top1_seconds += time.perf_counter() - started
        best = self._root_slot.min()
        return None if best is None else best[0]

    # ------------------------------------------------------------------
    # Enumeration (Algorithm 3)
    # ------------------------------------------------------------------
    def _slot_min(self, u: QNodeId, v: NodeId, u_child: QNodeId):
        state = self._states.get((u, v))
        if state is None:
            return None
        slot = state.slots.get(u_child)
        if slot is None:
            return None
        return slot.min()

    def _seed(self) -> None:
        self._seeded = True
        if not self._top1_done:
            self.compute_first()
        best = self._root_slot.min()
        if best is None:
            return
        score, rnode = best
        ref = MatchRef(
            score=score,
            parent=None,
            div_qnode=self.query.root,
            new_node=rnode[1],
            rank=1,
            slot=self._root_slot,
            exclusions=None,
        )
        ref.sel_key = score
        self._queue.push(score, ref)

    def _wake_dormant_leaves(self, qnode: QNodeId) -> bool:
        """Queue the dormant leaf copies of ``qnode`` on Qg (first constraint)."""
        dormant = self._dormant.pop(qnode, None)
        if not dormant:
            return False
        for state in dormant:
            self._qg.push(state)
            self.stats.active_nodes += 1
        return True

    def _emit_candidate(
        self, parent: MatchRef, div_qnode: QNodeId, slot: DynamicSlot,
        exclusions, base_score: float, guard: float,
    ) -> None:
        """Insert the subspace's best match into Q, or park it pending."""
        if div_qnode in self._dormant:
            # First subspace constraining this leaf position: its unloaded
            # sibling edges become relevant, so the copies must join Qg
            # before the guard can certify anything about this slot.
            self._wake_dormant_leaves(div_qnode)
            self._pending.append(
                _Pending(parent, div_qnode, slot, exclusions, base_score)
            )
            self.stats.pending_parks += 1
            return
        best = slot.best_excluding(exclusions)
        if best is not None and base_score + best[0] <= guard:
            key, node = best
            ref = MatchRef(
                score=base_score + key,
                parent=parent,
                div_qnode=div_qnode,
                new_node=node[1],
                rank=0,
                slot=slot,
                exclusions=exclusions,
            )
            ref.sel_key = key
            self._queue.push(ref.score, ref)
            self.stats.candidates_generated += 1
        else:
            self._pending.append(
                _Pending(parent, div_qnode, slot, exclusions, base_score)
            )
            self.stats.pending_parks += 1

    def _divide(self, ref: MatchRef, guard: float) -> None:
        query = self.query
        order = query.bfs_order()
        assignment = ref.assignment

        # Case 1: exclude the popped match's own node in its slot.
        self.stats.case1_requests += 1
        exclusions = ExclusionChain.extend(ref.exclusions, (ref.div_qnode, ref.new_node))
        base = ref.score - ref.sel_key
        self._emit_candidate(ref, ref.div_qnode, ref.slot, exclusions, base, guard)

        # Case 2: second-best sibling at every later position.
        div_position = query.position(ref.div_qnode)
        for position in range(div_position + 1, query.num_nodes):
            u_x = order[position]
            parent_q = query.parent(u_x)
            state = self._states.get((parent_q, assignment[parent_q]))
            self.stats.case2_requests += 1
            if state is None:
                self.stats.empty_subspaces += 1
                continue
            slot = state.slots.get(u_x)
            if slot is None:
                self.stats.empty_subspaces += 1
                continue
            occupant = (u_x, assignment[u_x])
            first = slot.min()
            if first is None:
                self.stats.empty_subspaces += 1
                continue
            base = ref.score - first[0]
            exclusions = ExclusionChain.extend(None, occupant)
            self._emit_candidate(ref, u_x, slot, exclusions, base, guard)

    def _sweep_pending(self, guard: float) -> None:
        """Re-check parked subspaces against the current guard."""
        if not self._pending:
            return
        survivors: list[_Pending] = []
        for item in self._pending:
            tentative, best = item.tentative()
            if tentative <= guard and best is not None:
                key, node = best
                ref = MatchRef(
                    score=tentative,
                    parent=item.parent,
                    div_qnode=item.div_qnode,
                    new_node=node[1],
                    rank=0,
                    slot=item.slot,
                    exclusions=item.exclusions,
                )
                ref.sel_key = key
                self._queue.push(ref.score, ref)
                self.stats.candidates_generated += 1
            elif tentative == _INF and guard == _INF:
                self.stats.empty_subspaces += 1  # provably empty subspace
            else:
                survivors.append(item)
        self._pending = survivors

    def _next_ref(self) -> MatchRef | None:
        """Procedure Next of Algorithm 3."""
        while True:
            guard = self._guard()
            self._sweep_pending(guard)
            if self._queue and self._queue.peek_key() <= guard:
                _, ref = self._queue.pop()
                return ref
            if not self._qg:
                if self._queue:
                    _, ref = self._queue.pop()
                    return ref
                return None
            self._expand_step()

    def _advance(self) -> Match | None:
        if not self._seeded:
            self._seed()
        ref = self._next_ref()
        if ref is None:
            return None
        assignment = materialize(self.query, ref, self._slot_min)
        self.stats.rounds += 1
        self._divide(ref, self._guard())
        match = Match(assignment=dict(assignment), score=ref.score)
        self.results.append(match)
        return match

    def stream(self) -> Iterator[Match]:
        """Yield matches best-first; replays cached results on re-iteration."""
        index = 0
        while True:
            while index < len(self.results):
                yield self.results[index]
                index += 1
            if self._advance() is None:
                return

    def __iter__(self) -> Iterator[Match]:
        return self.stream()

    def top_k(self, k: int) -> list[Match]:
        """Return up to ``k`` best matches."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        while len(self.results) < k:
            if self._advance() is None:
                break
        self.stats.enum_seconds += time.perf_counter() - started
        return list(self.results[:k])


class TopkEN(LazyTopkEngine):
    """Algorithm 3 with the paper's tight structural trigger."""

    def __init__(
        self,
        store: ClosureStore,
        query: QueryTree,
        matcher: LabelMatcher = EQUALITY,
        node_weight=None,
    ) -> None:
        super().__init__(
            store, query, matcher=matcher, bound="structural",
            node_weight=node_weight,
        )


def topk_en_matches(store: ClosureStore, query: QueryTree, k: int) -> list[Match]:
    """Convenience wrapper: lazy top-``k`` matching straight from the store."""
    return TopkEN(store, query).top_k(k)
