"""Write-ahead delta overlay + background compaction.

The write path the serving tier lacked: mutations land as typed records
in a :class:`DeltaLog` (optionally write-ahead-logged to a checksummed
segment file that recovers cleanly from torn tails), reads fold the
overlay onto the immutable base through :class:`DeltaView` /
:func:`fold` (sharing every unaffected closure row with the base), and
a background :class:`Compactor` folds accumulated deltas into numbered
``.ridx`` generations managed by a :class:`GenerationStore`.

This package sits on ``repro.engine`` and *below* the serving layer —
``repro.service`` wires it up, never the reverse (rule RL001 of
``repro lint``, ``config/layers.toml``).
"""

from repro.delta.compactor import CompactionPolicy, Compactor
from repro.delta.generations import (
    GenerationStore,
    manifest_path_for,
    resolve_index_path,
    sniff_is_generation_manifest,
)
from repro.delta.log import DeltaLog
from repro.delta.records import (
    DeltaRecord,
    EdgeAdd,
    EdgeRemove,
    LabelChange,
    NodeAdd,
    decode_record,
    encode_record,
    records_from_updates,
)
from repro.delta.view import (
    DeltaView,
    FoldResult,
    GraphDiff,
    apply_records,
    diff_graphs,
    fold,
    fold_graph,
)
from repro.delta.wal import WalScan, WriteAheadLog, fsync_dir, scan_wal

__all__ = [
    "CompactionPolicy",
    "Compactor",
    "DeltaLog",
    "DeltaRecord",
    "DeltaView",
    "EdgeAdd",
    "EdgeRemove",
    "FoldResult",
    "GenerationStore",
    "GraphDiff",
    "LabelChange",
    "NodeAdd",
    "WalScan",
    "WriteAheadLog",
    "apply_records",
    "decode_record",
    "diff_graphs",
    "encode_record",
    "fold",
    "fold_graph",
    "fsync_dir",
    "manifest_path_for",
    "records_from_updates",
    "resolve_index_path",
    "scan_wal",
    "sniff_is_generation_manifest",
]
