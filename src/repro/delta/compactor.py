"""Background compaction: the policy and the thread that applies it.

:class:`CompactionPolicy` decides *when* the overlay is worth folding
(absolute record count, overlay/base ratio); :class:`Compactor` is the
small daemon thread that periodically invokes a tick callable — the
owning service's "absorb pending deltas, fold a generation if the
policy trips" step — and can be kicked awake the moment a write lands.

The compactor deliberately knows nothing about services: it receives a
zero-argument callable and never imports the serving layer (the
``repro.delta`` layering gate bans it), so the same machinery can drive
a flat service, a shard worker, or a test harness.  Tick errors are
swallowed and counted — a failing fold must degrade to "the overlay
keeps growing", never to a dead service.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import DeltaError


@dataclass(frozen=True)
class CompactionPolicy:
    """Thresholds that trip a background fold.

    ``max_records``
        Fold once this many overlay records are pending (0 disables).
    ``max_ratio``
        Fold once ``pending / base_size`` exceeds this, where
        ``base_size`` is the base snapshot's nodes + edges (0 disables).
    """

    max_records: int = 1024
    max_ratio: float = 0.5

    def due(self, pending_records: int, base_size: int) -> bool:
        if pending_records <= 0:
            return False
        if self.max_records and pending_records >= self.max_records:
            return True
        if self.max_ratio and pending_records / max(1, base_size) >= self.max_ratio:
            return True
        return False


class Compactor:
    """A daemon thread ticking a callable at a bounded cadence.

    ``tick`` runs on the compactor thread: once per ``interval`` while
    idle, and immediately after :meth:`kick` (writes kick so absorption
    happens off the read path as soon as possible).  :meth:`stop` is
    idempotent and joins the thread.
    """

    def __init__(
        self,
        tick,
        *,
        interval: float = 0.25,
        name: str = "repro-compactor",
    ) -> None:
        if interval <= 0:
            raise DeltaError(f"interval must be positive, got {interval}")
        self._tick = tick
        self.interval = interval
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self.ticks = 0
        self.errors = 0
        self.last_error: str | None = None
        self.stop_timed_out = False
        self._thread.start()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def kick(self) -> None:
        """Wake the thread now (called after every delta append)."""
        self._wake.set()

    def _run(self) -> None:
        while not self._stopped.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._stopped.is_set():
                return
            try:
                self._tick()
            except Exception as exc:  # noqa: BLE001 - must not kill the thread
                self.errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                self.ticks += 1

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop the thread; ``True`` when it actually exited.

        A tick stuck past ``timeout`` leaves the daemon thread alive —
        that is recorded (``stop_timed_out``, also in :meth:`stats`)
        instead of silently leaking, so the owning service can report
        it.  A later successful stop clears the flag.
        """
        self._stopped.set()
        self._wake.set()
        self._thread.join(timeout=timeout)
        self.stop_timed_out = self._thread.is_alive()
        return not self.stop_timed_out

    def stats(self) -> dict:
        return {
            "alive": self.alive,
            "interval": self.interval,
            "ticks": self.ticks,
            "errors": self.errors,
            "last_error": self.last_error,
            "stop_timed_out": self.stop_timed_out,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compactor(alive={self.alive}, ticks={self.ticks})"
