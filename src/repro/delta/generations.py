"""Compaction generations: numbered ``.ridx`` snapshots + a tiny manifest.

A compaction folds the accumulated overlay into a brand-new immutable
index file — generation ``N`` — next to the base:

.. code-block:: text

    index.ridx                  # generation 0, the original base
    index.gen-0001.ridx         # first compaction
    index.gen-0002.ridx         # second compaction
    index.generations.json      # the manifest naming the current one

The manifest is a small JSON document (``kind:
"repro-delta-generations"``) listing every generation with its epoch,
fold size, and wall time; ``current`` names the one to open.  Both the
generation file and the manifest are written to a temp name and moved
into place with ``os.replace``, so readers only ever see complete
files.  The swap protocol with the WAL (normative; DESIGN.md):

1. write ``index.gen-NNNN.ridx`` (temp + replace);
2. update the manifest to ``current = N`` (temp + replace);
3. rewrite the WAL empty with ``generation = N``.

A crash between 2 and 3 leaves a WAL stamped ``N-1`` whose records are
already folded into generation ``N``; :func:`stale_wal` detects exactly
that, and boot discards the segment instead of double-applying it.  A
crash between 1 and 2 leaves an orphan generation file the next
compaction simply overwrites.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.delta.wal import fsync_dir
from repro.exceptions import DeltaError

MANIFEST_KIND = "repro-delta-generations"
MANIFEST_VERSION = 1


def manifest_path_for(base_path: str | Path) -> Path:
    """The manifest path that pairs with ``base_path`` (an index file)."""
    base = Path(base_path)
    return base.with_name(f"{base.stem}.generations.json")


def sniff_is_generation_manifest(path: str | Path) -> bool:
    """True when ``path`` is a generations manifest file itself."""
    path = Path(path)
    if not path.is_file() or path.suffix != ".json":
        return False
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read(4096)
        return json.loads(head).get("kind") == MANIFEST_KIND
    except (OSError, ValueError, AttributeError):
        return False


class GenerationStore:
    """Reads and writes the generation family of one base index."""

    def __init__(self, base_path: str | Path) -> None:
        base = Path(base_path)
        if sniff_is_generation_manifest(base):
            document = json.loads(base.read_text(encoding="utf-8"))
            base = base.with_name(document["base"])
        self.base_path = base
        self.manifest_path = manifest_path_for(base)

    # ------------------------------------------------------------------
    def load_manifest(self) -> dict | None:
        """The manifest document, or ``None`` before the first compaction."""
        if not self.manifest_path.exists():
            return None
        try:
            document = json.loads(self.manifest_path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            raise DeltaError(
                f"unreadable generations manifest {self.manifest_path}: {exc}"
            ) from exc
        if document.get("kind") != MANIFEST_KIND:
            raise DeltaError(
                f"{self.manifest_path} is not a generations manifest "
                f"(kind={document.get('kind')!r})"
            )
        return document

    @property
    def current_generation(self) -> int:
        document = self.load_manifest()
        return 0 if document is None else int(document["current"])

    def generation_path(self, generation: int) -> Path:
        if generation == 0:
            return self.base_path
        return self.base_path.with_name(
            f"{self.base_path.stem}.gen-{generation:04d}{self.base_path.suffix}"
        )

    def current_path(self) -> Path:
        """The index file a cold start should open."""
        return self.generation_path(self.current_generation)

    def generations(self) -> list[dict]:
        document = self.load_manifest()
        return [] if document is None else list(document["generations"])

    # ------------------------------------------------------------------
    def write_generation(
        self,
        engine,
        *,
        epoch: int,
        records_folded: int,
        wall_seconds: float,
    ) -> tuple[int, Path]:
        """Persist ``engine`` as the next generation and point at it.

        Returns ``(generation_number, path)``.  Caller is responsible
        for step 3 of the swap protocol (rewriting the WAL with the new
        generation stamp) once this returns.
        """
        generation = self.current_generation + 1
        path = self.generation_path(generation)
        tmp = path.with_name(path.name + ".tmp")
        engine.save_index(tmp, format="binary")
        os.replace(tmp, path)
        fsync_dir(path.parent)
        document = self.load_manifest() or {
            "kind": MANIFEST_KIND,
            "version": MANIFEST_VERSION,
            "base": self.base_path.name,
            "generations": [],
        }
        document["generations"].append(
            {
                "generation": generation,
                "file": path.name,
                "epoch": epoch,
                "records_folded": records_folded,
                "wall_seconds": wall_seconds,
                "created_at": time.time(),
            }
        )
        document["current"] = generation
        manifest_tmp = self.manifest_path.with_name(
            self.manifest_path.name + ".tmp"
        )
        manifest_tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(manifest_tmp, self.manifest_path)
        fsync_dir(self.manifest_path.parent)
        return generation, path

    def stale_wal(self, wal_generation: int) -> bool:
        """True when a WAL's records are already folded into a newer
        generation (the crash-between-manifest-and-truncate window)."""
        return wal_generation < self.current_generation

    def stats(self) -> dict:
        document = self.load_manifest()
        return {
            "base": str(self.base_path),
            "manifest": str(self.manifest_path),
            "current": 0 if document is None else document["current"],
            "generations": 0 if document is None else len(document["generations"]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GenerationStore({str(self.base_path)!r}, "
            f"current={self.current_generation})"
        )


def resolve_index_path(path: str | Path) -> Path:
    """The file to actually open for ``path``, generation-aware.

    Accepts the base index path or the manifest path; returns the
    current generation's file when a manifest exists, otherwise the
    path unchanged.  Cold starts and the CLI route through this so a
    compacted deployment transparently boots at its newest generation.
    """
    path = Path(path)
    if sniff_is_generation_manifest(path):
        return GenerationStore(path).current_path()
    if path.suffix != ".json" and manifest_path_for(path).exists():
        return GenerationStore(path).current_path()
    return path
