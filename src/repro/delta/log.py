"""The in-memory delta log: ordered pending records + optional WAL.

A :class:`DeltaLog` is the write side of the overlay: every
``apply_updates`` batch that takes the delta path lands here as one
*version* (a monotonically increasing batch counter).  When a WAL is
attached, records hit the segment file *before* they become visible in
memory — write-ahead in the literal sense — so any state a reader can
observe is recoverable.

Folding (materialization or compaction) drains the pending records but
only a compaction truncates the WAL: an in-memory fold does not change
what is on disk, so after a crash the segment still replays onto the
on-disk base and converges to the same graph.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.delta.records import DeltaRecord
from repro.delta.wal import WriteAheadLog
from repro.devtools.lockcheck import make_lock
from repro.exceptions import DeltaError


class DeltaLog:
    """Thread-safe ordered log of pending delta records.

    ``version`` counts batches ever appended (including recovered and
    already-folded ones); ``pending_records``/``pending_batches`` count
    only what has not been folded into an engine yet.
    """

    def __init__(self, wal: WriteAheadLog | None = None) -> None:
        self.wal = wal
        self._lock = make_lock("delta.log")
        self._batches: list[tuple[DeltaRecord, ...]] = []
        self._version = 0
        self._folded_records = 0
        self._folds = 0

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    @property
    def pending_batches(self) -> int:
        return len(self._batches)

    @property
    def pending_records(self) -> int:
        with self._lock:
            return sum(len(batch) for batch in self._batches)

    @property
    def folded_records(self) -> int:
        return self._folded_records

    def append(self, records: Iterable[DeltaRecord]) -> int:
        """Append one batch (WAL first, then memory); returns its version.

        A WAL append that fails (unencodable ids, closed segment) leaves
        the log untouched — nothing becomes visible that is not durable.
        """
        batch = tuple(records)
        if not batch:
            raise DeltaError("a delta batch must contain at least one record")
        if self.wal is not None:
            self.wal.append(batch)
        with self._lock:
            self._batches.append(batch)
            self._version += 1
            return self._version

    def adopt(self, records: Sequence[DeltaRecord]) -> int:
        """Append recovered records as one pending batch, memory only.

        Used at boot: the records were just read *from* the WAL, so
        writing them back would double them up.  No-op on an empty
        sequence; returns the resulting version.
        """
        batch = tuple(records)
        with self._lock:
            if batch:
                self._batches.append(batch)
                self._version += 1
            return self._version

    def records(self) -> tuple[DeltaRecord, ...]:
        """All pending records, oldest first."""
        with self._lock:
            return tuple(
                record for batch in self._batches for record in batch
            )

    def drain(self) -> tuple[DeltaRecord, ...]:
        """Atomically take every pending record (the fold step).

        The WAL is deliberately left alone — call
        ``wal.rewrite((), generation=...)`` only once the fold has been
        made durable (a new ``.ridx`` generation), or crash recovery
        would lose the drained records.
        """
        with self._lock:
            drained = tuple(
                record for batch in self._batches for record in batch
            )
            self._folded_records += len(drained)
            if drained:
                self._folds += 1
            self._batches.clear()
            return drained

    def stats(self) -> dict:
        with self._lock:
            pending = sum(len(batch) for batch in self._batches)
            batches = len(self._batches)
        return {
            "version": self._version,
            "pending_records": pending,
            "pending_batches": batches,
            "folded_records": self._folded_records,
            "folds": self._folds,
            "wal": None if self.wal is None else self.wal.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaLog(version={self._version}, "
            f"pending_batches={self.pending_batches}, "
            f"wal={self.wal is not None})"
        )
