"""Typed delta records — the write vocabulary of the overlay layer.

Every mutation the serving tier accepts is one of four record types:

=================  =====================================  ==============
record             meaning                                WAL ``op``
=================  =====================================  ==============
:class:`EdgeAdd`     add/shorten ``tail -> head``         ``edge_add``
:class:`EdgeRemove`  remove ``tail -> head``              ``edge_remove``
:class:`NodeAdd`     add ``node`` with ``label``          ``node_add``
:class:`LabelChange` relabel an existing ``node``         ``label_change``
=================  =====================================  ==============

Records are frozen dataclasses that know how to apply themselves to a
:class:`~repro.graph.digraph.LabeledDiGraph` and how to round-trip
through the WAL's JSON payloads losslessly (str stays str, int stays
int — the same exactness contract the binary ``.ridx`` format keeps for
node ids).  :func:`records_from_updates` normalizes the
``apply_updates(...)`` argument shapes used throughout the serving
layer into a flat record tuple.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.exceptions import WalError
from repro.graph.digraph import LabeledDiGraph

#: Types the WAL's JSON payloads preserve exactly.  Anything else would
#: come back subtly different after a recovery replay, so encoding fails
#: loudly instead (mirrors the diskindex node-id policy).
_EXACT_SCALARS = (str, int)


def _check_exact(value, what: str):
    if isinstance(value, bool) or not isinstance(value, _EXACT_SCALARS):
        raise WalError(
            f"{what} {value!r} ({type(value).__name__}) cannot be "
            "written to a WAL: JSON payloads preserve only str and int "
            "exactly; use an in-memory DeltaLog for exotic ids"
        )
    return value


@dataclass(frozen=True)
class EdgeAdd:
    """Add the directed edge ``tail -> head`` (parallel adds keep the min)."""

    tail: Hashable
    head: Hashable
    weight: float = 1

    op = "edge_add"

    def apply_to(self, graph: LabeledDiGraph) -> None:
        graph.add_edge(self.tail, self.head, self.weight)

    def payload(self) -> dict:
        weight = self.weight
        if not isinstance(weight, (int, float)) or isinstance(weight, bool):
            raise WalError(f"edge weight {weight!r} is not a number")
        return {
            "op": self.op,
            "tail": _check_exact(self.tail, "node id"),
            "head": _check_exact(self.head, "node id"),
            "weight": weight,
        }


@dataclass(frozen=True)
class EdgeRemove:
    """Remove the directed edge ``tail -> head`` (must exist)."""

    tail: Hashable
    head: Hashable

    op = "edge_remove"

    def apply_to(self, graph: LabeledDiGraph) -> None:
        graph.remove_edge(self.tail, self.head)

    def payload(self) -> dict:
        return {
            "op": self.op,
            "tail": _check_exact(self.tail, "node id"),
            "head": _check_exact(self.head, "node id"),
        }


@dataclass(frozen=True)
class NodeAdd:
    """Add ``node`` carrying ``label`` (re-adding the same label is a no-op)."""

    node: Hashable
    label: Hashable

    op = "node_add"

    def apply_to(self, graph: LabeledDiGraph) -> None:
        graph.add_node(self.node, self.label)

    def payload(self) -> dict:
        return {
            "op": self.op,
            "node": _check_exact(self.node, "node id"),
            "label": _check_exact(self.label, "label"),
        }


@dataclass(frozen=True)
class LabelChange:
    """Relabel the existing ``node`` to ``label``."""

    node: Hashable
    label: Hashable

    op = "label_change"

    def apply_to(self, graph: LabeledDiGraph) -> None:
        graph.relabel_node(self.node, self.label)

    def payload(self) -> dict:
        return {
            "op": self.op,
            "node": _check_exact(self.node, "node id"),
            "label": _check_exact(self.label, "label"),
        }


DeltaRecord = EdgeAdd | EdgeRemove | NodeAdd | LabelChange

_DECODERS = {
    EdgeAdd.op: lambda p: EdgeAdd(p["tail"], p["head"], p.get("weight", 1)),
    EdgeRemove.op: lambda p: EdgeRemove(p["tail"], p["head"]),
    NodeAdd.op: lambda p: NodeAdd(p["node"], p["label"]),
    LabelChange.op: lambda p: LabelChange(p["node"], p["label"]),
}


def encode_record(record: DeltaRecord) -> bytes:
    """One record as canonical compact JSON bytes (the WAL payload)."""
    return json.dumps(
        record.payload(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_record(payload: bytes) -> DeltaRecord:
    """Inverse of :func:`encode_record`; :class:`WalError` on garbage.

    Only called on checksum-valid payloads, so a decode failure means
    the record was written by something that is not this codec (or a
    future version) — not a torn tail.
    """
    try:
        fields = json.loads(payload.decode("utf-8"))
        decoder = _DECODERS[fields["op"]]
        return decoder(fields)
    except (ValueError, KeyError, TypeError) as exc:
        raise WalError(
            f"undecodable WAL record payload ({exc}); "
            "the segment was not written by this codec"
        ) from exc


def records_from_updates(
    edges_added: Iterable = (),
    edges_removed: Iterable = (),
    nodes_added: Mapping | None = None,
    labels_changed: Mapping | None = None,
) -> tuple[DeltaRecord, ...]:
    """The serving layer's ``apply_updates`` arguments as flat records.

    Application order matches the historical update semantics: new nodes
    first (so added edges may reference them), then edge additions, edge
    removals, and relabels.  ``edges_added`` takes ``(tail, head)`` or
    ``(tail, head, weight)``; ``edges_removed`` tolerates extra tuple
    elements beyond ``(tail, head)`` (a weight riding along is ignored,
    as it always was).  Malformed shapes raise ``ValueError`` /
    ``IndexError`` / ``TypeError`` for the caller to wrap.
    """
    records: list[DeltaRecord] = []
    for node, label in dict(nodes_added or {}).items():
        records.append(NodeAdd(node, label))
    for edge in tuple(edges_added):
        if len(edge) == 2:
            records.append(EdgeAdd(edge[0], edge[1]))
        elif len(edge) == 3:
            records.append(EdgeAdd(edge[0], edge[1], edge[2]))
        else:
            # Deliberate taxonomy exception: the docstring promises builtin
            # ValueError/IndexError/TypeError for malformed *argument*
            # shapes — the same types the tuple indexing below raises on
            # its own — and the serving layers catch exactly that triple
            # to wrap it as ServiceError/GraphError at their boundary.
            raise ValueError(  # reprolint: disable=RL002
                f"edges_added entries are (tail, head[, weight]), got {edge!r}"
            )
    for edge in tuple(edges_removed):
        records.append(EdgeRemove(edge[0], edge[1]))
    for node, label in dict(labels_changed or {}).items():
        records.append(LabelChange(node, label))
    return tuple(records)
