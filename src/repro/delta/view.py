"""Folding delta overlays into engines — the read side of the overlay.

A delta overlay is readable the moment it is folded onto its base: the
patched graph is derived (base copy + records), and the base backend is
asked for a *refreshed* backend.  For backends with incremental refresh
(the ``full`` closure) this shares every unaffected closure-row array
with the base and recomputes only the rows the changed CSR adjacency
can have moved — the overlay literally patches closure-row lookups at
read time, one shared-arrays engine per fold.  Rebuild-only backends
fall back to a fresh build, and so does any fold containing label
changes (interned ids are label-sorted, so a relabel moves the whole
columnar layout).

Three entry points:

* :func:`fold` — base engine + records (the service's delta path and
  the eager update path both funnel through here, which is what makes
  "delta then read" byte-identical to "eager rebuild" by construction);
* :func:`fold_graph` — base engine + target graph (the shard worker's
  deferred swap: the coordinator ships a subgraph, the worker diffs it
  against what it serves and folds the difference);
* :class:`DeltaView` — a lazy, thread-safe wrapper that folds on first
  read and caches the patched engine.

Layering: this module sits on ``repro.engine`` and below the serving
tier — it must never import ``repro.service`` / ``repro.shard`` /
``repro.cli`` (rule RL001 of ``repro lint``, ``config/layers.toml``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.delta.records import (
    DeltaRecord,
    EdgeAdd,
    EdgeRemove,
    LabelChange,
    NodeAdd,
)
from repro.devtools.lockcheck import make_lock
from repro.engine.core import MatchEngine
from repro.exceptions import DeltaError
from repro.graph.digraph import LabeledDiGraph


def apply_records(
    graph: LabeledDiGraph, records: Iterable[DeltaRecord]
) -> None:
    """Apply ``records`` to ``graph`` in place, in order.

    Structural errors (:class:`~repro.exceptions.GraphError` and
    friends) propagate raw; callers that need transactional behavior
    must apply to a scratch copy or roll back themselves.
    """
    for record in records:
        record.apply_to(graph)


@dataclass(frozen=True)
class FoldResult:
    """One folded overlay: the patched engine plus the refresh telemetry."""

    engine: MatchEngine
    #: Whether the backend refreshed incrementally (sharing base rows).
    incremental: bool
    #: Closure rows recomputed (== num_nodes on a rebuild).
    rows_recomputed: int
    #: Labels whose answers may have changed (``None`` = assume all).
    affected_labels: frozenset | None
    elapsed_seconds: float
    nodes_added: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    labels_changed: int = 0


def _split_records(records: Sequence[DeltaRecord]):
    edges_added: list[tuple] = []
    edges_removed: list[tuple] = []
    nodes_added: dict = {}
    labels_changed: dict = {}
    for record in records:
        if isinstance(record, EdgeAdd):
            edges_added.append((record.tail, record.head, record.weight))
        elif isinstance(record, EdgeRemove):
            edges_removed.append((record.tail, record.head))
        elif isinstance(record, NodeAdd):
            nodes_added[record.node] = record.label
        elif isinstance(record, LabelChange):
            labels_changed[record.node] = record.label
        else:
            raise DeltaError(f"unknown delta record {record!r}")
    return (
        tuple(edges_added),
        tuple(edges_removed),
        nodes_added,
        labels_changed,
    )


def _refreshed_fold(
    base: MatchEngine,
    graph: LabeledDiGraph,
    edges_added: tuple,
    edges_removed: tuple,
    nodes_added: dict,
    labels_changed: dict,
    started: float,
) -> FoldResult:
    """The shared fold core once the patched graph exists."""
    counts = {
        "nodes_added": len(nodes_added),
        "edges_added": len(edges_added),
        "edges_removed": len(edges_removed),
        "labels_changed": len(labels_changed),
    }
    if labels_changed:
        # A relabel moves nodes across the label-sorted interned-id
        # ranges every backend's layout is keyed by; there is no
        # incremental path, and no invalidation signal survives it.
        engine = MatchEngine(graph, base.config)
        return FoldResult(
            engine=engine,
            incremental=False,
            rows_recomputed=graph.num_nodes,
            affected_labels=None,
            elapsed_seconds=time.perf_counter() - started,
            **counts,
        )
    refresh = base.backend.refreshed(
        graph,
        base.config,
        edges_added=edges_added,
        edges_removed=edges_removed,
    )
    engine = MatchEngine(graph, base.config, _backend=refresh.backend)
    affected = refresh.affected_labels
    if affected is not None:
        extra = set()
        # New nodes are new candidates for their labels even when no
        # closure row changed (an isolated node can match a leaf).
        extra.update(nodes_added.values())
        # Direct-child ('/') matches depend on adjacency, which the
        # distance-based refresh signal does not see: an added edge
        # whose endpoints were already at that distance changes
        # is_direct without changing any closure row (and vice versa
        # for removals with an equal-cost detour).  Adjacency only
        # changes at the changed edges' endpoints, so their labels
        # complete the signal.
        for edge in edges_added + edges_removed:
            extra.add(graph.label(edge[0]))
            extra.add(graph.label(edge[1]))
        affected = affected | frozenset(extra)
    return FoldResult(
        engine=engine,
        incremental=refresh.incremental,
        rows_recomputed=refresh.rows_recomputed,
        affected_labels=affected,
        elapsed_seconds=time.perf_counter() - started,
        **counts,
    )


def fold(
    base: MatchEngine,
    records: Sequence[DeltaRecord],
    patched_graph: LabeledDiGraph | None = None,
) -> FoldResult:
    """Fold ``records`` onto ``base``; the base engine is never mutated.

    ``patched_graph`` short-circuits the copy+apply step when the caller
    already maintains a graph with the records applied (the service's
    pending graph); it is adopted as the new engine's graph, so the
    caller must stop mutating it afterwards.
    """
    started = time.perf_counter()
    records = tuple(records)
    edges_added, edges_removed, nodes_added, labels_changed = _split_records(
        records
    )
    if patched_graph is None:
        patched_graph = base.graph.copy()
        apply_records(patched_graph, records)
    return _refreshed_fold(
        base,
        patched_graph,
        edges_added,
        edges_removed,
        nodes_added,
        labels_changed,
        started,
    )


@dataclass(frozen=True)
class GraphDiff:
    """What separates two graphs, in delta-record vocabulary."""

    edges_added: tuple
    edges_removed: tuple
    nodes_added: dict
    nodes_removed: frozenset
    labels_changed: dict

    @property
    def empty(self) -> bool:
        return not (
            self.edges_added
            or self.edges_removed
            or self.nodes_added
            or self.nodes_removed
            or self.labels_changed
        )


def diff_graphs(old: LabeledDiGraph, new: LabeledDiGraph) -> GraphDiff:
    """The delta that turns ``old`` into ``new``.

    Weight changes surface on the ``edges_added`` side (an add of the
    same edge with a new weight), which is exactly what the incremental
    refresh needs: the tail's rows are dirty either way.
    """
    old_nodes = set(old.nodes())
    new_nodes = set(new.nodes())
    nodes_added = {node: new.label(node) for node in new_nodes - old_nodes}
    nodes_removed = frozenset(old_nodes - new_nodes)
    labels_changed = {
        node: new.label(node)
        for node in old_nodes & new_nodes
        if old.label(node) != new.label(node)
    }
    edges_added = tuple(
        (tail, head, weight)
        for tail, head, weight in new.edges()
        if not old.has_edge(tail, head)
        or old.edge_weight(tail, head) != weight
    )
    edges_removed = tuple(
        (tail, head)
        for tail, head, _weight in old.edges()
        if not new.has_edge(tail, head)
    )
    return GraphDiff(
        edges_added=edges_added,
        edges_removed=edges_removed,
        nodes_added=nodes_added,
        nodes_removed=nodes_removed,
        labels_changed=labels_changed,
    )


def fold_graph(base: MatchEngine, new_graph: LabeledDiGraph) -> FoldResult:
    """Fold ``base`` forward to serve exactly ``new_graph``.

    The shard worker's deferred-swap path: the target graph arrives
    whole (a re-planned subgraph), so the fold diffs it against the
    graph currently served and refreshes incrementally when the diff is
    refresh-shaped (no node departures, no relabels — both of which can
    happen when a re-plan moves a label run to another shard, and both
    of which fall back to a rebuild).
    """
    started = time.perf_counter()
    diff = diff_graphs(base.graph, new_graph)
    if diff.empty:
        return FoldResult(
            engine=base,
            incremental=True,
            rows_recomputed=0,
            affected_labels=frozenset(),
            elapsed_seconds=time.perf_counter() - started,
        )
    if diff.nodes_removed or diff.labels_changed:
        engine = MatchEngine(new_graph, base.config)
        return FoldResult(
            engine=engine,
            incremental=False,
            rows_recomputed=new_graph.num_nodes,
            affected_labels=None,
            elapsed_seconds=time.perf_counter() - started,
            nodes_added=len(diff.nodes_added),
            edges_added=len(diff.edges_added),
            edges_removed=len(diff.edges_removed),
            labels_changed=len(diff.labels_changed),
        )
    return _refreshed_fold(
        base,
        new_graph,
        diff.edges_added,
        diff.edges_removed,
        diff.nodes_added,
        diff.labels_changed,
        started,
    )


class DeltaView:
    """Base + overlay, folded lazily on first read (thread-safe).

    Construct with either ``records`` (an overlay to apply) or
    ``graph`` (a target to diff-fold toward) — exactly one.  The fold
    happens at most once; until then the view costs nothing beyond the
    references it holds.
    """

    def __init__(
        self,
        base: MatchEngine,
        records: Sequence[DeltaRecord] | None = None,
        graph: LabeledDiGraph | None = None,
    ) -> None:
        if (records is None) == (graph is None):
            raise DeltaError(
                "pass exactly one of records= or graph= to DeltaView"
            )
        self.base = base
        self.records = None if records is None else tuple(records)
        self.target_graph = graph
        self._lock = make_lock("delta.view")
        self._result: FoldResult | None = None

    @property
    def folded(self) -> bool:
        return self._result is not None

    def result(self) -> FoldResult:
        """Fold (once) and return the :class:`FoldResult`."""
        result = self._result
        if result is None:
            with self._lock:
                result = self._result
                if result is None:
                    if self.records is not None:
                        result = fold(self.base, self.records)
                    else:
                        result = fold_graph(self.base, self.target_graph)
                    self._result = result
        return result

    def engine(self) -> MatchEngine:
        """The patched engine (folding on first call)."""
        return self.result().engine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = (
            f"{len(self.records)} records"
            if self.records is not None
            else "target graph"
        )
        return f"DeltaView({shape}, folded={self.folded})"
