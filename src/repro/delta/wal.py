"""Write-ahead log segments: length-prefixed, checksummed, torn-tail safe.

One segment file holds the delta records accumulated since the last
compaction.  The layout (normative; see DESIGN.md, "Write-ahead delta
overlay") is:

.. code-block:: text

    offset  size  field
    ------  ----  -----------------------------------------------------
         0     4  magic  b"RWAL"
         4     1  format version (currently 1)
         5     3  reserved (zero)
         8     8  generation  (uint64 LE) — the compaction generation
                  these records apply on top of
    ---- then zero or more records, back to back: ----
        +0     4  payload length  (uint32 LE)
        +4     4  CRC32 of the payload  (uint32 LE)
        +8   len  payload — one canonical-JSON delta record
                  (:func:`repro.delta.records.encode_record`)

Appends write the frame then ``flush()`` (``fsync`` opt-in).  A crash
mid-append leaves a *torn tail*: a record whose frame is short or whose
CRC disagrees.  Recovery walks the frames from the front, keeps the
longest valid prefix, and truncates the file back to it — torn tails
are expected damage and never raise.  Damage *before* the tail (bad
magic, an undecodable checksum-valid payload) raises
:class:`~repro.exceptions.WalError`: that file was never a WAL, or was
written by a different codec.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.delta.records import DeltaRecord, decode_record, encode_record
from repro.devtools.lockcheck import make_lock
from repro.exceptions import WalError

WAL_MAGIC = b"RWAL"
_MAGIC = WAL_MAGIC
_VERSION = 1
_HEADER = struct.Struct("<4sB3sQ")  # magic, version, reserved, generation
_FRAME = struct.Struct("<II")  # payload length, payload crc32
HEADER_SIZE = _HEADER.size


def _pack_header(generation: int) -> bytes:
    return _HEADER.pack(_MAGIC, _VERSION, b"\x00\x00\x00", generation)


def fsync_dir(path: str | Path) -> None:
    """fsync the directory ``path`` so a rename inside it is durable.

    ``os.replace`` makes the new name *visible* atomically, but the
    rename itself lives in the directory inode — until that inode is
    flushed, a power loss can roll the directory back to the old entry.
    No-op on platforms without ``O_DIRECTORY`` (the rename is still
    atomic there, just not provably durable), and best-effort on
    filesystems that refuse to fsync directories.
    """
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:  # pragma: no cover - platform-dependent
        return
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY | flag)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystems
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WalScan:
    """What one pass over a segment found."""

    #: Records in the longest valid prefix, in append order.
    records: tuple[DeltaRecord, ...]
    #: Compaction generation stamped in the header.
    generation: int
    #: File offset just past the last valid record.
    good_bytes: int
    #: True when bytes past ``good_bytes`` existed (a torn tail).
    truncated_tail: bool
    #: How many torn bytes followed the valid prefix.
    dropped_bytes: int


def scan_wal(path: str | Path) -> WalScan:
    """Read-only recovery scan of a segment (the file is not modified)."""
    data = Path(path).read_bytes()
    if len(data) < HEADER_SIZE:
        # A header cut short by a crash during creation is a torn tail
        # of an empty segment, not corruption.
        return WalScan((), 0, 0, bool(data), len(data))
    magic, version, _reserved, generation = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise WalError(
            f"{path} is not a WAL segment (bad magic {magic!r})"
        )
    if version != _VERSION:
        raise WalError(
            f"{path} uses WAL format version {version}; "
            f"this reader supports version {_VERSION}"
        )
    records: list[DeltaRecord] = []
    offset = HEADER_SIZE
    good = offset
    total = len(data)
    while True:
        if total - offset < _FRAME.size:
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        records.append(decode_record(payload))
        offset = end
        good = end
    return WalScan(
        records=tuple(records),
        generation=generation,
        good_bytes=good,
        truncated_tail=good < total,
        dropped_bytes=total - good,
    )


class WriteAheadLog:
    """One open, append-only WAL segment.

    Opening an existing file runs recovery: the longest valid prefix is
    kept (exposed as :attr:`recovered_records`) and any torn tail is
    truncated away on disk before the first append.  Opening a missing
    or empty path writes a fresh header.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = False,
        generation: int = 0,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = make_lock("delta.wal")
        self._closed = False
        if self.path.exists() and self.path.stat().st_size > 0:
            scan = scan_wal(self.path)
            self.generation = scan.generation
            self.recovered_records = scan.records
            self.recovered_truncated = scan.truncated_tail
            self.recovered_dropped_bytes = scan.dropped_bytes
            if scan.good_bytes < HEADER_SIZE:
                # The header itself was torn: rewrite a fresh segment.
                self.generation = generation
                self._file = open(self.path, "wb")
                self._file.write(_pack_header(generation))
            else:
                self._file = open(self.path, "r+b")
                self._file.truncate(scan.good_bytes)
                self._file.seek(scan.good_bytes)
            self._size = max(scan.good_bytes, HEADER_SIZE)
        else:
            self.generation = generation
            self.recovered_records = ()
            self.recovered_truncated = False
            self.recovered_dropped_bytes = 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "wb")
            self._file.write(_pack_header(generation))
            self._size = HEADER_SIZE
        self._flush()
        self.appended_records = 0

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def _check_open(self) -> None:
        if self._closed:
            raise WalError(f"WAL {self.path} has been closed")

    def append(self, records: Iterable[DeltaRecord]) -> int:
        """Durably append ``records``; returns bytes written.

        The whole batch is encoded before the first byte hits the file,
        so an encoding error (exotic node ids) leaves the segment
        untouched.
        """
        payloads = [encode_record(record) for record in records]
        frames = b"".join(
            _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
            for payload in payloads
        )
        with self._lock:
            self._check_open()
            self._file.write(frames)
            self._flush()
            self._size += len(frames)
            self.appended_records += len(payloads)
        return len(frames)

    def rewrite(
        self, records: Sequence[DeltaRecord] = (), *, generation: int
    ) -> None:
        """Atomically replace the segment (the compaction truncation).

        A fresh segment is written beside the live one and swapped in
        with ``os.replace`` followed by a parent-directory fsync, so a
        crash at any point leaves either the full old segment or the
        full new one — never a half segment.
        If the swap or the reopen fails, the object stays usable when
        the old segment is still intact, and otherwise closes itself so
        later appends raise :class:`~repro.exceptions.WalError` rather
        than a raw ``ValueError`` on a closed file.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(_pack_header(generation))
            for record in records:
                payload = encode_record(record)
                handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
                handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        with self._lock:
            self._check_open()
            self._file.close()
            try:
                os.replace(tmp, self.path)
                fsync_dir(self.path.parent)
                self._file = open(self.path, "r+b")
            except BaseException:
                # Whichever segment won the race for self.path is a
                # complete one; try to resume on it.  If even the
                # reopen fails, mark the log closed so the failure
                # mode stays typed.
                try:
                    self._file = open(self.path, "r+b")
                except OSError:
                    self._closed = True
                    raise
                header = self._file.read(HEADER_SIZE)
                if len(header) == HEADER_SIZE:
                    self.generation = _HEADER.unpack(header)[3]
                self._file.seek(0, os.SEEK_END)
                self._size = self._file.tell()
                raise
            self._file.seek(0, os.SEEK_END)
            self._size = self._file.tell()
            self.generation = generation

    def size_bytes(self) -> int:
        return self._size

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "size_bytes": self._size,
            "generation": self.generation,
            "appended_records": self.appended_records,
            "recovered_records": len(self.recovered_records),
            "recovered_truncated_tail": self.recovered_truncated,
            "recovered_dropped_bytes": self.recovered_dropped_bytes,
            "fsync": self.fsync,
        }

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({str(self.path)!r}, gen={self.generation}, "
            f"{self._size} bytes)"
        )
