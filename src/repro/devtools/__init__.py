"""Developer tooling: the reprolint contract checker and runtime sanitizers.

``repro.devtools`` sits at the bottom of the layer DAG (next to
``repro.exceptions`` / ``repro.utils``) so that *any* layer may adopt its
runtime instrumentation — :mod:`repro.devtools.lockcheck` hands out the
locks the delta/serving layers guard their state with — without creating
an upward dependency.  The static side, :mod:`repro.devtools.lint`,
never imports the code it checks: it works on source text and the
declarative layer DAG in ``config/layers.toml``.

Nothing is imported eagerly here: ``lockcheck`` must stay cheap to pull
in from hot modules, and ``lint`` drags in the TOML machinery only when
the ``repro lint`` CLI asks for it.
"""
