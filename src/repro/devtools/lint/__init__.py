"""reprolint — the AST-based contract checker for DESIGN.md invariants.

DESIGN.md carries normative contracts (the layer DAG, the exception
taxonomy, the fsync-after-rename durability rule, lock discipline, the
interned-ID boundary).  Each has had a real bug in its class; this
package machine-checks them instead of trusting reviewer memory:

========  ==========================================================
RL001     layering — every ``repro.*`` import must follow the
          declarative DAG in ``config/layers.toml``
RL002     exception taxonomy — ``repro.storage`` / ``repro.delta`` /
          ``repro.io`` never raise bare ``ValueError`` / ``KeyError``
          / ``OSError``
RL003     durability — ``os.replace`` / ``os.rename`` in persistence
          modules is followed by ``fsync_dir(...)`` in the same
          function
RL004     lock discipline — attributes assigned under ``with
          self._lock:`` are not mutated outside it (static half;
          :mod:`repro.devtools.lockcheck` is the runtime half)
RL005     interned-ID boundary — public functions above
          ``repro.compact`` do not traffic in raw interned ids
========  ==========================================================

Inline suppressions use ``# reprolint: disable=RL002`` on the offending
line (or a comment line directly above); a checked-in baseline file can
grandfather findings wholesale (``repro lint --write-baseline``).  The
CLI front-end is ``repro lint`` (exit 0 clean / 1 findings / 2 usage
error); the programmatic surface is :func:`run_lint`.
"""

from repro.devtools.lint.baseline import load_baseline, write_baseline
from repro.devtools.lint.core import (
    Finding,
    LintConfigError,
    LintResult,
    ModuleSource,
    Rule,
    all_rules,
    lint_sources,
    run_lint,
)
from repro.devtools.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintConfigError",
    "LintResult",
    "ModuleSource",
    "Rule",
    "all_rules",
    "lint_sources",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
