"""Baseline files: grandfathered findings, checked in and burned down.

A baseline is a JSON document listing findings by ``(rule, path,
message)`` — line numbers are deliberately excluded so unrelated edits
do not invalidate entries.  Matching is multiset: each entry absorbs
exactly one live finding; entries with nothing left to absorb are
reported as *stale* so the file shrinks as violations are fixed.

Policy note (DESIGN.md): the baseline exists for onboarding a rule onto
a tree with historical findings.  *Deliberate* exceptions belong next to
the code as ``# reprolint: disable=RLnnn`` with a justifying comment —
never in the baseline, where the justification would be invisible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.devtools.lint.core import Finding, LintConfigError

__all__ = ["BASELINE_KIND", "load_baseline", "write_baseline"]

BASELINE_KIND = "reprolint-baseline"


def load_baseline(path: str | Path) -> list[Mapping[str, str]]:
    """Read a baseline document; malformed files are usage errors."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise LintConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("kind") != BASELINE_KIND:
        raise LintConfigError(f"baseline {path} is not a {BASELINE_KIND} document")
    entries = document.get("findings")
    if not isinstance(entries, list):
        raise LintConfigError(f"baseline {path} has no findings list")
    for entry in entries:
        if not isinstance(entry, dict) or not {"rule", "path", "message"} <= set(entry):
            raise LintConfigError(
                f"baseline {path}: entries need rule/path/message keys"
            )
    return entries


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> int:
    """Write the current findings as the new baseline; returns the count."""
    entries = [
        {"rule": f.rule, "path": f.path, "message": f.message}
        for f in sorted(findings, key=lambda f: (f.path, f.rule, f.message))
    ]
    document = {"kind": BASELINE_KIND, "version": 1, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)
