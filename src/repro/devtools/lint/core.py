"""reprolint core: module model, rule registry, suppressions, the driver.

The framework is deliberately self-contained — rules see parsed source
(:class:`ModuleSource`) plus the declarative layer DAG
(:class:`LayerGraph`, from ``config/layers.toml``); they never import
the code under check, so a broken tree can still be linted.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ReproError

__all__ = [
    "Finding",
    "LayerGraph",
    "LintConfigError",
    "LintResult",
    "ModuleSource",
    "Rule",
    "all_rules",
    "lint_sources",
    "register",
    "run_lint",
]

SEVERITIES = ("error", "warning")


class LintConfigError(ReproError):
    """reprolint was misconfigured (bad rule id, unreadable layer DAG,
    malformed baseline) — a *usage* error, exit code 2, never a finding."""


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a source location."""

    rule: str
    severity: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    suppressed: bool = False  # an inline ``# reprolint: disable=`` covers it
    baselined: bool = False  # a baseline entry grandfathers it

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def key(self) -> tuple[str, str, str]:
        """Line-independent identity, used for baseline matching."""
        return (self.rule, self.path, self.message)


_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


class ModuleSource:
    """One parsed python module under check."""

    def __init__(self, path: Path, rel_path: str, module: str, text: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.module = module  # dotted name, e.g. "repro.delta.wal"
        self.text = text
        self.lines = text.splitlines()
        self._tree: ast.Module | None = None
        self._suppressions: dict[int, set[str]] | None = None

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    @property
    def package(self) -> str:
        """The ``repro.<sub>`` package holding this module."""
        parts = self.module.split(".")
        return ".".join(parts[:2]) if len(parts) >= 2 else self.module

    def suppressions_for(self, line: int) -> set[str]:
        """Rule ids disabled at ``line`` (1-based).

        A ``# reprolint: disable=RL002`` trailing comment covers its own
        line; the same comment on a line of its own covers the next
        source line too (for statements that would overflow the line).
        """
        if self._suppressions is None:
            table: dict[int, set[str]] = {}
            for number, text in enumerate(self.lines, start=1):
                found = _SUPPRESS_RE.search(text)
                if not found:
                    continue
                rules = {part.strip() for part in found.group(1).split(",")}
                rules = {part for part in rules if part}
                table.setdefault(number, set()).update(rules)
                if text.lstrip().startswith("#"):  # comment-only line
                    table.setdefault(number + 1, set()).update(rules)
            self._suppressions = table
        return self._suppressions.get(line, set())

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions_for(finding.line)
        return finding.rule in rules or "all" in rules


# ---------------------------------------------------------------------------
# The layer DAG (config/layers.toml)


@dataclass(frozen=True)
class LayerEntry:
    """One node of the layer DAG.

    ``name`` is a dotted module prefix (usually a package, occasionally a
    single module such as ``repro.twig.semantics`` when a package spans
    layers).  ``deps`` are the entries its modules may import (allowance
    is transitive).  ``defers`` are the documented *upward* seams: only
    function-local (deferred) imports may reach them — the idiom
    ``repro.io`` uses to instantiate engines from its format registry.
    ``exact`` restricts matching to the named module itself (used for the
    ``repro`` root package so new top-level modules are not silently
    grandfathered under its broad allowance).
    """

    name: str
    deps: tuple[str, ...] = ()
    defers: tuple[str, ...] = ()
    exact: bool = False

    def matches(self, module: str) -> bool:
        if module == self.name:
            return True
        return (not self.exact) and module.startswith(self.name + ".")


class LayerGraph:
    """The declarative DAG: entry lookup + transitive allowance."""

    def __init__(self, entries: Sequence[LayerEntry]) -> None:
        self.entries = {entry.name: entry for entry in entries}
        if len(self.entries) != len(entries):
            raise LintConfigError("layers.toml lists a package twice")
        for entry in entries:
            for dep in entry.deps + entry.defers:
                if dep not in self.entries:
                    raise LintConfigError(
                        f"layers.toml: {entry.name} depends on undeclared "
                        f"package {dep!r}"
                    )
        self._check_acyclic()
        self._allowed: dict[str, frozenset[str]] = {}

    def _check_acyclic(self) -> None:
        state: dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, stack: tuple[str, ...]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = stack[stack.index(name):] + (name,)
                raise LintConfigError(
                    "layers.toml dependency cycle: " + " -> ".join(cycle)
                )
            state[name] = 0
            for dep in self.entries[name].deps:
                visit(dep, stack + (name,))
            state[name] = 1

        for name in self.entries:
            visit(name, ())

    def entry_for(self, module: str) -> LayerEntry | None:
        """The most specific entry whose prefix covers ``module``."""
        best: LayerEntry | None = None
        for entry in self.entries.values():
            if entry.matches(module):
                if best is None or len(entry.name) > len(best.name):
                    best = entry
        return best

    def allowed(self, name: str) -> frozenset[str]:
        """Transitive dependency closure of entry ``name`` (inclusive)."""
        cached = self._allowed.get(name)
        if cached is None:
            closed: set[str] = set()
            stack = [name]
            while stack:
                node = stack.pop()
                if node in closed:
                    continue
                closed.add(node)
                stack.extend(self.entries[node].deps)
            cached = self._allowed[name] = frozenset(closed)
        return cached


def _parse_toml(text: str) -> dict:
    """Parse ``layers.toml`` — stdlib ``tomllib`` when available (3.11+),
    else a minimal parser for the subset the file uses (array-of-tables
    with string / bool / string-array values)."""
    try:
        import tomllib
    except ModuleNotFoundError:  # python 3.10
        return _parse_toml_subset(text)
    return tomllib.loads(text)


def _parse_toml_subset(text: str) -> dict:
    document: dict = {}
    current: dict = document
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            key = line[2:-2].strip()
            current = {}
            document.setdefault(key, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            key = line[1:-1].strip()
            current = document.setdefault(key, {})
            continue
        if "=" not in line:
            raise LintConfigError(f"layers.toml: cannot parse line {raw!r}")
        key, _, value = line.partition("=")
        current[key.strip()] = _parse_toml_value(value.strip(), raw)
    return document


def _parse_toml_value(value: str, raw: str):
    if value in ("true", "false"):
        return value == "true"
    if value.startswith('"') and value.endswith('"'):
        return value[1:-1]
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        parts = [part.strip() for part in inner.split(",")]
        return [_parse_toml_value(part, raw) for part in parts if part]
    raise LintConfigError(f"layers.toml: cannot parse value in line {raw!r}")


def load_layers(path: Path) -> LayerGraph:
    """Load the layer DAG from ``config/layers.toml``."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintConfigError(f"cannot read layer DAG {path}: {exc}") from exc
    document = _parse_toml(text)
    raw_entries = document.get("package")
    if not raw_entries:
        raise LintConfigError(f"{path} declares no [[package]] entries")
    entries = []
    for raw in raw_entries:
        if "name" not in raw:
            raise LintConfigError(f"{path}: [[package]] entry without a name")
        entries.append(
            LayerEntry(
                name=raw["name"],
                deps=tuple(raw.get("deps", ())),
                defers=tuple(raw.get("defers", ())),
                exact=bool(raw.get("exact", False)),
            )
        )
    return LayerGraph(entries)


# ---------------------------------------------------------------------------
# Rules


class Rule:
    """Base class: subclasses set the class attributes and implement
    :meth:`check` yielding :class:`Finding`\\ s (line/col filled in,
    ``suppressed``/``baselined`` left to the driver)."""

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, module: ModuleSource, layers: LayerGraph) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_class()
    if not rule.rule_id or rule.severity not in SEVERITIES:
        raise LintConfigError(f"malformed rule {rule_class.__name__}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in rule-id order."""
    _load_builtin_rules()
    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


def _load_builtin_rules() -> None:
    # Importing the rules package runs the @register decorators.
    from repro.devtools.lint import rules  # noqa: F401


def select_rules(only: Sequence[str] | None) -> tuple[Rule, ...]:
    rules = all_rules()
    if not only:
        return rules
    by_id = {rule.rule_id: rule for rule in rules}
    chosen = []
    for rule_id in only:
        normalized = rule_id.upper()
        if normalized not in by_id:
            known = ", ".join(sorted(by_id))
            raise LintConfigError(f"unknown rule {rule_id!r} (known: {known})")
        chosen.append(by_id[normalized])
    return tuple(chosen)


# ---------------------------------------------------------------------------
# Driver


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # active
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[Mapping[str, str]] = field(default_factory=list)
    modules_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        by_severity = {"error": 0, "warning": 0}
        for finding in self.findings:
            by_severity[finding.severity] += 1
        return {
            **by_severity,
            "active": len(self.findings),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": len(self.stale_baseline),
            "modules": self.modules_checked,
        }


def module_name_for(path: Path) -> str | None:
    """Derive the dotted module name from a path containing a ``repro``
    component (``.../src/repro/delta/wal.py`` -> ``repro.delta.wal``)."""
    parts = list(path.with_suffix("").parts)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            dotted = parts[index:]
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return None


def iter_module_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise LintConfigError(f"cannot lint {path}: not a python file or directory")


def _check_module(
    module: ModuleSource,
    rules: Sequence[Rule],
    layers: LayerGraph,
    result: LintResult,
) -> None:
    try:
        module.tree
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule="RL000",
                severity="error",
                path=module.rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return
    result.modules_checked += 1
    for rule in rules:
        for finding in rule.check(module, layers):
            if module.is_suppressed(finding):
                result.suppressed.append(replace(finding, suppressed=True))
            else:
                result.findings.append(finding)


def _apply_baseline(result: LintResult, baseline: Sequence[Mapping[str, str]]) -> None:
    """Move findings matched by baseline entries (line numbers ignored,
    multiset semantics) into ``baselined``; record unmatched entries as
    stale so a fixed violation prompts a baseline cleanup."""
    budget: dict[tuple[str, str, str], int] = {}
    for entry in baseline:
        key = (entry["rule"], entry["path"], entry["message"])
        budget[key] = budget.get(key, 0) + 1
    active: list[Finding] = []
    for finding in result.findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            result.baselined.append(replace(finding, baselined=True))
        else:
            active.append(finding)
    result.findings = active
    for (rule, path, message), remaining in sorted(budget.items()):
        for _ in range(remaining):
            result.stale_baseline.append(
                {"rule": rule, "path": path, "message": message}
            )


def run_lint(
    root: Path,
    paths: Sequence[Path] | None = None,
    *,
    rules: Sequence[str] | None = None,
    layers_path: Path | None = None,
    baseline: Sequence[Mapping[str, str]] | None = None,
) -> LintResult:
    """Lint ``paths`` (default: ``<root>/src/repro``) against the layer
    DAG at ``layers_path`` (default: ``<root>/config/layers.toml``)."""
    root = Path(root)
    layers = load_layers(layers_path or root / "config" / "layers.toml")
    chosen = select_rules(rules)
    targets = [Path(p) for p in paths] if paths else [root / "src" / "repro"]
    for target in targets:
        if not target.exists():
            raise LintConfigError(f"cannot lint {target}: no such path")
    result = LintResult(rules_run=tuple(rule.rule_id for rule in chosen))
    for file_path in iter_module_files(targets):
        module_name = module_name_for(file_path)
        if module_name is None:
            continue  # not part of the repro tree (conftest, fixtures, ...)
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        module = ModuleSource(
            file_path, rel, module_name, file_path.read_text(encoding="utf-8")
        )
        _check_module(module, chosen, layers, result)
    if baseline:
        _apply_baseline(result, baseline)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def lint_sources(
    sources: Sequence[tuple[str, str]],
    layers: LayerGraph,
    *,
    rules: Sequence[str] | None = None,
    path_for: Callable[[str], str] | None = None,
) -> LintResult:
    """Lint in-memory ``(module_name, source_text)`` pairs — the unit-test
    surface: fixture files feed through here without needing a fake
    ``src/repro`` tree on disk."""
    chosen = select_rules(rules)
    result = LintResult(rules_run=tuple(rule.rule_id for rule in chosen))
    for module_name, text in sources:
        rel = (
            path_for(module_name)
            if path_for
            else module_name.replace(".", "/") + ".py"
        )
        module = ModuleSource(Path(rel), rel, module_name, text)
        _check_module(module, chosen, layers, result)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def iter_findings(result: LintResult) -> Iterable[Finding]:
    """Active, then baselined, then suppressed — reporting order."""
    yield from result.findings
    yield from result.baselined
    yield from result.suppressed
