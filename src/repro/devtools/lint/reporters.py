"""Finding reporters: human text and machine JSON.

The JSON document is the CI artifact (``repro lint --format json``); its
shape is pinned by ``tests/devtools/test_lint_framework.py``::

    {
      "kind": "reprolint-report",
      "version": 1,
      "rules": ["RL001", ...],
      "findings": [{"rule", "severity", "path", "line", "col",
                    "message", "suppressed", "baselined"}, ...],
      "summary": {"active", "error", "warning", "suppressed",
                  "baselined", "stale_baseline", "modules"}
    }

``findings`` lists active findings first, then baselined, then
suppressed (the latter two flagged, so dashboards can burn them down).
"""

from __future__ import annotations

import json

from repro.devtools.lint.core import LintResult, iter_findings

__all__ = ["render_json", "render_text"]

REPORT_KIND = "reprolint-report"


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.location()}: {finding.rule} [baselined] "
                         f"{finding.message}")
        for finding in result.suppressed:
            lines.append(f"{finding.location()}: {finding.rule} [suppressed] "
                         f"{finding.message}")
    counts = result.counts()
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry['rule']} {entry['path']}: "
            f"{entry['message']} (fixed? remove it or --update-baseline)"
        )
    summary = (
        f"checked {counts['modules']} modules with "
        f"{len(result.rules_run)} rules: "
        f"{counts['error']} errors, {counts['warning']} warnings"
    )
    extras = []
    if counts["suppressed"]:
        extras.append(f"{counts['suppressed']} suppressed inline")
    if counts["baselined"]:
        extras.append(f"{counts['baselined']} baselined")
    if counts["stale_baseline"]:
        extras.append(f"{counts['stale_baseline']} stale baseline entries")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    document = {
        "kind": REPORT_KIND,
        "version": 1,
        "rules": list(result.rules_run),
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "baselined": f.baselined,
            }
            for f in iter_findings(result)
        ],
        "stale_baseline": list(result.stale_baseline),
        "summary": result.counts(),
    }
    return json.dumps(document, indent=2, sort_keys=True)
