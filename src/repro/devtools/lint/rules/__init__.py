"""Built-in reprolint rules.  Importing this package registers them."""

from repro.devtools.lint.rules import (  # noqa: F401
    durability,
    interned,
    layering,
    locks,
    taxonomy,
)
