"""RL003 — fsync-after-rename durability (DESIGN.md swap protocols).

``os.replace`` makes the new name *visible* atomically but not
*durable*: until the containing directory is fsynced, a crash can roll
the rename back — which is precisely how the PR 8 bug class lost
acknowledged WAL generations.  Every rename in a persistence module
must therefore be followed by ``fsync_dir(...)`` on the containing
directory **within the same function** (the swap protocols are written
so the rename and its fsync are adjacent; a helper that renames without
fsyncing pushes the obligation onto every caller, where it gets lost).

The check is syntactic by design: a ``fsync_dir`` call later in the
same function body satisfies it.  A function that deliberately defers
the fsync (e.g. batching several renames) documents that with an inline
suppression at the rename.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import Finding, LayerGraph, ModuleSource, Rule, register

#: Packages whose renames move persistent state into place.
COVERED = ("repro.storage", "repro.delta", "repro.shard", "repro.io", "repro.service")

RENAME_NAMES = {"replace", "rename", "renames"}


def _is_rename(call: ast.Call, os_aliases: set[str]) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in RENAME_NAMES:
        root = func.value
        if isinstance(root, ast.Name) and root.id in os_aliases:
            return True
        # os.path-style chains never rename; anything.replace(...) on a
        # non-os object (str.replace!) must not count.
        return False
    if isinstance(func, ast.Name) and func.id in {"replace", "rename"}:
        # ``from os import replace`` style — flagged only when imported.
        return func.id in os_aliases
    return False


def _is_fsync_dir(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "fsync_dir"
    if isinstance(func, ast.Attribute):
        return func.attr == "fsync_dir"
    return False


@register
class DurabilityRule(Rule):
    rule_id = "RL003"
    name = "fsync-after-rename"
    severity = "error"
    description = (
        "os.replace / os.rename in persistence modules is followed by "
        "fsync_dir(...) in the same function"
    )

    def check(self, module: ModuleSource, layers: LayerGraph) -> Iterator[Finding]:
        if not module.package.startswith(COVERED):
            return
        os_aliases = {"os"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in RENAME_NAMES:
                        os_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "os":
                        os_aliases.add(alias.asname or "os")
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            renames: list[ast.Call] = []
            fsync_lines: list[int] = []
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    if _is_rename(inner, os_aliases):
                        renames.append(inner)
                    elif _is_fsync_dir(inner):
                        fsync_lines.append(inner.lineno)
            for call in renames:
                if not any(line >= call.lineno for line in fsync_lines):
                    yield self.finding(
                        module,
                        call,
                        f"os.{call.func.attr if isinstance(call.func, ast.Attribute) else call.func.id}"  # noqa: E501
                        f" in {node.name}() is not followed by fsync_dir(...) "
                        "on the containing directory; a crash can undo the "
                        "rename (DESIGN.md swap protocols)",
                    )
