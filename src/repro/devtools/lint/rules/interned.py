"""RL005 — the interned-ID boundary (DESIGN.md, normative).

``repro.compact`` interns nodes to dense int32 ids; the contract says
those ids **never escape the closure layer** — every public method
above it speaks external ``NodeId`` objects, with translation at the
method boundary.  The bug class is real: silent node-id coercion once
broke ``Match`` equality after a reload.

Statically, a leak shows up in the *signature*: a public function or
method whose parameters (or return annotation) use the interned-id
vocabulary — ``iid`` / ``iids`` / ``interned_id(s)`` / ``*_iid(s)`` or
an ``int32``-typed annotation.  Private helpers (leading underscore,
or enclosed in a private class) legitimately traffic in interned ids
and are exempt, as are the under-the-boundary layers themselves
(``repro.compact`` and the kernel execution tier, which runs on flat
interned arrays by design).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import Finding, LayerGraph, ModuleSource, Rule, register

#: Layers *under or beside* the boundary: interned ids are their native
#: vocabulary.  Everything else that can reach repro.compact through the
#: DAG is above the boundary and gets checked.
EXEMPT = ("repro.compact", "repro.kernel", "repro.devtools")

INTERNED_NAMES = {"iid", "iids", "interned", "interned_id", "interned_ids"}
INTERNED_SUFFIXES = ("_iid", "_iids")
ANNOTATION_MARKERS = ("int32", "InternedId")


def _is_interned_param(name: str, annotation: ast.expr | None) -> str | None:
    if name in INTERNED_NAMES or name.endswith(INTERNED_SUFFIXES):
        return f"parameter {name!r}"
    if annotation is not None:
        text = ast.dump(annotation)
        for marker in ANNOTATION_MARKERS:
            if marker in text:
                return f"parameter {name!r} annotated with {marker}"
    return None


@register
class InternedBoundaryRule(Rule):
    rule_id = "RL005"
    name = "interned-id-boundary"
    severity = "error"
    description = (
        "public functions above repro.compact do not accept/return raw "
        "interned int32 ids"
    )

    def check(self, module: ModuleSource, layers: LayerGraph) -> Iterator[Finding]:
        entry = layers.entry_for(module.module)
        if entry is None or module.package.startswith(EXEMPT):
            return
        # Only layers that can see repro.compact at all are above the
        # boundary; repro.graph and friends below it cannot leak what
        # they cannot name.
        if "repro.compact" not in layers.allowed(entry.name):
            return
        yield from self._check_body(module, module.tree.body, public=True)

    def _check_body(self, module, statements, public):
        for node in statements:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(
                    module, node.body, public and not node.name.startswith("_")
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_public = public and not node.name.startswith("_")
                if is_public:
                    yield from self._check_signature(module, node)
                # Nested defs are never public API; stop descending.

    def _check_signature(self, module, node):
        args = node.args
        every = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        for arg in every:
            if arg.arg in ("self", "cls"):
                continue
            what = _is_interned_param(arg.arg, arg.annotation)
            if what:
                yield self.finding(
                    module,
                    node,
                    f"public function {node.name}() leaks the interned-id "
                    f"vocabulary across the boundary ({what}); translate to "
                    "NodeId at the method boundary (DESIGN.md, interned-ID "
                    "boundary contract)",
                )
        if node.returns is not None:
            text = ast.dump(node.returns)
            for marker in ANNOTATION_MARKERS:
                if marker in text:
                    yield self.finding(
                        module,
                        node,
                        f"public function {node.name}() returns {marker}-typed "
                        "interned ids; decode to NodeId before returning "
                        "(DESIGN.md, interned-ID boundary contract)",
                    )
                    break
