"""RL001 — the layer DAG (DESIGN.md, "The interned-ID boundary contract").

One declarative DAG in ``config/layers.toml`` replaces the four
per-package ruff TID251 gates and covers *every* ``repro.*`` package: a
module may import its own entry, anything below it in the DAG
(transitively), and — **only from function scope** — the entries its
layer declares as ``defers`` (the documented upward seams, e.g.
``repro.io`` instantiating engines from its format registry).

A module not covered by any entry is itself a finding: new packages
must take a position in the DAG before they can land.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import (
    Finding,
    LayerGraph,
    ModuleSource,
    Rule,
    register,
)


def iter_imports(tree: ast.Module, module: str):
    """Yield ``(node, target_module, deferred)`` for every repro import.

    ``deferred`` is True for imports nested inside a function body —
    executed on call, not at module import time.  Relative imports are
    resolved against the importing module's package.
    """
    parts = module.split(".")

    def walk(node: ast.AST, deferred: bool):
        for child in ast.iter_child_nodes(node):
            child_deferred = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            if isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.name == "repro" or alias.name.startswith("repro."):
                        yield child, alias.name, deferred
            elif isinstance(child, ast.ImportFrom):
                target = child.module
                if child.level:
                    # ``from .wal import x`` inside repro.delta.log:
                    # level strips that many trailing components off the
                    # importing module's dotted name.
                    base = parts[: len(parts) - child.level]
                    target = ".".join(base + ([target] if target else []))
                if target and (target == "repro" or target.startswith("repro.")):
                    yield child, target, deferred
            else:
                yield from walk(child, child_deferred)

    yield from walk(tree, False)


@register
class LayeringRule(Rule):
    rule_id = "RL001"
    name = "layering"
    severity = "error"
    description = (
        "every repro.* import follows the declarative layer DAG in "
        "config/layers.toml"
    )

    def check(self, module: ModuleSource, layers: LayerGraph) -> Iterator[Finding]:
        entry = layers.entry_for(module.module)
        if entry is None:
            yield Finding(
                rule=self.rule_id,
                severity=self.severity,
                path=module.rel_path,
                line=1,
                col=1,
                message=(
                    f"module {module.module} is not covered by any "
                    "[[package]] entry in config/layers.toml; give it a "
                    "position in the layer DAG"
                ),
            )
            return
        allowed = layers.allowed(entry.name)
        for node, target, deferred in iter_imports(module.tree, module.module):
            target_entry = layers.entry_for(target)
            if target_entry is None:
                yield self.finding(
                    module,
                    node,
                    f"import of {target} which no layers.toml entry covers",
                )
                continue
            if target_entry.name == entry.name:
                continue
            if target.startswith(entry.name + "."):
                # A package importing its own higher-layered submodule
                # (repro.core -> repro.core.api) is the submodule's
                # problem, not the package's.
                continue
            if target_entry.name in allowed:
                continue
            if target_entry.name in entry.defers:
                if deferred:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{entry.name} may reach {target_entry.name} only via a "
                    f"deferred (function-local) import, but {target} is "
                    "imported at module scope",
                )
                continue
            yield self.finding(
                module,
                node,
                f"{entry.name} does not depend on {target_entry.name} in the "
                f"layer DAG, so {module.module} may not import {target}",
            )
