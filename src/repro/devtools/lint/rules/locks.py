"""RL004 — static lock discipline (runtime half: ``repro.devtools.lockcheck``).

If a class protects an attribute with ``with self._lock:`` *somewhere*,
every rebind of that attribute is a critical section: an unguarded
assignment elsewhere in the class is either a race or (when the caller
provably holds the lock, or the value is immutable-by-convention) a
fact worth stating next to the code with a suppression comment.

Scope and deliberate limits:

* only attribute **rebinds** (``self.x = ...``, ``self.x += ...``) are
  tracked — in-place mutation through method calls is out of static
  reach and belongs to the runtime sanitizer and the stress tests;
* ``__init__`` is exempt: construction happens before the object is
  shared between threads (the idiom every guarded class here uses);
* guarding is matched per lock *attribute name* (``self._lock`` vs
  ``self._stats_lock``), so a class with several locks is checked per
  domain.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import Finding, LayerGraph, ModuleSource, Rule, register


def _lock_name(expr: ast.expr) -> str | None:
    """``self.<attr>`` where ``<attr>`` smells like a lock, else None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    ):
        return expr.attr
    return None


def _self_attr_targets(node: ast.stmt) -> list[tuple[str, ast.AST]]:
    """Attributes of ``self`` rebound by an assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node, ast.AnnAssign) and node.value is None:
            return []
        targets = [node.target]
    found = []
    for target in targets:
        for expr in ast.walk(target):  # tuple unpacking reaches nested names
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                found.append((expr.attr, node))
    return found


class _ClassScan(ast.NodeVisitor):
    """Collect every ``self.<attr>`` rebind with the set of ``self.*``
    locks held (syntactically) at that point, per method."""

    def __init__(self) -> None:
        self.assignments: list[tuple[str, ast.AST, frozenset[str], str]] = []
        self._method = ""
        self._held: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._method:
            return  # nested defs run later, under unknowable locks — skip
        self._method = node.name
        for child in node.body:
            self.visit(child)
        self._method = ""

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # nested classes are scanned on their own



    def visit_With(self, node: ast.With) -> None:
        names = [
            name
            for item in node.items
            if (name := _lock_name(item.context_expr)) is not None
        ]
        self._held.extend(names)
        for child in node.body:
            self.visit(child)
        del self._held[len(self._held) - len(names):]

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt):
            for attr, stmt in _self_attr_targets(node):
                self.assignments.append(
                    (attr, stmt, frozenset(self._held), self._method)
                )
        super().generic_visit(node)


@register
class LockDisciplineRule(Rule):
    rule_id = "RL004"
    name = "lock-discipline"
    severity = "warning"
    description = (
        "attributes assigned under `with self.<lock>:` are not rebound "
        "outside it (outside __init__)"
    )

    def check(self, module: ModuleSource, layers: LayerGraph) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            scan = _ClassScan()
            for child in node.body:
                scan.visit(child)
            guarded: dict[str, set[str]] = {}  # attr -> lock names guarding it
            for attr, _stmt, held, _method in scan.assignments:
                if held:
                    guarded.setdefault(attr, set()).update(held)
            for attr, stmt, held, method in scan.assignments:
                locks = guarded.get(attr)
                if not locks or method == "__init__":
                    continue
                if held & locks:
                    continue
                lock_list = " / ".join(f"self.{name}" for name in sorted(locks))
                yield self.finding(
                    module,
                    stmt,
                    f"{node.name}.{attr} is assigned under {lock_list} "
                    f"elsewhere but rebound without it in {method}(); "
                    "either take the lock or state why it is safe with a "
                    "reprolint suppression",
                )
