"""RL002 — the exception taxonomy (DESIGN.md; ``repro.exceptions``).

The persistence layers promise *typed* failures: corrupted index files
raise ``IndexFormatError``, unusable WAL segments raise ``WalError``,
service misuse raises the ``ServiceError`` family — never a bare
``ValueError``/``KeyError``/``OSError`` a caller cannot distinguish from
a genuine bug.  PR 8 fixed exactly this class (``WriteAheadLog.rewrite``
leaking a raw ``ValueError`` on a closed segment); this rule keeps the
class extinct in ``repro.storage``, ``repro.delta`` and ``repro.io``.

Only ``raise`` statements whose exception is literally one of the
builtin types are flagged; re-raises (``raise``) and raises of taxonomy
types are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import Finding, LayerGraph, ModuleSource, Rule, register

#: Packages under the taxonomy contract, with the types it mandates.
COVERED = {
    "repro.storage": "IndexFormatError / StorageError",
    "repro.delta": "DeltaError / WalError",
    "repro.io": "IndexFormatError / GraphError / QueryError",
}

BANNED = ("ValueError", "KeyError", "OSError", "IOError")


@register
class TaxonomyRule(Rule):
    rule_id = "RL002"
    name = "exception-taxonomy"
    severity = "error"
    description = (
        "repro.storage / repro.delta / repro.io raise taxonomy exceptions, "
        "never bare ValueError / KeyError / OSError"
    )

    def check(self, module: ModuleSource, layers: LayerGraph) -> Iterator[Finding]:
        mandated = COVERED.get(module.package)
        if mandated is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BANNED:
                yield self.finding(
                    module,
                    node,
                    f"{module.package} raises bare {name}; the exception "
                    f"taxonomy mandates {mandated} here (repro.exceptions, "
                    "DESIGN.md)",
                )
