"""Runtime lock-order sanitizer (the dynamic half of rule RL004).

Deadlocks need two locks taken in opposite orders by two threads — a
schedule a stress test may never hit.  The sanitizer makes the *order*
itself the invariant: every :class:`CheckedLock` acquisition records the
edge ``held -> acquiring`` in one process-global order graph, and an
acquisition that would create a cycle (lock ``B`` acquired while ``A``
is held after some thread acquired ``A`` while ``B`` was held) raises
:class:`LockOrderError` immediately — on the *first* inverted schedule,
whether or not the threads actually interleave into a deadlock.

Activation is environment-driven so production code pays nothing:
modules create their locks through :func:`make_lock`, which returns a
plain ``threading.Lock`` unless ``REPRO_LOCKCHECK=1`` was set when the
lock was created.  The service stress tests and the differential fuzz
suite run under the flag in CI.

Ordering is tracked per lock *name*, not per instance: every
``_ShardGroup.lock`` shares one node in the order graph, so an inversion
between two instances of the same lock class is still caught.  A thread
re-entering a name it already holds records no edge (re-entrant
wrappers would self-cycle otherwise).
"""

from __future__ import annotations

import os
import threading
from typing import Any

from repro.exceptions import ReproError

__all__ = [
    "CheckedLock",
    "LockOrderError",
    "enabled",
    "held_locks",
    "make_lock",
    "order_edges",
    "reset",
]


class LockOrderError(ReproError):
    """Two locks were acquired in opposite orders by (possibly) two
    threads — a latent deadlock, reported at the second acquisition site."""


# One process-global order graph.  ``_edges[a]`` holds every lock name
# acquired while ``a`` was held, with the thread/site that first recorded
# the edge so the diagnostic can name both sides of the inversion.
_graph_lock = threading.Lock()
_edges: dict[str, dict[str, str]] = {}
_held = threading.local()


def enabled() -> bool:
    """True when ``REPRO_LOCKCHECK=1`` is set in the environment."""
    return os.environ.get("REPRO_LOCKCHECK", "") == "1"


def make_lock(name: str) -> Any:
    """A lock for ``name``: checked under ``REPRO_LOCKCHECK=1``, plain otherwise.

    The decision is taken at *creation* time — long-lived services built
    before the flag flips keep the locks they were built with.
    """
    if enabled():
        return CheckedLock(name)
    return threading.Lock()


def reset() -> None:
    """Forget every recorded ordering edge (test isolation)."""
    with _graph_lock:
        _edges.clear()


def order_edges() -> dict[str, tuple[str, ...]]:
    """Snapshot of the recorded order graph, for assertions and debugging."""
    with _graph_lock:
        return {a: tuple(sorted(bs)) for a, bs in _edges.items()}


def held_locks() -> tuple[str, ...]:
    """Names of the checked locks the calling thread currently holds."""
    return tuple(getattr(_held, "stack", ()))


def _reaches(start: str, goal: str) -> bool:
    """Is there a path ``start -> ... -> goal`` in the order graph?

    Caller holds ``_graph_lock``.  The graph is tiny (one node per lock
    *name* in the process), so an iterative DFS is plenty.
    """
    stack, seen = [start], {start}
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        for nxt in _edges.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False


class CheckedLock:
    """A ``threading.Lock`` wrapper that validates global acquisition order.

    Supports the full lock protocol (``acquire``/``release``/context
    manager) so it can stand in for the plain lock anywhere
    :func:`make_lock` is used.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = threading.Lock()

    def _record(self) -> None:
        stack: list[str] = getattr(_held, "stack", None) or []
        if self.name in stack:
            # Re-entry on the same name: no self-edges.  (The inner lock
            # is not re-entrant — a true same-*instance* re-acquire will
            # deadlock exactly like the plain lock would; same-name
            # different-instance holds are legitimate.)
            return
        thread = threading.current_thread().name
        with _graph_lock:
            for held_name in stack:
                # Would the new edge held_name -> self.name close a cycle?
                if _reaches(self.name, held_name):
                    first = _edges[self.name].get(held_name) or next(
                        iter(_edges[self.name].values())
                    )
                    raise LockOrderError(
                        f"lock order inversion: thread {thread!r} acquires "
                        f"{self.name!r} while holding {held_name!r}, but the "
                        f"opposite order was recorded earlier ({first}); "
                        "a schedule interleaving the two deadlocks"
                    )
                _edges.setdefault(held_name, {}).setdefault(
                    self.name, f"{held_name!r} -> {self.name!r} in thread {thread!r}"
                )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._record()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack = getattr(_held, "stack", None)
            if stack is None:
                stack = _held.stack = []
            stack.append(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        stack: list[str] = getattr(_held, "stack", None) or []
        # Remove the most recent hold of this name (release order may
        # legally differ from acquisition order).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == self.name:
                del stack[index]
                break

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CheckedLock({self.name!r}, locked={self._inner.locked()})"
