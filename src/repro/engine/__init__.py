"""Pluggable-backend match engine: planning, streaming, persistence.

This package is the primary public API of the reproduction.  See
:class:`MatchEngine` for the tour; :mod:`repro.engine.backends` for the
five reachability backends; :mod:`repro.engine.planner` for the
``algorithm="auto"`` rules; :mod:`repro.engine.stream` for lazy result
consumption.  The older :class:`repro.TreeMatcher` facade is a deprecated
shim over this engine.
"""

from repro.engine.backends import (
    BackendRefresh,
    ConstrainedBackend,
    FullClosureBackend,
    HybridBackend,
    OnDemandBackend,
    PLLBackend,
    ReachabilityBackend,
    build_backend,
    restore_backend,
)
from repro.engine.config import (
    ALGORITHMS,
    BACKENDS,
    ENGINE_ALGORITHMS,
    EngineBuilder,
    EngineConfig,
)
from repro.engine.core import INDEX_FORMAT_VERSION, MatchEngine, PreparedQuery
from repro.engine.planner import (
    CYCLIC_ALGORITHMS,
    Planner,
    QueryPlan,
    choose_backend,
    config_fingerprint,
)
from repro.engine.stream import ResultStream

__all__ = [
    "MatchEngine",
    "PreparedQuery",
    "EngineConfig",
    "EngineBuilder",
    "QueryPlan",
    "Planner",
    "ResultStream",
    "ReachabilityBackend",
    "BackendRefresh",
    "config_fingerprint",
    "FullClosureBackend",
    "OnDemandBackend",
    "HybridBackend",
    "PLLBackend",
    "ConstrainedBackend",
    "build_backend",
    "restore_backend",
    "choose_backend",
    "BACKENDS",
    "ALGORITHMS",
    "ENGINE_ALGORITHMS",
    "CYCLIC_ALGORITHMS",
    "INDEX_FORMAT_VERSION",
]
