"""Reachability backends — one protocol over all closure machineries.

The paper's index choices (Sections 3.1, 4.1, 5 "Managing Closure Size")
all answer the same store interface the enumerators consume; this module
wraps each of them as a :class:`ReachabilityBackend` the engine can
select, describe, and persist:

``full``
    Eager transitive closure laid out in the block store — the paper's
    default offline pre-computation (fastest queries, largest index).
``ondemand``
    No materialized closure: backward searches assemble exactly the
    needed groups per query; a 2-hop index answers point distances.
``hybrid``
    Hot label pairs materialized, cold pairs assembled on demand
    (Section 5's hot-list proposal).
``pll``
    Like ``ondemand``, but the pruned-landmark 2-hop index is built
    explicitly up front and is the index persistence saves/loads.
``constrained``
    Closure restricted to the sources a declared query workload can
    touch — supports exactly those queries, often far cheaper offline.

Each backend exposes the store the enumerators use, its offline build
time, size statistics, and a JSON payload that lets
``MatchEngine.save_index``/``load`` skip the offline computation next time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.closure.constrained import constrained_closure, tail_labels_of_queries
from repro.closure.hybrid import HybridStore
from repro.closure.ondemand import OnDemandStore
from repro.closure.pll import PrunedLandmarkIndex
from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.engine.config import BACKENDS, EngineConfig
from repro.query.compiler import workload_matcher
from repro.exceptions import EngineError
from repro.graph.digraph import LabeledDiGraph


@dataclass(frozen=True)
class BackendRefresh:
    """Outcome of :meth:`ReachabilityBackend.refreshed`.

    ``incremental`` says whether the backend reused its offline artifacts
    (only rows touched by the update recomputed) or rebuilt from scratch.
    ``affected_labels`` is the selective cache-invalidation signal: the
    labels of every node involved in a reachability pair whose distance
    changed.  ``None`` means "unknown — assume everything changed" (the
    rebuild path), telling the serving layer to flush its result cache.
    """

    backend: "ReachabilityBackend"
    incremental: bool
    rows_recomputed: int
    affected_labels: frozenset | None


@runtime_checkable
class ReachabilityBackend(Protocol):
    """What the engine needs from a closure backend."""

    name: str
    build_seconds: float
    #: Whether :meth:`refreshed` can reuse this backend's offline
    #: artifacts after a graph update instead of rebuilding them.
    supports_incremental_refresh: bool

    @property
    def store(self):
        """The store object the enumerators consume."""
        ...

    def statistics(self) -> dict:
        """Size/cost statistics of the offline artifacts."""
        ...

    def describe(self) -> str:
        """One-line human description (used by ``explain`` and the CLI)."""
        ...

    def payload(self) -> dict:
        """JSON-ready offline artifacts for index persistence."""
        ...

    def refreshed(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        *,
        edges_added: tuple = (),
        edges_removed: tuple = (),
    ) -> BackendRefresh:
        """A backend of the same kind over the updated ``graph``."""
        ...


class _BackendBase:
    """Shared plumbing: timing and the common attribute surface."""

    name = "?"
    #: Default refresh contract: rebuild from scratch.  Backends whose
    #: offline artifacts survive an edge update (today: ``full``, whose
    #: closure rows can be selectively recomputed) override this.
    supports_incremental_refresh = False

    def __init__(self) -> None:
        self.build_seconds = 0.0
        self._store = None

    def refreshed(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        *,
        edges_added: tuple = (),
        edges_removed: tuple = (),
    ) -> BackendRefresh:
        """Rebuild this backend kind over the updated ``graph``.

        The base implementation pays the full offline cost again (2-hop
        labels and partial closures are whole-graph artifacts with no
        cheap delta); it reports ``affected_labels=None`` so callers
        invalidate every cached result.
        """
        return BackendRefresh(
            backend=build_backend(graph, config, self.name),
            incremental=False,
            rows_recomputed=graph.num_nodes,
            affected_labels=None,
        )

    @property
    def store(self):
        return self._store

    @property
    def closure(self) -> TransitiveClosure | None:
        """The materialized closure, when this backend keeps one."""
        return None

    @property
    def distance_index(self) -> PrunedLandmarkIndex | None:
        """The 2-hop index, when this backend keeps one."""
        return None

    def statistics(self) -> dict:
        return {"backend": self.name, "build_seconds": self.build_seconds}

    def stats(self) -> dict:
        """Uniform offline-artifact statistics, identical keys everywhere.

        Every backend reports ``backend``, ``build_seconds``,
        ``pair_count`` (materialized reachability pairs or label entries)
        and ``bytes_estimate`` (measured resident bytes of the offline
        artifacts) — the schema the bench suite and the serving layer
        consume without per-backend special cases.
        """
        store_stats = self._store.stats() if self._store is not None else {}
        return {
            "backend": self.name,
            "build_seconds": self.build_seconds,
            "pair_count": store_stats.get("pair_count", 0),
            "bytes_estimate": store_stats.get("bytes_estimate", 0),
        }


class FullClosureBackend(_BackendBase):
    """Eager transitive closure + block store (the paper's default)."""

    name = "full"
    supports_incremental_refresh = True

    def refreshed(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        *,
        edges_added: tuple = (),
        edges_removed: tuple = (),
    ) -> BackendRefresh:
        """Incremental refresh: recompute only the affected closure rows.

        A source row changes only if it can reach the tail of a changed
        edge, so :meth:`TransitiveClosure.refreshed` carries every other
        row over verbatim and reports exactly which labels saw a distance
        change — the selective result-cache invalidation signal.
        """
        changed_tails = {
            edge[0] for edge in tuple(edges_added) + tuple(edges_removed)
        }
        closure, rows, affected = self._closure.refreshed(graph, changed_tails)
        return BackendRefresh(
            backend=FullClosureBackend(graph, config, closure=closure),
            incremental=True,
            rows_recomputed=rows,
            affected_labels=affected,
        )

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        closure: TransitiveClosure | None = None,
        store: ClosureStore | None = None,
    ) -> None:
        super().__init__()
        started = time.perf_counter()
        self._closure = closure if closure is not None else TransitiveClosure(graph)
        if store is not None:
            # Adopted pre-laid-out tables (the binary mmap restore path):
            # no closure recompute, no block layout work.
            self._store = store
        else:
            self._store = ClosureStore(
                graph, self._closure, block_size=config.block_size
            )
        self.build_seconds = time.perf_counter() - started

    @property
    def closure(self) -> TransitiveClosure:
        return self._closure

    def statistics(self) -> dict:
        stats = super().statistics()
        stats["closure_pairs"] = self._closure.num_pairs
        stats.update(self._store.size_statistics())
        return stats

    def stats(self) -> dict:
        stats = super().stats()
        closure_stats = self._closure.stats()
        stats["pair_count"] = closure_stats["pair_count"]
        stats["bytes_estimate"] += closure_stats["bytes_estimate"]
        return stats

    def describe(self) -> str:
        return (
            f"full transitive closure ({self._closure.num_pairs} pairs, "
            f"block size {self._store.directory.block_size})"
        )

    def payload(self) -> dict:
        from repro.io import closure_to_dict

        return {"closure": closure_to_dict(self._closure)}


class OnDemandBackend(_BackendBase):
    """No materialized closure; groups assembled per query."""

    name = "ondemand"

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        distance_index: PrunedLandmarkIndex | None = None,
    ) -> None:
        super().__init__()
        started = time.perf_counter()
        self._store = OnDemandStore(
            graph, block_size=config.block_size, distance_index=distance_index
        )
        self.build_seconds = time.perf_counter() - started

    @property
    def distance_index(self) -> PrunedLandmarkIndex:
        return self._store.distance_index

    def statistics(self) -> dict:
        stats = super().statistics()
        stats.update(self._store.cache_statistics())
        return stats

    def describe(self) -> str:
        return (
            "on-demand closure assembly "
            f"(2-hop index: {self._store.distance_index.index_size()} labels)"
        )

    def payload(self) -> dict:
        from repro.io import pll_to_dict

        return {"pll": pll_to_dict(self._store.distance_index)}


class HybridBackend(_BackendBase):
    """Hot label pairs materialized, cold pairs on demand (Section 5)."""

    name = "hybrid"

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        closure: TransitiveClosure | None = None,
        distance_index: PrunedLandmarkIndex | None = None,
        materialized: ClosureStore | None = None,
        hot_pairs: frozenset | None = None,
    ) -> None:
        super().__init__()
        started = time.perf_counter()
        self._store = HybridStore(
            graph,
            hot_fraction=config.hot_fraction,
            block_size=config.block_size,
            closure=closure,
            distance_index=distance_index,
            materialized=materialized,
            hot_pairs=hot_pairs,
        )
        self.build_seconds = time.perf_counter() - started

    @property
    def closure(self) -> TransitiveClosure:
        return self._store.closure

    @property
    def distance_index(self) -> PrunedLandmarkIndex:
        return self._store.distance_index

    def statistics(self) -> dict:
        stats = super().statistics()
        stats.update(self._store.storage_statistics())
        return stats

    def describe(self) -> str:
        storage = self._store.storage_statistics()
        return (
            f"hybrid hot/cold closure ({storage['hot_pairs']}/"
            f"{storage['total_pairs']} label pairs materialized, "
            f"{storage['hot_storage_fraction']:.0%} of entries)"
        )

    def payload(self) -> dict:
        from repro.io import closure_to_dict, pll_to_dict

        return {
            "closure": closure_to_dict(self._store.closure),
            "pll": pll_to_dict(self._store.distance_index),
        }


class PLLBackend(OnDemandBackend):
    """2-hop labels as the primary persisted index (Section 5, [1, 8, 26])."""

    name = "pll"

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        distance_index: PrunedLandmarkIndex | None = None,
    ) -> None:
        started = time.perf_counter()
        if distance_index is None:
            distance_index = PrunedLandmarkIndex(graph)
        super().__init__(graph, config, distance_index=distance_index)
        self.build_seconds = time.perf_counter() - started

    def describe(self) -> str:
        return (
            "pruned landmark labeling "
            f"({self._store.distance_index.index_size()} 2-hop labels; "
            "groups assembled on demand)"
        )


class ConstrainedBackend(_BackendBase):
    """Closure restricted to the declared workload's tail labels."""

    name = "constrained"

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        closure: TransitiveClosure | None = None,
        store: ClosureStore | None = None,
    ) -> None:
        super().__init__()
        if not config.workload:
            raise EngineError(
                "constrained backend needs a declared workload of query trees"
            )
        started = time.perf_counter()
        # Compiled containment workloads carry ContainsLabel labels the
        # equality matcher cannot expand; upgrade when needed so the
        # index pre-computes the right closure sources.
        matcher = workload_matcher(config.workload, config.label_matcher)
        if closure is None:
            closure = constrained_closure(
                graph, config.workload, matcher=matcher
            )
        self._closure = closure
        if store is not None:
            self._store = store
        else:
            self._store = ClosureStore(
                graph, closure, block_size=config.block_size
            )
        self.workload = tuple(config.workload)
        self.tail_labels = tail_labels_of_queries(self.workload)
        # Data labels whose nodes are closure sources — the coverage the
        # engine checks queries against.  None = unrestricted (the
        # workload had non-leaf wildcards, so the full closure was built).
        if self.tail_labels is None:
            self.covered_labels: frozenset | None = None
        else:
            alphabet = graph.labels()
            covered: set = set()
            unrestricted = False
            for label in self.tail_labels:
                data_labels = matcher.data_labels_for(label, alphabet)
                if data_labels is None:
                    unrestricted = True
                    break
                covered.update(data_labels)
            self.covered_labels = None if unrestricted else frozenset(covered)
        self.build_seconds = time.perf_counter() - started

    def supports(self, query, matcher) -> bool:
        """True when this index covers every non-leaf label of ``query``.

        The constrained closure only has rows whose sources carry a
        covered label; a query needing other tails would silently get
        partial (wrong) answers, so the engine rejects it up front.
        """
        if self.covered_labels is None:
            return True
        alphabet = self._store.graph.labels()
        for u in query.nodes():
            if query.is_leaf(u):
                continue
            data_labels = matcher.data_labels_for(query.label(u), alphabet)
            if data_labels is None:
                return False
            if not set(data_labels) <= self.covered_labels:
                return False
        return True

    @property
    def closure(self) -> TransitiveClosure:
        return self._closure

    def statistics(self) -> dict:
        stats = super().statistics()
        stats["closure_pairs"] = self._closure.num_pairs
        stats["partial"] = self._closure.is_partial
        stats.update(self._store.size_statistics())
        return stats

    def stats(self) -> dict:
        stats = super().stats()
        closure_stats = self._closure.stats()
        stats["pair_count"] = closure_stats["pair_count"]
        stats["bytes_estimate"] += closure_stats["bytes_estimate"]
        return stats

    def describe(self) -> str:
        scope = (
            "all labels (workload has non-leaf wildcards)"
            if self.tail_labels is None
            else f"{len(self.tail_labels)} tail label(s)"
        )
        return (
            f"workload-constrained closure ({self._closure.num_pairs} pairs, "
            f"sources limited to {scope})"
        )

    def payload(self) -> dict:
        from repro.io import closure_to_dict, query_tree_to_dict

        return {
            "closure": closure_to_dict(self._closure),
            "workload": [query_tree_to_dict(q) for q in self.workload],
        }


_BUILDERS = {
    "full": FullClosureBackend,
    "ondemand": OnDemandBackend,
    "hybrid": HybridBackend,
    "pll": PLLBackend,
    "constrained": ConstrainedBackend,
}


def build_backend(
    graph: LabeledDiGraph, config: EngineConfig, name: str
) -> ReachabilityBackend:
    """Construct the named backend for ``graph`` (pays the offline cost)."""
    if name not in _BUILDERS:
        raise EngineError(f"unknown backend {name!r}; choose from {BACKENDS}")
    return _BUILDERS[name](graph, config)


def restore_backend(
    graph: LabeledDiGraph, config: EngineConfig, name: str, payload: dict
) -> ReachabilityBackend:
    """Rebuild the named backend from a persisted payload.

    The expensive offline artifacts (closure distance rows, 2-hop labels)
    come from the payload, so no shortest-path computation runs; only the
    linear block layout is redone.
    """
    from repro.io import closure_from_dict, pll_from_dict, query_tree_from_dict

    if name == "full":
        closure = closure_from_dict(graph, payload["closure"])
        return FullClosureBackend(graph, config, closure=closure)
    if name == "ondemand":
        index = pll_from_dict(graph, payload["pll"])
        return OnDemandBackend(graph, config, distance_index=index)
    if name == "hybrid":
        closure = closure_from_dict(graph, payload["closure"])
        index = pll_from_dict(graph, payload["pll"])
        return HybridBackend(graph, config, closure=closure, distance_index=index)
    if name == "pll":
        index = pll_from_dict(graph, payload["pll"])
        return PLLBackend(graph, config, distance_index=index)
    if name == "constrained":
        closure = closure_from_dict(graph, payload["closure"])
        workload = tuple(
            query_tree_from_dict(q) for q in payload.get("workload", [])
        )
        if workload:
            config = config.replace(workload=workload)
        return ConstrainedBackend(graph, config, closure=closure)
    raise EngineError(f"unknown backend {name!r} in persisted index")


def restore_backend_from_disk(
    graph: LabeledDiGraph, config: EngineConfig, name: str, artifacts
) -> ReachabilityBackend:
    """Rebuild the named backend from binary-index artifacts.

    ``artifacts`` is a :class:`repro.storage.diskindex.DiskArtifacts`:
    the closure rows and pair tables are zero-copy views over the mmap,
    so — unlike :func:`restore_backend` — not even the block layout is
    redone; cold start is O(directory), and closure blocks page in on
    first touch.
    """
    from repro.io import query_tree_from_dict

    def adopted_store() -> ClosureStore:
        if artifacts.closure is None or artifacts.pair_tables is None:
            raise EngineError(
                f"binary index lacks the closure sections backend {name!r} "
                "needs (corrupt or mismatched file)"
            )
        return ClosureStore.from_tables(
            graph,
            artifacts.closure,
            artifacts.pair_tables,
            block_size=config.block_size,
        )

    if name == "full":
        return FullClosureBackend(
            graph, config, closure=artifacts.closure, store=adopted_store()
        )
    if name in ("ondemand", "pll"):
        if artifacts.pll is None:
            raise EngineError(
                f"binary index lacks the 2-hop sections backend {name!r} "
                "needs (corrupt or mismatched file)"
            )
        builder = OnDemandBackend if name == "ondemand" else PLLBackend
        return builder(graph, config, distance_index=artifacts.pll)
    if name == "hybrid":
        return HybridBackend(
            graph,
            config,
            closure=artifacts.closure,
            distance_index=artifacts.pll,
            materialized=adopted_store(),
            hot_pairs=artifacts.hot_pairs,
        )
    if name == "constrained":
        workload = tuple(
            query_tree_from_dict(q) for q in artifacts.workload
        )
        if workload:
            config = config.replace(workload=workload)
        return ConstrainedBackend(
            graph, config, closure=artifacts.closure, store=adopted_store()
        )
    raise EngineError(f"unknown backend {name!r} in persisted index")
