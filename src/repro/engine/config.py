"""Engine configuration: :class:`EngineConfig` and the fluent builder.

An :class:`EngineConfig` captures every physical choice the paper leaves
open — which reachability machinery backs the index (full transitive
closure, on-demand assembly, hot/cold hybrid, 2-hop labels, or a
workload-constrained closure), which algorithm answers queries, label
semantics, node weights, and the block size of the simulated disk layout.
:class:`~repro.engine.core.MatchEngine` is a pure function of
``(graph, config)``, so configs are also what index persistence records.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.exceptions import EngineError
from repro.graph.query import QueryTree
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.twig.semantics import EQUALITY, LabelMatcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.core import MatchEngine

#: Closure backends, in increasing order of laziness (see repro.closure).
BACKENDS: tuple[str, ...] = ("full", "ondemand", "hybrid", "pll", "constrained")

#: Concrete algorithm names, in the order the paper introduces them.
ALGORITHMS: tuple[str, ...] = ("dp-b", "dp-p", "topk", "topk-en", "brute-force")

#: Everything ``algorithm=`` accepts ("auto" delegates to the planner).
ENGINE_ALGORITHMS: tuple[str, ...] = ALGORITHMS + ("auto",)


@dataclass(frozen=True)
class EngineConfig:
    """Declarative engine configuration (all fields have sensible defaults).

    ``backend="auto"`` lets the planner pick a backend from graph size;
    ``algorithm="auto"`` lets it pick per query from label selectivity.
    ``workload`` declares the query trees a ``constrained`` backend must
    support (and is what makes ``backend="auto"`` choose ``constrained``).
    """

    backend: str = "auto"
    algorithm: str = "auto"
    block_size: int = DEFAULT_BLOCK_SIZE
    label_matcher: LabelMatcher = EQUALITY
    node_weight: Callable | None = None
    hot_fraction: float = 0.2
    workload: tuple[QueryTree, ...] | None = None
    #: Planner knob: full-load Topk when the estimated run-time graph has
    #: at most this many copies.
    full_load_threshold: int = 64
    #: Planner knob: graph size (nodes) up to which "auto" picks the fully
    #: materialized closure; beyond it, on-demand assembly.
    small_graph_nodes: int = 2048
    #: Brute-force expansion guard (mirrors repro.core.brute_force).
    brute_force_limit: int = 200_000

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS + ("auto",):
            raise EngineError(
                f"unknown backend {self.backend!r}; choose from "
                f"{BACKENDS + ('auto',)}"
            )
        if self.algorithm not in ENGINE_ALGORITHMS:
            raise EngineError(
                f"unknown algorithm {self.algorithm!r}; choose from "
                f"{ENGINE_ALGORITHMS}"
            )
        if self.block_size <= 0:
            raise EngineError(
                f"block_size must be positive, got {self.block_size}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise EngineError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if self.backend == "constrained" and not self.workload:
            raise EngineError(
                "backend='constrained' needs a declared workload "
                "(EngineConfig(workload=...) or builder().workload(...))"
            )
        if self.workload is not None:
            object.__setattr__(self, "workload", tuple(self.workload))

    def replace(self, **changes) -> "EngineConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **changes)


@dataclass
class EngineBuilder:
    """Fluent construction of a :class:`~repro.engine.core.MatchEngine`.

    Example::

        engine = (MatchEngine.builder()
                  .backend("pll")
                  .algorithm("auto")
                  .block_size(32)
                  .build(graph))
    """

    _changes: dict = field(default_factory=dict)

    def backend(self, name: str) -> "EngineBuilder":
        """Select the closure backend (or ``"auto"``)."""
        self._changes["backend"] = name
        return self

    def algorithm(self, name: str) -> "EngineBuilder":
        """Select the default matching algorithm (or ``"auto"``)."""
        self._changes["algorithm"] = name
        return self

    def block_size(self, size: int) -> "EngineBuilder":
        """Block size of the simulated disk layout."""
        self._changes["block_size"] = size
        return self

    def label_matcher(self, matcher: LabelMatcher) -> "EngineBuilder":
        """Label semantics (equality, wildcard, containment...)."""
        self._changes["label_matcher"] = matcher
        return self

    def node_weight(self, weight: Callable | None) -> "EngineBuilder":
        """Optional per-node weight added to match scores (footnote 2)."""
        self._changes["node_weight"] = weight
        return self

    def hot_fraction(self, fraction: float) -> "EngineBuilder":
        """Hot-list fraction of the ``hybrid`` backend."""
        self._changes["hot_fraction"] = fraction
        return self

    def workload(self, *queries: QueryTree) -> "EngineBuilder":
        """Declare the queries a ``constrained`` closure must support."""
        self._changes["workload"] = tuple(queries)
        return self

    def config(self) -> EngineConfig:
        """The accumulated :class:`EngineConfig` (validated)."""
        return EngineConfig(**self._changes)

    def build(self, graph) -> "MatchEngine":
        """Build the engine (pays the backend's offline cost now)."""
        from repro.engine.core import MatchEngine

        return MatchEngine(graph, self.config())
