"""The :class:`MatchEngine` — primary public API of the reproduction.

One engine owns one data graph plus the offline artifacts of a chosen
reachability backend, and answers top-k queries written in any form —
DSL text, fluent builders, typed ASTs, or raw query objects — with any
algorithm:

    from repro.engine import MatchEngine

    engine = MatchEngine(graph)                 # backend/algorithm "auto"
    matches = engine.top_k("A//B[C]", k=5)      # XPath-style DSL
    print(engine.explain("A//B[C]", k=5).describe())

    stream = engine.stream("A//B[C]")           # lazy, resumable
    first = stream.take(3)
    more = stream.take(3)                       # ranks 4-6, no recompute

    engine.top_k("graph(a:A, b:B, c:C; a-b, b-c, c-a)", k=3)  # cyclic kGPM

    engine.save_index("dataset.ridx")           # offline cost paid once
    engine2 = MatchEngine.load("dataset.ridx")  # mmap, zero-parse cold start

Every query form is normalized through one chokepoint —
:func:`repro.query.compile_query` — before planning and execution, so
DSL strings, ``Q(...)``/``Pattern`` builders, and hand-built
``QueryTree``/``QueryGraph`` objects behave identically.  The engine
separates the logical query API from the physical index choice (the five
closure backends of :mod:`repro.engine.backends`), plans per query,
streams results, and persists indexes via :mod:`repro.io`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.compact import accel
from repro.core.baseline_dp import DPBEnumerator
from repro.core.baseline_dpp import DPPEnumerator
from repro.core.brute_force import BruteForceEngine
from repro.core.matches import Match
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.devtools.lockcheck import make_lock
from repro.engine.backends import ReachabilityBackend, build_backend
from repro.engine.config import EngineBuilder, EngineConfig
from repro.engine.planner import Planner, QueryPlan, choose_backend
from repro.engine.stream import ResultStream
from repro.exceptions import EngineError
from repro.gpm.mtree import KGPMEngine
from repro.graph.digraph import LabeledDiGraph
from repro.kernel import (
    TIER_COMPILED,
    KernelProgram,
    KernelUnsupported,
    bind_program,
    compile_program,
    kernel_enabled,
)

# Re-exported for backward compatibility; the format registry (and this
# JSON document version) lives in repro.io now.
from repro.io import INDEX_FORMAT_VERSION  # noqa: F401
from repro.query.compiler import CompiledQuery, compile_query
from repro.runtime.graph import build_runtime_graph

#: LRU bound on cached per-matcher KGPM engines (each holds a bidirected
#: graph copy; matchers are identity-keyed, so unbounded churn of
#: compiled containment queries would otherwise grow the cache forever).
KGPM_ENGINE_CACHE_LIMIT = 8

#: LRU bound on cached kernel bindings (program bound to this engine's
#: store snapshot).  Bindings are the expensive half of compiled
#: execution; a serving layer's warm queries reuse them, and engines are
#: swapped per epoch so the cache can never serve a stale snapshot.
KERNEL_BINDING_CACHE_LIMIT = 32


class MatchEngine:
    """Top-k twig matching over one data graph, any backend, any algorithm.

    Parameters
    ----------
    graph:
        The data graph.
    config:
        An :class:`EngineConfig`; keyword overrides are accepted instead
        (``MatchEngine(graph, backend="pll", block_size=32)``).
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig | None = None,
        *,
        _backend: ReachabilityBackend | None = None,
        **overrides,
    ) -> None:
        if config is not None and overrides:
            raise EngineError(
                "pass either an EngineConfig or keyword overrides, not both"
            )
        if config is None:
            config = EngineConfig(**overrides)
        self.graph = graph
        self.config = config
        backend_name, backend_reasons = choose_backend(graph, config)
        if _backend is not None:
            backend_name = _backend.name
            backend_reasons = (f"backend {_backend.name!r} restored from index",)
            self._backend = _backend
        else:
            self._backend = build_backend(graph, config, backend_name)
        self.planner = Planner(graph, config, backend_name, backend_reasons)
        # Cyclic (kGPM) queries need a bidirected closure independent of
        # the tree backend; built lazily on the first cyclic query.  The
        # KGPMEngine instances are cached too (keyed by tree algorithm
        # and matcher) since their setup re-copies the graph.  One engine
        # may serve queries from many threads (repro.service shares it),
        # so lazy population is guarded by a lock.
        self._kgpm_artifacts: tuple[TransitiveClosure, ClosureStore] | None = None
        self._kgpm_engines: OrderedDict[tuple[str, int], KGPMEngine] = OrderedDict()
        self._kgpm_lock = make_lock("engine.kgpm")
        # Compiled-tier bindings: program (identity) x bind mode -> the
        # BoundProgram over this engine's store.  Guarded like the kGPM
        # cache; bound arrays are immutable so sharing across threads is
        # safe, and each execution starts a fresh KernelRun.
        self._kernel_bindings: OrderedDict[tuple, "object"] = OrderedDict()
        self._kernel_lock = make_lock("engine.kernel")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def builder(cls) -> EngineBuilder:
        """A fluent :class:`EngineBuilder` (``.backend(...)....build(g)``)."""
        return EngineBuilder()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ReachabilityBackend:
        """The active reachability backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the active backend (``full``, ``ondemand``, ...)."""
        return self._backend.name

    @property
    def store(self):
        """The closure store the enumerators consume."""
        return self._backend.store

    @property
    def closure(self):
        """The materialized closure, when the backend keeps one."""
        return self._backend.closure

    def statistics(self) -> dict:
        """Backend/offline statistics (size, build time, cache usage)."""
        return self._backend.statistics()

    def compile(self, query) -> CompiledQuery:
        """Normalize any query form through :func:`repro.query.compile_query`.

        Accepts DSL text (``"A//B[C]"``), fluent builders (``Q``/
        ``Pattern``), typed ASTs, raw ``QueryTree``/``QueryGraph``
        objects, and already-compiled queries.  Every query API on this
        engine goes through this one chokepoint.
        """
        return compile_query(query)

    def explain(self, query, k: int = 10, algorithm: str | None = None) -> QueryPlan:
        """The plan :meth:`top_k`/:meth:`stream` would execute, with reasons.

        The plan also surfaces the compiled query semantics: matcher
        kind, ``/``-edge count, wildcard count, and cyclic-or-tree.
        """
        return self.planner.plan(self.compile(query), k, algorithm=algorithm)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def engine_for(self, query, algorithm: str | None = None):
        """Build the raw enumerator the plan selects (advanced use).

        All returned objects expose ``top_k(k)`` / ``stream()`` /
        ``results`` / ``stats``; the lazy ones add ``compute_first()``.
        Tree queries only — cyclic patterns run inside the kGPM
        decomposition framework and have no single enumerator.
        """
        compiled = self.compile(query)
        if compiled.is_cyclic:
            raise EngineError(
                "cyclic patterns have no standalone enumerator; use "
                "top_k() or repro.gpm.KGPMEngine directly"
            )
        plan = self.planner.plan(compiled, k=10, algorithm=algorithm)
        return self._build_enumerator(compiled, plan.algorithm)

    def _check_workload(self, compiled: CompiledQuery):
        """Raise when a constrained index cannot serve ``compiled``.

        Shared by the interpreter and compiled paths so both tiers fail
        with the identical :class:`EngineError`.  Returns the effective
        matcher (both callers need it next).
        """
        query = compiled.tree
        matcher = compiled.effective_matcher(self.config.label_matcher)
        supports = getattr(self._backend, "supports", None)
        if supports is not None and not supports(query, matcher):
            raise EngineError(
                "query is outside the declared workload of this constrained "
                "index (its non-leaf labels were not pre-computed as closure "
                "sources); rebuild with the query in `workload` or use "
                "another backend"
            )
        return matcher

    def _build_enumerator(self, compiled: CompiledQuery, algorithm: str):
        config = self.config
        query = compiled.tree
        matcher = self._check_workload(compiled)
        store = self._backend.store
        if algorithm == "topk-en":
            return TopkEN(
                store, query, matcher=matcher,
                node_weight=config.node_weight,
            )
        if algorithm == "dp-p":
            return DPPEnumerator(
                store, query, matcher=matcher,
                node_weight=config.node_weight,
            )
        if algorithm == "topk":
            gr = build_runtime_graph(store, query, matcher=matcher)
            return TopkEnumerator(gr, node_weight=config.node_weight)
        if algorithm == "dp-b":
            gr = build_runtime_graph(store, query, matcher=matcher)
            return DPBEnumerator(gr, node_weight=config.node_weight)
        if algorithm == "brute-force":
            gr = build_runtime_graph(store, query, matcher=matcher)
            return BruteForceEngine(
                gr, node_weight=config.node_weight,
                limit=config.brute_force_limit,
            )
        raise EngineError(f"unknown algorithm {algorithm!r}")

    def _kgpm_engine(self, compiled: CompiledQuery, plan_algorithm: str) -> KGPMEngine:
        """A kGPM engine over this graph, reusing one bidirected closure.

        Engines are cached per (tree algorithm, matcher): compiled
        containment queries share one matcher instance, so repeated
        cyclic queries reuse the same engine instead of re-copying the
        graph each call.  The cache is a small LRU and every lookup —
        hit or miss — runs under one lock (a kGPM execution dwarfs the
        lock cost), so concurrent first cyclic queries build the
        bidirected closure exactly once and a key is only ever bound to
        one engine.
        """
        tree_algorithm = "dp-b" if plan_algorithm == "mtree" else "topk-en"
        matcher = compiled.effective_matcher(self.config.label_matcher)
        key = (tree_algorithm, id(matcher))
        # The whole lookup runs under the lock: a kGPM execution dwarfs
        # it, and LRU reordering must not race the OrderedDict.
        with self._kgpm_lock:
            engine = self._kgpm_engines.get(key)
            if engine is not None:
                self._kgpm_engines.move_to_end(key)
                return engine
            if self._kgpm_artifacts is None:
                bidirected = self.graph.bidirected()
                closure = TransitiveClosure(bidirected)
                store = ClosureStore(
                    bidirected, closure, block_size=self.config.block_size
                )
                self._kgpm_artifacts = (closure, store)
            closure, store = self._kgpm_artifacts
            engine = KGPMEngine(
                self.graph,
                tree_algorithm=tree_algorithm,
                block_size=self.config.block_size,
                closure=closure,
                store=store,
                matcher=matcher,
            )
            self._kgpm_engines[key] = engine
            while len(self._kgpm_engines) > KGPM_ENGINE_CACHE_LIMIT:
                self._kgpm_engines.popitem(last=False)
        return engine

    # ------------------------------------------------------------------
    # Compiled kernel tier
    # ------------------------------------------------------------------
    def program_for(
        self, compiled: CompiledQuery, plan: QueryPlan
    ) -> KernelProgram | None:
        """The kernel program of a compiled-tier plan, or ``None``.

        Store-independent, so serving layers cache the result alongside
        the plan (``repro.service``'s plan-cache entries) and bind it to
        whatever engine epoch answers the request.
        """
        if plan.cyclic or plan.tier != TIER_COMPILED:
            return None
        try:
            return compile_program(compiled)
        except KernelUnsupported:
            return None

    def _bound_program(self, compiled: CompiledQuery, program: KernelProgram):
        """Bind ``program`` to this engine's store, LRU-cached.

        Keyed by program identity and bind mode (scalar vs numpy, per
        the ``REPRO_COMPACT_NUMPY`` flag at call time); the cached value
        keeps the program alive, so identity keys cannot alias.
        """
        np_mod = accel.resolve_numpy(None)
        key = (program, "numpy" if np_mod is not None else "scalar")
        with self._kernel_lock:
            bound = self._kernel_bindings.get(key)
            if bound is not None:
                self._kernel_bindings.move_to_end(key)
                return bound
        # Bind outside the lock: racing first binds are idempotent and a
        # bind dwarfs the duplicated work's lock-hold time.
        bound = bind_program(
            program,
            self._backend.store,
            matcher=compiled.effective_matcher(self.config.label_matcher),
            node_weight=self.config.node_weight,
            use_numpy=np_mod is not None,
        )
        with self._kernel_lock:
            self._kernel_bindings[key] = bound
            self._kernel_bindings.move_to_end(key)
            while len(self._kernel_bindings) > KERNEL_BINDING_CACHE_LIMIT:
                self._kernel_bindings.popitem(last=False)
        return bound

    def _plan_source(
        self,
        compiled: CompiledQuery,
        plan: QueryPlan,
        program: KernelProgram | None = None,
    ):
        """The enumeration source a tree plan executes.

        A fresh :class:`~repro.kernel.KernelRun` when the plan selected
        the compiled tier (re-checking the kill switch and falling back
        to the interpreter on :class:`KernelUnsupported`), else the
        interpreter enumerator.  Both expose the same protocol
        (``top_k``/``stream``/``results``/``stats``).
        """
        if plan.tier == TIER_COMPILED and kernel_enabled():
            self._check_workload(compiled)
            try:
                if program is None:
                    program = compile_program(compiled)
                return self._bound_program(compiled, program).run()
            except KernelUnsupported:
                pass
        return self._build_enumerator(compiled, plan.algorithm)

    def _execute_plan(
        self,
        compiled: CompiledQuery,
        plan: QueryPlan,
        k: int,
        program: KernelProgram | None = None,
    ) -> list[Match]:
        """Run an already-planned query (the compile/plan-free hot path).

        This is what plan caching skips to: :class:`repro.service`'s plan
        cache stores ``(compiled, plan, program)`` entries and calls
        straight into here on a hit — with the cached ``program``, a
        warm compiled-tier request costs one binding-cache lookup plus
        the flat enumeration loop.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if compiled.is_cyclic:
            return self._kgpm_engine(compiled, plan.algorithm).top_k(
                compiled.pattern, k
            )
        return self._plan_source(compiled, plan, program).top_k(k)

    def prepare(self, query, k: int = 10, algorithm: str | None = None) -> "PreparedQuery":
        """Compile and plan ``query`` once for repeated execution.

        The returned :class:`PreparedQuery` skips parsing, lowering, and
        planning on every call — the per-request cost a serving layer
        amortizes — and carries the lowered kernel program when the plan
        selected the compiled tier.  The plan is made for ``k``;
        executing with a *larger* ``k`` transparently re-plans (the
        algorithm choice depends on ``k``), while a smaller ``k`` reuses
        the plan unchanged.
        """
        compiled = self.compile(query)
        plan = self.planner.plan(compiled, k, algorithm=algorithm)
        return PreparedQuery(
            engine=self,
            compiled=compiled,
            plan=plan,
            program=self.program_for(compiled, plan),
            algorithm=algorithm,
        )

    def top_k(self, query, k: int, algorithm: str | None = None) -> list[Match]:
        """The ``k`` lowest-score matches of ``query`` (fewer if the graph
        has fewer).

        ``query`` may be DSL text, a ``Q``/``Pattern`` builder, a typed
        AST, or a raw ``QueryTree``/``QueryGraph``; cyclic patterns run
        through the kGPM decomposition framework.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        compiled = self.compile(query)
        plan = self.planner.plan(compiled, k, algorithm=algorithm)
        return self._execute_plan(compiled, plan, k)

    def stream(self, query, algorithm: str | None = None, k_hint: int = 10) -> ResultStream:
        """A lazy :class:`ResultStream` over ``query``'s matches.

        ``k_hint`` only informs the planner's algorithm choice; the stream
        itself can run past it without recomputation.  Tree queries only —
        the kGPM threshold loop cannot resume lazily, so cyclic patterns
        must use :meth:`top_k`.
        """
        compiled = self.compile(query)
        if compiled.is_cyclic:
            raise EngineError(
                "cyclic patterns do not stream (the kGPM threshold "
                "algorithm needs a target k); use top_k() instead"
            )
        plan = self.planner.plan(compiled, k_hint, algorithm=algorithm)
        return ResultStream(self._plan_source(compiled, plan), plan)

    def batch(self, queries: Iterable, k: int, algorithm: str | None = None) -> list[list[Match]]:
        """Answer many queries over the shared index (offline cost paid once).

        Returns one top-k list per query, in input order; the queries may
        mix every supported form (DSL text, builders, raw trees/graphs).
        All queries reuse this engine's backend — with the materialized
        backends the closure is never recomputed, and with the lazy ones
        their caches (backward searches, 2-hop labels) warm up across the
        batch.
        """
        return [self.top_k(query, k, algorithm=algorithm) for query in queries]

    # ------------------------------------------------------------------
    # Index persistence
    # ------------------------------------------------------------------
    def save_index(self, path: str | Path, format: str | None = None) -> None:
        """Persist the offline artifacts (graph + closure/2-hop labels).

        The written index lets :meth:`load` answer queries without
        re-running the shortest-path pre-computation — the paper's
        once-per-dataset offline phase.  ``format`` selects from the
        :data:`repro.io.INDEX_FORMATS` registry: the default ``binary``
        writes the mmap-paged ``.ridx`` layout (zero-parse cold start,
        str/int node ids preserved); ``json`` writes the self-describing
        interchange document (string ids only — non-string ids raise).
        """
        from repro.io import save_engine_index

        save_engine_index(self, path, format=format)

    @classmethod
    def load(cls, path: str | Path, **overrides) -> "MatchEngine":
        """Rebuild an engine from :meth:`save_index` output (any format).

        The format is sniffed from the file's magic bytes — binary
        ``.ridx`` indexes open via ``mmap`` with no per-entry decode
        (closure blocks page in on first touch), JSON documents are
        parsed as before.  Keyword overrides customize the
        non-serializable config fields (``label_matcher``,
        ``node_weight``, planner knobs); the backend, block size, and
        hot fraction come from the index itself.
        """
        from repro.io import load_engine_index

        return load_engine_index(cls, path, **overrides)


@dataclass(frozen=True)
class PreparedQuery:
    """One query compiled and planned once, executable many times.

    Produced by :meth:`MatchEngine.prepare`.  Holds the compiled query
    (parse + lowering already paid), the plan (algorithm choice +
    candidate estimates already paid), and — when the plan selected the
    compiled tier — the lowered kernel ``program``; :meth:`top_k` jumps
    straight to execution.  Immutable and safe to share across threads
    — this is the unit :class:`repro.service.MatchService`'s plan cache
    stores.
    """

    engine: MatchEngine
    compiled: CompiledQuery
    plan: QueryPlan
    program: KernelProgram | None = None
    #: The ``algorithm`` argument :meth:`MatchEngine.prepare` was called
    #: with (``None`` = auto), so oversized-``k`` re-planning honors an
    #: explicit choice.
    algorithm: str | None = None

    @property
    def dsl(self) -> str:
        """Canonical DSL text of the prepared query."""
        return self.compiled.to_dsl()

    def top_k(self, k: int | None = None) -> list[Match]:
        """Execute with the prepared plan (defaults to the planned ``k``).

        The plan was chosen for :attr:`plan`'s ``k``; asking for *more*
        results re-plans at the requested ``k`` (the planner's
        algorithm choice depends on how much of the candidate space
        ``k`` covers — silently reusing a small-``k`` plan for a large
        ``k`` could pick a badly suboptimal algorithm).  Smaller ``k``
        values reuse the plan unchanged.
        """
        if k is not None and k > self.plan.k:
            fresh = self.engine.prepare(
                self.compiled, k, algorithm=self.algorithm
            )
            return fresh.top_k()
        return self.engine._execute_plan(
            self.compiled,
            self.plan,
            self.plan.k if k is None else k,
            program=self.program,
        )

    def stream(self) -> ResultStream:
        """A lazy stream over the prepared query (tree queries only)."""
        if self.compiled.is_cyclic:
            raise EngineError(
                "cyclic patterns do not stream (the kGPM threshold "
                "algorithm needs a target k); use top_k() instead"
            )
        return ResultStream(
            self.engine._plan_source(self.compiled, self.plan, self.program),
            self.plan,
        )

    def explain(self) -> QueryPlan:
        """The plan :meth:`top_k` executes."""
        return self.plan
