"""Query planning: backend and algorithm selection with explainable plans.

The paper shows no single algorithm dominates: fully loading the run-time
graph (Topk/DP-B) wins when the graph is tiny or most of it will be
enumerated anyway, while priority-based lazy access (Topk-EN) wins when a
small ``k`` touches a sliver of a large candidate space (Figures 6-8).
The :class:`Planner` encodes those trade-offs as deterministic,
inspectable rules over cheap statistics — node/edge counts and label
selectivity from :class:`~repro.graph.digraph.LabeledDiGraph` — and every
decision carries its reasons in the returned :class:`QueryPlan`
(``engine.explain(query)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import ALGORITHMS, EngineConfig
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QNodeId, QueryTree


@dataclass(frozen=True)
class QueryPlan:
    """One planned execution: the choices made and why.

    ``candidate_estimates`` maps each query node (in breadth-first order)
    to the number of data nodes its label can match — the planner's view
    of the run-time graph size before any closure access.
    """

    algorithm: str
    backend: str
    k: int
    query_nodes: int
    candidate_estimates: tuple[tuple[QNodeId, int], ...]
    est_runtime_nodes: int
    reasons: tuple[str, ...]

    def describe(self) -> str:
        """Multi-line, human-readable plan (the CLI's ``--explain``)."""
        lines = [
            f"QueryPlan: algorithm={self.algorithm!r} backend={self.backend!r} "
            f"k={self.k}",
            f"  query nodes: {self.query_nodes}; estimated run-time copies: "
            f"{self.est_runtime_nodes}",
        ]
        per_node = ", ".join(
            f"{qnode!r}≈{count}" for qnode, count in self.candidate_estimates
        )
        if per_node:
            lines.append(f"  candidates per query node: {per_node}")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def choose_backend(
    graph: LabeledDiGraph, config: EngineConfig
) -> tuple[str, tuple[str, ...]]:
    """Resolve ``backend="auto"`` from graph size and declared workload.

    Deterministic rules (tested as goldens): a declared workload picks the
    constrained closure; otherwise graph size decides — small graphs
    afford the full closure, large graphs get on-demand assembly.
    """
    if config.backend != "auto":
        return config.backend, (f"backend {config.backend!r} explicitly requested",)
    if config.workload:
        return "constrained", (
            f"workload of {len(config.workload)} query tree(s) declared: "
            "constrained closure covers it with the smallest index",
        )
    n = graph.num_nodes
    if n <= config.small_graph_nodes:
        return "full", (
            f"{n} nodes ≤ {config.small_graph_nodes}: full closure is "
            "affordable and gives the fastest queries",
        )
    # "hybrid" is never auto-picked: it materializes the full closure AND
    # builds a 2-hop index (its value is the hot/cold I/O split, not a
    # cheaper offline phase), so it must be an explicit choice.
    return "ondemand", (
        f"{n} nodes > {config.small_graph_nodes}: a materialized closure "
        "would dominate memory; assemble groups on demand",
    )


class Planner:
    """Per-query algorithm selection over one engine's backend."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        backend_name: str,
        backend_reasons: tuple[str, ...] = (),
    ) -> None:
        self.graph = graph
        self.config = config
        self.backend_name = backend_name
        self.backend_reasons = tuple(backend_reasons)

    # ------------------------------------------------------------------
    def candidate_estimates(
        self, query: QueryTree
    ) -> tuple[tuple[QNodeId, int], ...]:
        """Per query node, how many data nodes its label can match."""
        graph = self.graph
        matcher = self.config.label_matcher
        alphabet = graph.labels()
        out = []
        for u in query.bfs_order():
            labels = matcher.data_labels_for(query.label(u), alphabet)
            if labels is None:
                count = graph.num_nodes
            else:
                count = sum(len(graph.nodes_with_label(l)) for l in labels)
            out.append((u, count))
        return tuple(out)

    # ------------------------------------------------------------------
    def plan(
        self, query: QueryTree, k: int, algorithm: str | None = None
    ) -> QueryPlan:
        """Pick an algorithm for ``(query, k)`` (or honor an explicit one)."""
        requested = algorithm if algorithm is not None else self.config.algorithm
        estimates = self.candidate_estimates(query)
        est_runtime_nodes = sum(count for _, count in estimates)
        reasons = list(self.backend_reasons)

        if requested != "auto":
            if requested not in ALGORITHMS:
                # ValueError, not EngineError: the original facade raised
                # ValueError here and callers match on it.
                raise ValueError(
                    f"unknown algorithm {requested!r}; choose from "
                    f"{ALGORITHMS + ('auto',)}"
                )
            chosen = requested
            reasons.append(f"algorithm {requested!r} explicitly requested")
        elif query.num_nodes == 1:
            chosen = "topk-en"
            reasons.append(
                "single-node query: the lazy engine answers straight from "
                "the label index"
            )
        elif est_runtime_nodes <= self.config.full_load_threshold:
            chosen = "topk"
            reasons.append(
                f"tiny candidate space (≈{est_runtime_nodes} copies ≤ "
                f"{self.config.full_load_threshold}): fully loading the "
                "run-time graph is cheapest"
            )
        elif k >= est_runtime_nodes:
            chosen = "topk"
            reasons.append(
                f"k={k} covers the estimated candidate space "
                f"(≈{est_runtime_nodes} copies): enumeration amortizes a "
                "full load"
            )
        else:
            chosen = "topk-en"
            reasons.append(
                f"large candidate space (≈{est_runtime_nodes} copies) with "
                f"small k={k}: priority-based lazy access loads the least"
            )

        return QueryPlan(
            algorithm=chosen,
            backend=self.backend_name,
            k=k,
            query_nodes=query.num_nodes,
            candidate_estimates=estimates,
            est_runtime_nodes=est_runtime_nodes,
            reasons=tuple(reasons),
        )
