"""Query planning: backend and algorithm selection with explainable plans.

The paper shows no single algorithm dominates: fully loading the run-time
graph (Topk/DP-B) wins when the graph is tiny or most of it will be
enumerated anyway, while priority-based lazy access (Topk-EN) wins when a
small ``k`` touches a sliver of a large candidate space (Figures 6-8).
The :class:`Planner` encodes those trade-offs as deterministic,
inspectable rules over cheap statistics — node/edge counts and label
selectivity from :class:`~repro.graph.digraph.LabeledDiGraph` — and every
decision carries its reasons in the returned :class:`QueryPlan`
(``engine.explain(query)``).

Queries reach the planner in any declarative form (DSL text, builders,
ASTs, raw ``QueryTree``/``QueryGraph``); :func:`repro.query.compile_query`
normalizes them, and the resulting compiled semantics — matcher kind,
direct-edge count, cyclic-or-tree — are part of the plan.  Cyclic
patterns plan onto the kGPM decomposition framework (``mtree+`` with
Topk-EN inside, or ``mtree`` with DP-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.config import ALGORITHMS, EngineConfig
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QNodeId
from repro.kernel import (
    KERNEL_LOAD_CAP,
    TIER_COMPILED,
    TIER_INTERPRETED,
    kernel_enabled,
)
from repro.kernel import supports as kernel_supports
from repro.query.compiler import CompiledQuery, compile_query
from repro.twig.semantics import LabelMatcher

#: Cyclic (kGPM) plan algorithms: the decomposition framework with the
#: paper's Topk-EN inside (``mtree+``) or the DP baseline (``mtree``).
CYCLIC_ALGORITHMS: tuple[str, ...] = ("mtree+", "mtree")

#: Tree-algorithm names accepted as aliases when the query is cyclic.
_CYCLIC_ALIASES = {
    "topk-en": "mtree+",
    "mtree+": "mtree+",
    "dp-b": "mtree",
    "mtree": "mtree",
}


@dataclass(frozen=True)
class QueryPlan:
    """One planned execution: the choices made and why.

    ``candidate_estimates`` maps each query node (breadth-first order for
    trees, declaration order for cyclic patterns) to the number of data
    nodes its label can match — the planner's view of the run-time graph
    size before any closure access.  ``matcher_kind``, ``direct_edges``,
    and ``cyclic`` surface the compiled query semantics; ``dsl`` is the
    canonical pretty-printed query.
    """

    algorithm: str
    backend: str
    k: int
    query_nodes: int
    candidate_estimates: tuple[tuple[QNodeId, int], ...]
    est_runtime_nodes: int
    reasons: tuple[str, ...]
    cyclic: bool = False
    direct_edges: int = 0
    wildcards: int = 0
    matcher_kind: str = "equality"
    tier: str = TIER_INTERPRETED
    dsl: str = field(default="", compare=False)

    def describe(self) -> str:
        """Multi-line, human-readable plan (the CLI's ``--explain``)."""
        tier_text = (
            "compiled kernel (flat opcode program)"
            if self.tier == TIER_COMPILED
            else "interpreted"
        )
        lines = [
            f"QueryPlan: algorithm={self.algorithm!r} backend={self.backend!r} "
            f"k={self.k}",
            f"  query: {self.dsl}" if self.dsl else "  query: (unprintable)",
            f"  semantics: {'cyclic pattern' if self.cyclic else 'tree'}, "
            f"matcher={self.matcher_kind}, direct edges={self.direct_edges}, "
            f"wildcards={self.wildcards}",
            f"  query nodes: {self.query_nodes}; estimated run-time copies: "
            f"{self.est_runtime_nodes}",
            f"  execution tier: {tier_text}",
        ]
        per_node = ", ".join(
            f"{qnode!r}≈{count}" for qnode, count in self.candidate_estimates
        )
        if per_node:
            lines.append(f"  candidates per query node: {per_node}")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def config_fingerprint(config: EngineConfig) -> tuple:
    """A hashable token covering every config field that can change a plan.

    Plan caches key on ``canonical DSL x engine config``; this is the
    "engine config" half.  Unpicklable fields (matcher, node-weight
    callables, workload trees) contribute as the objects themselves —
    they hash by identity, and keeping strong references in the key
    means a garbage-collected config can never alias a live one (which
    ``id()`` would allow).
    """
    return (
        config.backend,
        config.algorithm,
        config.block_size,
        config.label_matcher,
        config.node_weight,
        config.hot_fraction,
        config.workload,
        config.full_load_threshold,
        config.small_graph_nodes,
        config.brute_force_limit,
    )


def choose_backend(
    graph: LabeledDiGraph, config: EngineConfig
) -> tuple[str, tuple[str, ...]]:
    """Resolve ``backend="auto"`` from graph size and declared workload.

    Deterministic rules (tested as goldens): a declared workload picks the
    constrained closure; otherwise graph size decides — small graphs
    afford the full closure, large graphs get on-demand assembly.
    """
    if config.backend != "auto":
        return config.backend, (f"backend {config.backend!r} explicitly requested",)
    if config.workload:
        return "constrained", (
            f"workload of {len(config.workload)} query tree(s) declared: "
            "constrained closure covers it with the smallest index",
        )
    n = graph.num_nodes
    if n <= config.small_graph_nodes:
        return "full", (
            f"{n} nodes ≤ {config.small_graph_nodes}: full closure is "
            "affordable and gives the fastest queries",
        )
    # "hybrid" is never auto-picked: it materializes the full closure AND
    # builds a 2-hop index (its value is the hot/cold I/O split, not a
    # cheaper offline phase), so it must be an explicit choice.
    return "ondemand", (
        f"{n} nodes > {config.small_graph_nodes}: a materialized closure "
        "would dominate memory; assemble groups on demand",
    )


class Planner:
    """Per-query algorithm selection over one engine's backend."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        config: EngineConfig,
        backend_name: str,
        backend_reasons: tuple[str, ...] = (),
    ) -> None:
        self.graph = graph
        self.config = config
        self.backend_name = backend_name
        self.backend_reasons = tuple(backend_reasons)
        # Label -> candidate count, memoized: the graph is immutable for
        # this planner's lifetime and repeated planning (a serving layer's
        # cache misses) re-asks the same labels.  Dict reads/writes are
        # atomic under the GIL; a race at worst duplicates a count.
        self._label_counts: dict = {}
        self._alphabet: set | None = None

    def _count_for_labels(self, labels) -> int:
        total = 0
        for data_label in labels:
            count = self._label_counts.get(data_label)
            if count is None:
                count = len(self.graph.nodes_with_label(data_label))
                self._label_counts[data_label] = count
            total += count
        return total

    # ------------------------------------------------------------------
    def _matcher_kind(self, compiled: CompiledQuery) -> str:
        if compiled.matcher is not None:
            return compiled.matcher_kind
        matcher = self.config.label_matcher
        if type(matcher) is LabelMatcher:
            return "equality"
        return type(matcher).__name__

    def candidate_estimates(
        self, query
    ) -> tuple[tuple[QNodeId, int], ...]:
        """Per query node, how many data nodes its label can match.

        Accepts any query form (DSL, builder, AST, ``QueryTree``/
        ``QueryGraph``, or an already-compiled query).
        """
        compiled = compile_query(query)
        matcher = compiled.effective_matcher(self.config.label_matcher)
        graph = self.graph
        if self._alphabet is None:
            self._alphabet = graph.labels()
        alphabet = self._alphabet
        if compiled.is_cyclic:
            pattern = compiled.pattern
            nodes = list(pattern.nodes())
            label_of = pattern.label
        else:
            nodes = list(compiled.tree.bfs_order())
            label_of = compiled.tree.label
        out = []
        for u in nodes:
            labels = matcher.data_labels_for(label_of(u), alphabet)
            if labels is None:
                count = graph.num_nodes
            else:
                count = self._count_for_labels(labels)
            out.append((u, count))
        return tuple(out)

    # ------------------------------------------------------------------
    def plan(self, query, k: int, algorithm: str | None = None) -> QueryPlan:
        """Pick an algorithm for ``(query, k)`` (or honor an explicit one).

        ``query`` may be any declarative form; it is normalized through
        :func:`repro.query.compile_query` first.
        """
        compiled = compile_query(query)
        requested = algorithm if algorithm is not None else self.config.algorithm
        estimates = self.candidate_estimates(compiled)
        est_runtime_nodes = sum(count for _, count in estimates)
        reasons = list(self.backend_reasons)

        if compiled.is_cyclic:
            chosen = self._plan_cyclic(compiled, requested, reasons)
        else:
            chosen = self._plan_tree(
                compiled, requested, k, est_runtime_nodes, reasons
            )
        tier = self._choose_tier(compiled, chosen, est_runtime_nodes, reasons)

        try:
            dsl = compiled.to_dsl()
        except Exception:  # labels the DSL cannot express
            dsl = ""
        return QueryPlan(
            algorithm=chosen,
            backend=self.backend_name,
            k=k,
            query_nodes=compiled.num_nodes,
            candidate_estimates=estimates,
            est_runtime_nodes=est_runtime_nodes,
            reasons=tuple(reasons),
            cyclic=compiled.is_cyclic,
            direct_edges=compiled.direct_edges,
            wildcards=compiled.wildcards,
            matcher_kind=self._matcher_kind(compiled),
            tier=tier,
            dsl=dsl,
        )

    def _choose_tier(
        self,
        compiled: CompiledQuery,
        algorithm: str,
        est_runtime_nodes: int,
        reasons: list[str],
    ) -> str:
        """Compiled kernel vs interpreter for the chosen algorithm.

        The kernel executes the fully-loaded reference semantics, so it
        takes over the tree top-k algorithms whenever the candidate
        space is small enough to load flat; cyclic patterns, the DP
        baselines, and brute force stay interpreted.  ``REPRO_KERNEL=0``
        is the operational kill switch.
        """
        if not kernel_supports(compiled, algorithm):
            return TIER_INTERPRETED
        if not kernel_enabled():
            reasons.append(
                "compiled kernel disabled (REPRO_KERNEL): interpreted execution"
            )
            return TIER_INTERPRETED
        load_cap = max(self.config.full_load_threshold, KERNEL_LOAD_CAP)
        if est_runtime_nodes > load_cap:
            reasons.append(
                f"estimated run-time graph (≈{est_runtime_nodes} copies) "
                f"exceeds the kernel full-load cap ({load_cap}): "
                "interpreted lazy execution"
            )
            return TIER_INTERPRETED
        reasons.append(
            "lowered to a compiled kernel program: flat slot arrays over "
            "closure rows, no per-node interpreter dispatch"
        )
        return TIER_COMPILED

    def _plan_tree(
        self,
        compiled: CompiledQuery,
        requested: str,
        k: int,
        est_runtime_nodes: int,
        reasons: list[str],
    ) -> str:
        if requested != "auto":
            if requested in CYCLIC_ALGORITHMS:
                raise ValueError(
                    f"algorithm {requested!r} only applies to cyclic "
                    "graph(...) patterns; this query is a tree"
                )
            if requested not in ALGORITHMS:
                # ValueError, not EngineError: the original facade raised
                # ValueError here and callers match on it.
                raise ValueError(
                    f"unknown algorithm {requested!r}; choose from "
                    f"{ALGORITHMS + ('auto',)}"
                )
            reasons.append(f"algorithm {requested!r} explicitly requested")
            return requested
        if compiled.num_nodes == 1:
            reasons.append(
                "single-node query: the lazy engine answers straight from "
                "the label index"
            )
            return "topk-en"
        if est_runtime_nodes <= self.config.full_load_threshold:
            reasons.append(
                f"tiny candidate space (≈{est_runtime_nodes} copies ≤ "
                f"{self.config.full_load_threshold}): fully loading the "
                "run-time graph is cheapest"
            )
            return "topk"
        if k >= est_runtime_nodes:
            reasons.append(
                f"k={k} covers the estimated candidate space "
                f"(≈{est_runtime_nodes} copies): enumeration amortizes a "
                "full load"
            )
            return "topk"
        reasons.append(
            f"large candidate space (≈{est_runtime_nodes} copies) with "
            f"small k={k}: priority-based lazy access loads the least"
        )
        return "topk-en"

    def _plan_cyclic(
        self, compiled: CompiledQuery, requested: str, reasons: list[str]
    ) -> str:
        pattern = compiled.pattern
        non_tree = pattern.num_edges - (pattern.num_nodes - 1)
        if requested == "auto":
            reasons.append(
                f"cyclic pattern ({pattern.num_edges} edges over "
                f"{pattern.num_nodes} nodes, {non_tree} non-tree): "
                "decompose into a spanning tree and verify the rest "
                "(mtree+ streams tree matches with Topk-EN)"
            )
            return "mtree+"
        chosen = _CYCLIC_ALIASES.get(requested)
        if chosen is None:
            raise ValueError(
                f"algorithm {requested!r} cannot execute a cyclic pattern; "
                f"choose from {CYCLIC_ALGORITHMS} (or 'topk-en'/'dp-b' for "
                "the tree matcher inside the decomposition)"
            )
        reasons.append(
            f"algorithm {requested!r} explicitly requested "
            f"(cyclic pattern -> {chosen})"
        )
        return chosen
