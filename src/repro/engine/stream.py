"""Lazy result streams over the incremental enumerators.

The paper's headline property is *optimal enumeration*: matches surface
one at a time in score order, with work proportional to how far the
caller actually goes.  :class:`ResultStream` packages that as an API
object: ``next()`` / iteration / ``take(k)`` pull matches on demand, and
pulling more later resumes the underlying enumerator exactly where it
stopped — no recomputation, because every engine caches emitted results
and continues from its internal frontier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.matches import EnumerationStats, Match

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.planner import QueryPlan


class ResultStream:
    """Incremental view of one query's matches, best-first.

    Wraps an enumerator (Topk-EN, DP-P, Topk, DP-B, or the brute-force
    facade) that exposes ``stream()``/``results``.  The stream keeps its
    own cursor; independent ``iter()`` calls replay from the first match
    (served from the enumerator's cache) before advancing it further.
    """

    def __init__(self, source, plan: "QueryPlan | None" = None) -> None:
        self._source = source
        self.plan = plan
        self._cursor = 0
        self._iter = source.stream()
        self._exhausted = False

    # ------------------------------------------------------------------
    @property
    def results(self) -> list[Match]:
        """Matches emitted so far (shared enumerator cache, best-first)."""
        return list(self._source.results)

    @property
    def consumed(self) -> int:
        """How many matches this stream's cursor has returned."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True once the enumeration space is provably empty."""
        return self._exhausted

    @property
    def stats(self) -> EnumerationStats | None:
        """The underlying engine's instrumentation counters."""
        return getattr(self._source, "stats", None)

    # ------------------------------------------------------------------
    def _advance_to(self, index: int) -> bool:
        """Ensure at least ``index + 1`` matches are computed."""
        while len(self._source.results) <= index:
            try:
                next(self._iter)
            except StopIteration:
                self._exhausted = True
                return False
        return True

    def next(self) -> Match | None:
        """The next best match, or ``None`` when enumeration is done."""
        if not self._advance_to(self._cursor):
            return None
        match = self._source.results[self._cursor]
        self._cursor += 1
        return match

    def __next__(self) -> Match:
        match = self.next()
        if match is None:
            raise StopIteration
        return match

    def take(self, k: int) -> list[Match]:
        """Up to ``k`` further matches from the current cursor.

        Consecutive ``take`` calls continue the enumeration: after
        ``take(5)``, a later ``take(5)`` returns ranks 6-10 without
        recomputing ranks 1-5.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        out: list[Match] = []
        for _ in range(k):
            match = self.next()
            if match is None:
                break
            out.append(match)
        return out

    def __iter__(self) -> Iterator[Match]:
        """Iterate all matches from rank 1 (independent of the cursor)."""
        index = 0
        while True:
            if len(self._source.results) <= index and not self._advance_to(index):
                return
            yield self._source.results[index]
            index += 1
