"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so that callers
can catch everything coming from this package with a single clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GraphError(ReproError):
    """Structural problem with a data graph (duplicate node, bad edge...)."""


class QueryError(ReproError):
    """Malformed query tree or query graph."""


class NotATreeError(QueryError):
    """The supplied query edges do not form a single rooted tree."""


class QuerySyntaxError(QueryError):
    """Malformed query DSL text, with caret-annotated source position.

    ``str(exc)`` renders the offending source line with a ``^`` marker::

        A//B[[C]
             ^
        expected a label, '*', '~', or '{...}'

    ``message``, ``source``, and ``position`` stay accessible for callers
    that want to render the diagnostic themselves.
    """

    def __init__(self, message: str, source: str, position: int) -> None:
        self.message = message
        self.source = source
        self.position = max(0, min(position, len(source)))
        caret = " " * self.position + "^"
        super().__init__(f"{source}\n{caret}\n{message}")


class ClosureError(ReproError):
    """Problem while computing or querying a transitive closure."""


class StorageError(ReproError):
    """Problem in the simulated block storage layer."""


class IndexFormatError(StorageError):
    """A persisted index file is malformed, truncated, or unsupported.

    Raised by the binary ``.ridx`` reader (:mod:`repro.storage.diskindex`)
    on bad magic/version, truncated sections, checksum mismatches, and
    unsupported node-id types — always *before* any garbage data can
    reach a query.  The JSON index path raises it too when asked to
    persist node ids its format would silently coerce.
    """


class DeltaError(ReproError):
    """Invalid use of the :mod:`repro.delta` write-ahead overlay layer."""


class WalError(DeltaError):
    """A write-ahead log segment is unusable (bad magic/version, a
    checksum-valid record that cannot be decoded, or node ids the WAL's
    JSON payloads cannot preserve exactly).

    Torn tails never raise this: a record cut short by a crash
    mid-append is detected by the length/CRC framing and truncated away
    during recovery — only damage *before* the tail is an error.
    """


class MatchingError(ReproError):
    """Internal inconsistency detected during top-k matching."""


class EngineError(ReproError):
    """Invalid engine configuration or use of the ``repro.engine`` API."""


class DecompositionError(ReproError):
    """A query graph could not be decomposed for kGPM evaluation."""


class ServiceError(ReproError):
    """Base class for failures of the :mod:`repro.service` serving layer."""


class ServiceClosedError(ServiceError):
    """A request reached a :class:`~repro.service.MatchService` after
    :meth:`~repro.service.MatchService.close` (no new work is accepted)."""


class ServiceOverloadedError(ServiceError):
    """The service's bounded request queue is full.

    ``submit()`` fails fast instead of queueing unboundedly; callers
    should back off and retry (``batch()`` applies back-pressure by
    blocking for a slot instead of raising).
    """


class DeadlineExceededError(ServiceError):
    """A queued request's deadline expired before a worker picked it up.

    Deadlines bound queue wait only: execution is never preempted
    mid-enumeration, and a caller-side ``future.result(timeout=...)``
    raises the standard :class:`concurrent.futures.TimeoutError`, not
    this class.
    """


class ShardError(ReproError):
    """Invalid shard plan, manifest, or use of the ``repro.shard`` API."""


class ShardUnavailableError(ShardError):
    """A shard worker process died (or stayed dead after a restart).

    Raised by :class:`~repro.service.ShardedMatchService` when a request
    needs a shard whose hosting process is gone.  With
    ``on_shard_failure="error"`` (the default) the request fails with
    this error; with ``"degrade"`` a scatter that still reached at least
    one live shard returns a partial answer flagged ``degraded`` and only
    raises when *no* routed shard answered.  The failed worker is
    restarted in the background when ``restart_workers`` is enabled, so
    later requests recover.
    """
