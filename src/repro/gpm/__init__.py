"""Top-k graph pattern matching (kGPM): mtree / mtree+ (Section 5, Fig 9)."""

from repro.gpm.decompose import (
    best_decomposition,
    candidate_decompositions,
    decomposition_cost,
    spanning_tree,
)
from repro.gpm.mtree import KGPMEngine, KGPMStats, brute_force_kgpm, kgpm_matches

__all__ = [
    "KGPMEngine",
    "KGPMStats",
    "kgpm_matches",
    "brute_force_kgpm",
    "spanning_tree",
    "candidate_decompositions",
    "best_decomposition",
    "decomposition_cost",
]
