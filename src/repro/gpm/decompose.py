"""Query-graph decomposition for kGPM (Section 5 / Cheng et al. [7]).

The kGPM framework evaluates a general query graph by picking a spanning
tree, enumerating its tree matches in score order, and verifying the
non-tree edges.  This module builds rooted spanning trees of a
:class:`~repro.graph.query.QueryGraph` and scores candidate decompositions
so the cheapest tree (by expected run-time-graph size) can be selected.
"""

from __future__ import annotations

from collections import deque
from repro.closure.transitive import TransitiveClosure
from repro.exceptions import DecompositionError
from repro.graph.query import QNodeId, QueryGraph, QueryTree

#: A decomposition: rooted spanning tree + the non-tree edges to verify.
Decomposition = tuple[QueryTree, list[tuple[QNodeId, QNodeId]]]


def spanning_tree(query: QueryGraph, root: QNodeId | None = None) -> Decomposition:
    """BFS spanning tree of ``query`` rooted at ``root``.

    Defaults to the maximum-degree node (ties broken by repr) — hub roots
    keep the tree shallow, which keeps run-time graphs small.  Returns the
    rooted tree (all edges ``//``) and the remaining non-tree edges.
    """
    if root is None:
        root = max(query.nodes(), key=lambda u: (query.degree(u), repr(u)))
    elif root not in set(query.nodes()):
        raise DecompositionError(f"root {root!r} not a query node")

    labels = query.labels()
    tree_edges: list[tuple[QNodeId, QNodeId]] = []
    seen = {root}
    frontier: deque[QNodeId] = deque([root])
    while frontier:
        node = frontier.popleft()
        for nxt in sorted(query.neighbors(node), key=repr):
            if nxt in seen:
                continue
            seen.add(nxt)
            tree_edges.append((node, nxt))
            frontier.append(nxt)
    if len(seen) != query.num_nodes:
        raise DecompositionError("query graph is not connected")

    covered = {frozenset(edge) for edge in tree_edges}
    non_tree = [
        (u, v) for u, v in query.edges() if frozenset((u, v)) not in covered
    ]
    return QueryTree(labels, tree_edges), non_tree


def candidate_decompositions(query: QueryGraph) -> list[Decomposition]:
    """One BFS decomposition per possible root, deterministic order."""
    return [spanning_tree(query, root) for root in sorted(query.nodes(), key=repr)]


def decomposition_cost(
    decomposition: Decomposition, type_counts: dict[tuple, int]
) -> float:
    """Expected run-time-graph size of a decomposition.

    ``type_counts`` maps label pairs to their closure-edge counts (the
    paper's per-type ``theta``); the cost of a tree is the total count over
    its edges — the number of closure entries its run-time graph loads.
    Undirected data graphs store both orientations, so the pair is looked
    up both ways.
    """
    tree, _ = decomposition
    total = 0.0
    for parent, child, _ in tree.edges():
        pair = (tree.label(parent), tree.label(child))
        total += type_counts.get(pair, 0) + type_counts.get(pair[::-1], 0)
    return total


def best_decomposition(
    query: QueryGraph, closure: TransitiveClosure
) -> Decomposition:
    """Cheapest BFS decomposition under :func:`decomposition_cost`."""
    counts = closure.same_type_statistics()
    candidates = candidate_decompositions(query)
    return min(candidates, key=lambda d: decomposition_cost(d, counts))
