"""kGPM — top-k graph pattern matching via tree decomposition (Figure 9).

``mtree`` is the framework of Cheng et al. [7]: decompose the query graph
into a rooted spanning tree, stream the tree's matches in score order,
complete each to a full graph-pattern score by adding the non-tree edge
distances, and stop once the k-th best verified score cannot be beaten by
any unseen tree match (threshold-algorithm style).  The paper's ``mtree+``
replaces the DP-based tree matcher inside that framework with Topk-EN —
that is the entire difference, and it is what Figure 9 measures.

Data and query graphs are undirected here (Section 5): the data graph is
bidirected and the directed machinery runs unchanged.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.baseline_dp import DPBEnumerator
from repro.core.matches import Match
from repro.core.topk_en import TopkEN
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QNodeId, QueryGraph
from repro.runtime.graph import build_runtime_graph
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.twig.semantics import EQUALITY, LabelMatcher
from repro.gpm.decompose import Decomposition, best_decomposition, spanning_tree

TREE_ALGORITHMS = ("dp-b", "topk-en")


@dataclass
class KGPMStats:
    """Instrumentation of one kGPM run."""

    tree_matches_consumed: int = 0
    discarded_unreachable: int = 0
    verify_probes: int = 0
    setup_seconds: float = 0.0
    query_seconds: float = 0.0
    extra: dict = field(default_factory=dict)


class KGPMEngine:
    """Top-k graph pattern matching over one (undirected) data graph.

    Parameters
    ----------
    graph:
        The data graph; every edge is treated as bidirectional.
    tree_algorithm:
        ``"dp-b"`` gives the paper's ``mtree`` baseline; ``"topk-en"``
        gives ``mtree+``.
    matcher:
        Label semantics for the tree matcher inside the decomposition
        (equality by default; compiled queries may carry containment).
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        tree_algorithm: str = "topk-en",
        block_size: int = DEFAULT_BLOCK_SIZE,
        closure: TransitiveClosure | None = None,
        store: ClosureStore | None = None,
        matcher: LabelMatcher = EQUALITY,
    ) -> None:
        if tree_algorithm not in TREE_ALGORITHMS:
            raise ValueError(
                f"tree_algorithm must be one of {TREE_ALGORITHMS}, "
                f"got {tree_algorithm!r}"
            )
        started = time.perf_counter()
        self.tree_algorithm = tree_algorithm
        self.matcher = matcher
        self.graph = graph.bidirected()
        self.closure = closure if closure is not None else TransitiveClosure(self.graph)
        self.store = (
            store
            if store is not None
            else ClosureStore(self.graph, self.closure, block_size=block_size)
        )
        self._min_weight = min(
            (w for _, __, w in self.graph.edges()), default=0.0
        )
        self.stats = KGPMStats(setup_seconds=time.perf_counter() - started)

    # ------------------------------------------------------------------
    def _tree_stream(self, decomposition: Decomposition):
        tree, _ = decomposition
        if self.tree_algorithm == "topk-en":
            return TopkEN(self.store, tree, matcher=self.matcher).stream()
        gr = build_runtime_graph(self.store, tree, matcher=self.matcher)
        return DPBEnumerator(gr).stream()

    def _full_score(
        self,
        assignment: dict[QNodeId, object],
        tree_score: float,
        non_tree: list[tuple[QNodeId, QNodeId]],
    ) -> float | None:
        """Tree score plus non-tree edge distances; ``None`` if unreachable."""
        total = tree_score
        for u, v in non_tree:
            self.stats.verify_probes += 1
            dist = self.store.distance(assignment[u], assignment[v])
            if dist is None:
                return None
            total += dist
        return total

    def top_k(
        self,
        query: QueryGraph,
        k: int,
        decomposition: Decomposition | None = None,
        choose_best_tree: bool = True,
    ) -> list[Match]:
        """Return the ``k`` lowest-score graph-pattern matches of ``query``.

        The spanning tree defaults to the cheapest BFS decomposition (by
        expected run-time-graph size); pass ``decomposition`` to override.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        if decomposition is None:
            if choose_best_tree:
                decomposition = best_decomposition(query, self.closure)
            else:
                decomposition = spanning_tree(query)
        tree, non_tree = decomposition
        lower_bound_rest = len(non_tree) * self._min_weight

        verified: list[tuple[float, int, Match]] = []
        counter = 0
        results: list[Match] = []
        for tree_match in self._tree_stream(decomposition):
            self.stats.tree_matches_consumed += 1
            full = self._full_score(
                tree_match.assignment, tree_match.score, non_tree
            )
            if full is None:
                self.stats.discarded_unreachable += 1
            else:
                heapq.heappush(
                    verified,
                    (full, counter, Match(tree_match.assignment, full)),
                )
                counter += 1
            # Any unseen tree match has tree score >= this one, hence full
            # score >= tree_score + lower_bound_rest: emit verified matches
            # already at or below that threshold.
            threshold = tree_match.score + lower_bound_rest
            while verified and len(results) < k and verified[0][0] <= threshold:
                results.append(heapq.heappop(verified)[2])
            if len(results) >= k:
                break
        # Tree stream exhausted: everything verified is final.
        while verified and len(results) < k:
            results.append(heapq.heappop(verified)[2])
        self.stats.query_seconds += time.perf_counter() - started
        return results


def kgpm_matches(
    graph: LabeledDiGraph,
    query: QueryGraph,
    k: int,
    tree_algorithm: str = "topk-en",
) -> list[Match]:
    """One-shot kGPM: ``mtree+`` semantics by default."""
    return KGPMEngine(graph, tree_algorithm=tree_algorithm).top_k(query, k)


def brute_force_kgpm(
    engine: KGPMEngine, query: QueryGraph, k: int, limit: int = 200_000
) -> list[Match]:
    """Oracle for tests: enumerate every assignment via a spanning tree of
    the *fully loaded* run-time graph, score all query edges, sort."""
    from repro.core.brute_force import all_matches

    tree, non_tree = spanning_tree(query)
    gr = build_runtime_graph(engine.store, tree, matcher=engine.matcher)
    scored: list[Match] = []
    for match in all_matches(gr, limit=limit):
        full = engine._full_score(match.assignment, match.score, non_tree)
        if full is None:
            continue
        scored.append(Match(match.assignment, full))
    scored.sort(key=lambda m: (m.score, repr(sorted(m.assignment.items(), key=repr))))
    return scored[:k]
