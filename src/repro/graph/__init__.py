"""Graph substrate: labeled digraphs, query trees/graphs, generators."""

from repro.graph.digraph import LabeledDiGraph, graph_from_edges
from repro.graph.generators import (
    citation_graph,
    erdos_renyi_graph,
    layered_graph,
    powerlaw_graph,
)
from repro.graph.query import (
    WILDCARD,
    EdgeType,
    QueryGraph,
    QueryTree,
    path_query,
    star_query,
)

__all__ = [
    "LabeledDiGraph",
    "graph_from_edges",
    "QueryTree",
    "QueryGraph",
    "EdgeType",
    "WILDCARD",
    "path_query",
    "star_query",
    "powerlaw_graph",
    "citation_graph",
    "erdos_renyi_graph",
    "layered_graph",
]
