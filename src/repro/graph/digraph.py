"""Node-labeled directed graphs — the data model of the paper (Section 2).

A :class:`LabeledDiGraph` is a directed graph ``G = (V, E, l)`` where every
node carries a label drawn from an alphabet and every edge carries a
positive weight (the paper's experiments use unit weights; the scoring
machinery supports general positive weights throughout).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.exceptions import GraphError

NodeId = Hashable
Label = Hashable


class LabeledDiGraph:
    """A node-labeled, edge-weighted directed graph.

    Nodes are arbitrary hashable identifiers; each node has exactly one
    label.  Edges are directed and carry a positive (integer or float)
    weight, defaulting to 1 as in the paper's experiments.

    The structure is append-mostly: the matching pipeline never mutates a
    data graph after closure construction, but node/edge removal is provided
    for workload extraction utilities.
    """

    def __init__(self) -> None:
        self._labels: dict[NodeId, Label] = {}
        self._succ: dict[NodeId, dict[NodeId, float]] = {}
        self._pred: dict[NodeId, dict[NodeId, float]] = {}
        self._by_label: dict[Label, set[NodeId]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: Label) -> None:
        """Add ``node`` with ``label``; re-adding with the same label is a no-op."""
        existing = self._labels.get(node)
        if existing is not None:
            if existing != label:
                raise GraphError(
                    f"node {node!r} already exists with label {existing!r}, "
                    f"cannot relabel to {label!r}"
                )
            return
        if label is None:
            raise GraphError("node labels must not be None")
        self._labels[node] = label
        self._succ[node] = {}
        self._pred[node] = {}
        self._by_label.setdefault(label, set()).add(node)

    def relabel_node(self, node: NodeId, label: Label) -> Label:
        """Change ``node``'s label in place; returns the previous label.

        Edges are untouched — only the label index moves.  Relabeling to
        the current label is a no-op.  This is the one sanctioned label
        mutation (``add_node`` refuses silent relabels so that bulk
        loads surface conflicting inputs loudly).
        """
        try:
            previous = self._labels[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} not in graph") from exc
        if label is None:
            raise GraphError("node labels must not be None")
        if previous == label:
            return previous
        self._labels[node] = label
        self._by_label[previous].discard(node)
        if not self._by_label[previous]:
            del self._by_label[previous]
        self._by_label.setdefault(label, set()).add(node)
        return previous

    def add_edge(self, tail: NodeId, head: NodeId, weight: float = 1) -> None:
        """Add the directed edge ``tail -> head`` with a positive weight.

        Parallel edges collapse to the minimum weight (only shortest
        distances matter to the matching semantics).  Self-loops are
        rejected: they can never shorten a path and the closure definition
        excludes trivial reachability.
        """
        if tail not in self._labels or head not in self._labels:
            raise GraphError(f"both endpoints of ({tail!r}, {head!r}) must exist")
        if tail == head:
            raise GraphError(f"self-loop on {tail!r} not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        previous = self._succ[tail].get(head)
        if previous is None:
            self._num_edges += 1
            self._succ[tail][head] = weight
            self._pred[head][tail] = weight
        elif weight < previous:
            self._succ[tail][head] = weight
            self._pred[head][tail] = weight

    def remove_edge(self, tail: NodeId, head: NodeId) -> None:
        """Remove the edge ``tail -> head``; raise if absent."""
        try:
            del self._succ[tail][head]
            del self._pred[head][tail]
        except KeyError as exc:
            raise GraphError(f"edge ({tail!r}, {head!r}) not in graph") from exc
        self._num_edges -= 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges; raise if absent."""
        if node not in self._labels:
            raise GraphError(f"node {node!r} not in graph")
        for head in list(self._succ[node]):
            self.remove_edge(node, head)
        for tail in list(self._pred[node]):
            self.remove_edge(tail, node)
        label = self._labels.pop(node)
        self._by_label[label].discard(node)
        if not self._by_label[label]:
            del self._by_label[label]
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (``n_G`` in the paper)."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of directed edges (``m_G`` in the paper)."""
        return self._num_edges

    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers."""
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Iterate over ``(tail, head, weight)`` triples."""
        for tail, heads in self._succ.items():
            for head, weight in heads.items():
                yield tail, head, weight

    def label(self, node: NodeId) -> Label:
        """Return the label of ``node``."""
        try:
            return self._labels[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} not in graph") from exc

    def labels(self) -> set[Label]:
        """Return the set of labels present in the graph (the alphabet used)."""
        return set(self._by_label)

    def nodes_with_label(self, label: Label) -> frozenset[NodeId]:
        """Return all nodes carrying ``label`` (empty set if none)."""
        return frozenset(self._by_label.get(label, ()))

    def successors(self, node: NodeId) -> Mapping[NodeId, float]:
        """Return ``{head: weight}`` for out-edges of ``node``."""
        try:
            return self._succ[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} not in graph") from exc

    def predecessors(self, node: NodeId) -> Mapping[NodeId, float]:
        """Return ``{tail: weight}`` for in-edges of ``node``."""
        try:
            return self._pred[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} not in graph") from exc

    def has_edge(self, tail: NodeId, head: NodeId) -> bool:
        """True when the direct edge ``tail -> head`` exists."""
        succ = self._succ.get(tail)
        return succ is not None and head in succ

    def edge_weight(self, tail: NodeId, head: NodeId) -> float:
        """Weight of the direct edge ``tail -> head``; raise if absent."""
        try:
            return self._succ[tail][head]
        except KeyError as exc:
            raise GraphError(f"edge ({tail!r}, {head!r}) not in graph") from exc

    def out_degree(self, node: NodeId) -> int:
        """Number of out-edges of ``node``."""
        return len(self.successors(node))

    def in_degree(self, node: NodeId) -> int:
        """Number of in-edges of ``node``."""
        return len(self.predecessors(node))

    def is_unit_weighted(self) -> bool:
        """True when every edge weight equals 1 (enables BFS closures)."""
        return all(weight == 1 for _, _, weight in self.edges())

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self) -> "LabeledDiGraph":
        """Return a deep structural copy."""
        clone = LabeledDiGraph()
        for node, label in self._labels.items():
            clone.add_node(node, label)
        for tail, head, weight in self.edges():
            clone.add_edge(tail, head, weight)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "LabeledDiGraph":
        """Return the induced subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._labels)
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))}")
        sub = LabeledDiGraph()
        for node in keep:
            sub.add_node(node, self._labels[node])
        for tail in keep:
            for head, weight in self._succ[tail].items():
                if head in keep:
                    sub.add_edge(tail, head, weight)
        return sub

    def bidirected(self) -> "LabeledDiGraph":
        """Return the graph with every edge made bidirectional.

        Used by the kGPM extension (Section 5): undirected data graphs are
        handled by making each edge bidirectional and running the directed
        machinery unchanged.
        """
        both = LabeledDiGraph()
        for node, label in self._labels.items():
            both.add_node(node, label)
        for tail, head, weight in self.edges():
            both.add_edge(tail, head, weight)
            both.add_edge(head, tail, weight)
        return both

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledDiGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={len(self._by_label)})"
        )


def graph_from_edges(
    labeled_nodes: Mapping[NodeId, Label],
    edges: Iterable[tuple[NodeId, NodeId] | tuple[NodeId, NodeId, float]],
) -> LabeledDiGraph:
    """Build a :class:`LabeledDiGraph` from a label map and an edge list.

    Edge tuples may be ``(tail, head)`` (weight 1) or ``(tail, head, w)``.
    This is the convenience constructor used throughout tests and examples.
    """
    graph = LabeledDiGraph()
    for node, label in labeled_nodes.items():
        graph.add_node(node, label)
    for edge in edges:
        if len(edge) == 2:
            tail, head = edge
            graph.add_edge(tail, head)
        else:
            tail, head, weight = edge
            graph.add_edge(tail, head, weight)
    return graph
