"""Synthetic dataset generators (Section 6 workloads).

Two families, mirroring the paper's evaluation:

* :func:`powerlaw_graph` — a directed scale-free graph with a configurable
  average out-degree and uniformly assigned labels; stands in for the Boost
  Graph Library power-law generator the paper uses for ``GS1..GS6``
  (average out-degree 3, 200 labels).
* :func:`citation_graph` — a preferential-attachment citation DAG with
  Zipf-distributed venue labels; a scaled-down substitute for the DBLP
  citation network used for ``GD1..GD5`` (heavy-tailed in-degree, DAG-like
  edges pointing from newer to older papers, few hot labels + long tail).

Both are fully deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import GraphError
from repro.graph.digraph import LabeledDiGraph
from repro.utils.rng import make_rng, zipf_weights


def _label_names(count: int, prefix: str) -> list[str]:
    return [f"{prefix}{i}" for i in range(count)]


def powerlaw_graph(
    num_nodes: int,
    avg_out_degree: float = 3.0,
    num_labels: int = 200,
    seed: int | random.Random | None = 0,
    label_prefix: str = "L",
) -> LabeledDiGraph:
    """Directed scale-free graph via preferential attachment.

    Each new node emits ``~avg_out_degree`` edges whose targets are drawn
    preferentially by in-degree (plus one smoothing count), producing a
    power-law in-degree distribution like the Boost generator the paper
    uses.  Labels are assigned uniformly at random from ``num_labels``
    distinct labels.  To keep the graph connected in the weak sense (the
    paper extracts connected graphs), every node also receives one edge
    from a uniformly random earlier node.
    """
    if num_nodes < 2:
        raise GraphError("powerlaw_graph needs at least 2 nodes")
    rng = make_rng(seed)
    labels = _label_names(num_labels, label_prefix)
    graph = LabeledDiGraph()
    for node in range(num_nodes):
        graph.add_node(node, rng.choice(labels))

    # targets: repeated-node list implementing preferential attachment.
    targets: list[int] = [0]
    graph.add_edge(1, 0)
    targets.extend([0, 1])
    for node in range(2, num_nodes):
        fanout = max(1, int(rng.gauss(avg_out_degree, 1.0)))
        chosen: set[int] = set()
        # One uniform edge guarantees weak connectivity.
        chosen.add(rng.randrange(node))
        while len(chosen) < min(fanout, node):
            chosen.add(rng.choice(targets))
        for target in chosen:
            if target != node:
                graph.add_edge(node, target)
                targets.append(target)
        targets.append(node)
    return graph


def citation_graph(
    num_nodes: int,
    num_labels: int = 60,
    avg_citations: float = 3.0,
    zipf_exponent: float = 1.1,
    seed: int | random.Random | None = 0,
    label_prefix: str = "V",
) -> LabeledDiGraph:
    """DBLP-like citation DAG (substitute for the paper's real dataset).

    Node ``i`` represents a paper appearing at a venue (its label, drawn
    from a Zipf distribution so a few venues are hot); it cites earlier
    papers with recency-biased preferential attachment.  The result is a
    DAG whose edges point from citing (newer) to cited (older) papers, as
    in the paper's DBLP graph where each edge is a citation.
    """
    if num_nodes < 2:
        raise GraphError("citation_graph needs at least 2 nodes")
    rng = make_rng(seed)
    venues = _label_names(num_labels, label_prefix)
    weights = zipf_weights(num_labels, zipf_exponent)
    graph = LabeledDiGraph()
    venue_of = rng.choices(venues, weights=weights, k=num_nodes)
    for node in range(num_nodes):
        graph.add_node(node, venue_of[node])

    # Preferential attachment over earlier papers, with a recency window so
    # citation chains stay shallow-ish like real citation data.
    cited_pool: list[int] = [0]
    for node in range(1, num_nodes):
        fanout = max(1, int(rng.gauss(avg_citations, 1.0)))
        chosen: set[int] = set()
        chosen.add(rng.randrange(node))
        attempts = 0
        while len(chosen) < min(fanout, node) and attempts < 8 * fanout:
            attempts += 1
            if rng.random() < 0.5 and node > 1:
                # Recency bias: cite a recent paper.
                lo = max(0, node - 200)
                chosen.add(rng.randrange(lo, node))
            else:
                chosen.add(rng.choice(cited_pool))
        for target in chosen:
            graph.add_edge(node, target)
            cited_pool.append(target)
        cited_pool.append(node)
    return graph


def erdos_renyi_graph(
    num_nodes: int,
    num_edges: int,
    num_labels: int = 10,
    seed: int | random.Random | None = 0,
    label_prefix: str = "E",
) -> LabeledDiGraph:
    """Uniform random directed graph; handy for randomized testing."""
    if num_nodes < 2:
        raise GraphError("erdos_renyi_graph needs at least 2 nodes")
    rng = make_rng(seed)
    labels = _label_names(num_labels, label_prefix)
    graph = LabeledDiGraph()
    for node in range(num_nodes):
        graph.add_node(node, rng.choice(labels))
    added = 0
    attempts = 0
    limit = 20 * num_edges + 100
    while added < num_edges and attempts < limit:
        attempts += 1
        tail = rng.randrange(num_nodes)
        head = rng.randrange(num_nodes)
        if tail == head or graph.has_edge(tail, head):
            continue
        graph.add_edge(tail, head)
        added += 1
    return graph


def layered_graph(
    layer_labels: Sequence[str],
    nodes_per_layer: int,
    edge_probability: float = 0.5,
    weight_range: tuple[int, int] = (1, 1),
    seed: int | random.Random | None = 0,
) -> LabeledDiGraph:
    """A layered DAG where layer ``i`` nodes all carry ``layer_labels[i]``.

    Edges go from layer ``i`` to layer ``i+1`` with the given probability.
    This shape makes run-time graphs dense and is used by unit tests and
    micro-benchmarks where slot sizes must be controlled precisely.
    """
    rng = make_rng(seed)
    graph = LabeledDiGraph()
    layers: list[list[str]] = []
    for depth, label in enumerate(layer_labels):
        layer = [f"{label}#{i}" for i in range(nodes_per_layer)]
        layers.append(layer)
        for node in layer:
            graph.add_node(node, label)
    lo, hi = weight_range
    for upper, lower in zip(layers, layers[1:]):
        for tail in upper:
            linked = False
            for head in lower:
                if rng.random() < edge_probability:
                    graph.add_edge(tail, head, rng.randint(lo, hi))
                    linked = True
            if not linked:
                graph.add_edge(tail, rng.choice(lower), rng.randint(lo, hi))
    return graph
