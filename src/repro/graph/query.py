"""Query trees (twig patterns) and query graphs.

A :class:`QueryTree` is the paper's rooted tree ``T``: a directed tree with
node labels and per-edge axis semantics.  Edges are either ``DESCENDANT``
(``//`` — maps to any directed path in the data graph, the paper's default)
or ``CHILD`` (``/`` — maps to a direct edge only; Section 5 extension).
Nodes may be wildcards (label ``*``) and different nodes may share a label;
the core algorithms of Section 3/4 assume distinct non-wildcard labels and
``//`` edges, while :mod:`repro.twig.general` lifts those restrictions.

A :class:`QueryGraph` is the general (undirected) pattern used by the kGPM
extension (Section 5 / Figure 9).
"""

from __future__ import annotations

import enum
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import NotATreeError, QueryError

QNodeId = Hashable
Label = Hashable

#: Sentinel label for wildcard query nodes (matches any data node).
WILDCARD = "*"


class EdgeType(enum.Enum):
    """Axis semantics of a twig edge (XPath ``/`` vs ``//``)."""

    CHILD = "/"
    DESCENDANT = "//"


class QueryTree:
    """A rooted, node-labeled query tree ``T``.

    Parameters
    ----------
    labels:
        Mapping from query-node id to label.  Use :data:`WILDCARD` for
        wildcard nodes.
    edges:
        ``(parent, child)`` or ``(parent, child, EdgeType)`` tuples; the
        edge type defaults to ``//`` (descendant), the paper's base setting.

    The constructor validates the tree shape (single root, connected,
    acyclic) and pre-computes the top-down breadth-first node order used by
    the enumeration algorithms (Lemma 3.1: every node's parent precedes it).
    """

    def __init__(
        self,
        labels: Mapping[QNodeId, Label],
        edges: Iterable[
            tuple[QNodeId, QNodeId] | tuple[QNodeId, QNodeId, EdgeType]
        ],
    ) -> None:
        if not labels:
            raise QueryError("a query tree needs at least one node")
        self._labels: dict[QNodeId, Label] = dict(labels)
        self._children: dict[QNodeId, list[QNodeId]] = {
            node: [] for node in self._labels
        }
        self._parent: dict[QNodeId, QNodeId] = {}
        self._edge_type: dict[tuple[QNodeId, QNodeId], EdgeType] = {}

        for edge in edges:
            if len(edge) == 2:
                parent, child = edge
                etype = EdgeType.DESCENDANT
            else:
                parent, child, etype = edge
            if parent not in self._labels or child not in self._labels:
                raise QueryError(f"edge ({parent!r}, {child!r}) references unknown node")
            if child in self._parent:
                raise NotATreeError(f"node {child!r} has two parents")
            if parent == child:
                raise NotATreeError(f"self-loop on {parent!r}")
            self._parent[child] = parent
            self._children[parent].append(child)
            self._edge_type[(parent, child)] = etype

        roots = [node for node in self._labels if node not in self._parent]
        if not roots:
            raise NotATreeError(
                "no root: every node has a parent, so the edges contain a "
                f"cycle through {self._find_cycle_node()!r}"
            )
        if len(roots) > 1:
            named = ", ".join(repr(r) for r in roots[:4])
            raise NotATreeError(
                f"expected exactly one root, found {len(roots)}: {named}"
                + (", ..." if len(roots) > 4 else "")
            )
        self._root: QNodeId = roots[0]

        self._bfs_order = self._compute_bfs_order()
        if len(self._bfs_order) != len(self._labels):
            orphans = [n for n in self._labels if n not in set(self._bfs_order)]
            raise NotATreeError(
                "query tree is not connected: node "
                f"{orphans[0]!r} is not reachable from the root {self._root!r}"
            )
        self._position = {node: i for i, node in enumerate(self._bfs_order)}
        self._subtree_size = self._compute_subtree_sizes()
        self._depth = self._compute_depths()

    # ------------------------------------------------------------------
    def _find_cycle_node(self) -> QNodeId:
        """Follow parent pointers until one repeats (only called when every
        node has a parent, i.e. a cycle must exist)."""
        node = next(iter(self._labels))
        seen = set()
        while node not in seen:
            seen.add(node)
            node = self._parent[node]
        return node

    def _compute_bfs_order(self) -> list[QNodeId]:
        order = [self._root]
        frontier = [self._root]
        seen = {self._root}
        while frontier:
            next_frontier: list[QNodeId] = []
            for node in frontier:
                for child in self._children[node]:
                    if child in seen:
                        raise NotATreeError(
                            f"cycle detected at node {child!r}"
                        )
                    seen.add(child)
                    order.append(child)
                    next_frontier.append(child)
            frontier = next_frontier
        return order

    def _compute_subtree_sizes(self) -> dict[QNodeId, int]:
        sizes = {node: 1 for node in self._labels}
        for node in reversed(self._bfs_order):
            for child in self._children[node]:
                sizes[node] += sizes[child]
        return sizes

    def _compute_depths(self) -> dict[QNodeId, int]:
        depths = {self._root: 0}
        for node in self._bfs_order[1:]:
            depths[node] = depths[self._parent[node]] + 1
        return depths

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> QNodeId:
        """The unique root of ``T``."""
        return self._root

    @property
    def num_nodes(self) -> int:
        """``n_T`` — number of query nodes."""
        return len(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, node: QNodeId) -> bool:
        return node in self._labels

    def nodes(self) -> Iterator[QNodeId]:
        """Iterate nodes in top-down breadth-first order (Lemma 3.1)."""
        return iter(self._bfs_order)

    def bfs_order(self) -> Sequence[QNodeId]:
        """Nodes in top-down breadth-first order; index = Lawler position."""
        return self._bfs_order

    def position(self, node: QNodeId) -> int:
        """0-based index of ``node`` in the breadth-first order."""
        try:
            return self._position[node]
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def label(self, node: QNodeId) -> Label:
        """Label of ``node`` (possibly :data:`WILDCARD`)."""
        try:
            return self._labels[node]
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def is_wildcard(self, node: QNodeId) -> bool:
        """True when ``node`` is a wildcard (label ``*``)."""
        return self.label(node) == WILDCARD

    def parent(self, node: QNodeId) -> QNodeId | None:
        """Parent of ``node`` (``None`` for the root)."""
        if node not in self._labels:
            raise QueryError(f"query node {node!r} unknown")
        return self._parent.get(node)

    def children(self, node: QNodeId) -> Sequence[QNodeId]:
        """Children of ``node`` in insertion order."""
        try:
            return self._children[node]
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def is_leaf(self, node: QNodeId) -> bool:
        """True when ``node`` has no children."""
        return not self.children(node)

    def edges(self) -> Iterator[tuple[QNodeId, QNodeId, EdgeType]]:
        """Iterate ``(parent, child, edge_type)`` triples."""
        for (parent, child), etype in self._edge_type.items():
            yield parent, child, etype

    def edge_type(self, parent: QNodeId, child: QNodeId) -> EdgeType:
        """Axis of the edge ``parent -> child``."""
        try:
            return self._edge_type[(parent, child)]
        except KeyError as exc:
            raise QueryError(f"({parent!r}, {child!r}) is not a query edge") from exc

    def subtree_size(self, node: QNodeId) -> int:
        """``|T_u|`` — number of nodes in the subtree rooted at ``node``."""
        try:
            return self._subtree_size[node]
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def depth(self, node: QNodeId) -> int:
        """Depth of ``node`` (root = 0)."""
        try:
            return self._depth[node]
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def max_degree(self) -> int:
        """``d_T`` — maximum number of children over all nodes."""
        return max(len(kids) for kids in self._children.values())

    def remaining_lower_bound(self, node: QNodeId) -> int:
        """The paper's ``L(u) = n_T - 1 - |T_u|`` structural lower bound.

        It bounds from below the score of the best match of
        ``T - (T_u + (parent(u), u))``: every one of those remaining edges
        contributes at least the minimum positive edge weight (1 for the
        unit-weight graphs of the experiments).  Zero for the root, whose
        removal leaves nothing.
        """
        if node == self._root:
            return 0
        return self.num_nodes - 1 - self._subtree_size[node]

    def has_distinct_labels(self) -> bool:
        """True when all node labels are distinct and non-wildcard."""
        labels = list(self._labels.values())
        return WILDCARD not in labels and len(set(labels)) == len(labels)

    def label_duplication_ratio(self) -> float:
        """The paper's ``1 - #distinct labels / #nodes`` (Eval-IV)."""
        labels = list(self._labels.values())
        return 1.0 - len(set(labels)) / len(labels)

    def uses_only_descendant_edges(self) -> bool:
        """True when every edge uses ``//`` semantics."""
        return all(etype is EdgeType.DESCENDANT for etype in self._edge_type.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTree(nodes={self.num_nodes}, root={self._root!r})"


def path_query(labels: Sequence[Label]) -> QueryTree:
    """Build a simple root-to-leaf path query from a label sequence."""
    if not labels:
        raise QueryError("path query needs at least one label")
    nodes = {i: label for i, label in enumerate(labels)}
    edges = [(i, i + 1) for i in range(len(labels) - 1)]
    return QueryTree(nodes, edges)


def star_query(root_label: Label, child_labels: Sequence[Label]) -> QueryTree:
    """Build a depth-1 star query: one root with the given leaf labels."""
    nodes: dict[QNodeId, Label] = {0: root_label}
    edges = []
    for i, label in enumerate(child_labels, start=1):
        nodes[i] = label
        edges.append((0, i))
    return QueryTree(nodes, edges)


class QueryGraph:
    """An undirected, node-labeled query graph for kGPM (Section 5).

    The kGPM semantics (from Cheng et al. [7], as summarized in the paper)
    map every query node to a same-labeled data node and score a match by
    the sum over *all* query edges of the shortest distance between mapped
    endpoints in the (undirected) data graph.
    """

    def __init__(
        self,
        labels: Mapping[QNodeId, Label],
        edges: Iterable[tuple[QNodeId, QNodeId]],
    ) -> None:
        if not labels:
            raise QueryError("a query graph needs at least one node")
        self._labels = dict(labels)
        self._adj: dict[QNodeId, set[QNodeId]] = {node: set() for node in self._labels}
        self._edges: set[frozenset[QNodeId]] = set()
        for u, v in edges:
            if u not in self._labels or v not in self._labels:
                raise QueryError(f"edge ({u!r}, {v!r}) references unknown node")
            if u == v:
                raise QueryError(f"self-loop on {u!r}")
            key = frozenset((u, v))
            if key in self._edges:
                continue
            self._edges.add(key)
            self._adj[u].add(v)
            self._adj[v].add(u)
        unreachable = self._unreachable_node()
        if unreachable is not None:
            raise QueryError(
                f"query graph must be connected: node {unreachable!r} has "
                "no path to the other query nodes"
            )

    def _unreachable_node(self) -> QNodeId | None:
        start = next(iter(self._labels))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for other in self._adj[node]:
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        for node in self._labels:
            if node not in seen:
                return node
        return None

    @property
    def num_nodes(self) -> int:
        """Number of query nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected query edges."""
        return len(self._edges)

    def nodes(self) -> Iterator[QNodeId]:
        """Iterate over query node ids."""
        return iter(self._labels)

    def label(self, node: QNodeId) -> Label:
        """Label of ``node``."""
        try:
            return self._labels[node]
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def labels(self) -> dict[QNodeId, Label]:
        """Return a copy of the node-to-label mapping."""
        return dict(self._labels)

    def neighbors(self, node: QNodeId) -> frozenset[QNodeId]:
        """Neighbors of ``node``."""
        try:
            return frozenset(self._adj[node])
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def edges(self) -> Iterator[tuple[QNodeId, QNodeId]]:
        """Iterate undirected edges as ordered pairs (deterministic order)."""
        for key in self._edges:
            u, v = sorted(key, key=repr)
            yield u, v

    def degree(self, node: QNodeId) -> int:
        """Number of incident edges of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError as exc:
            raise QueryError(f"query node {node!r} unknown") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryGraph(nodes={self.num_nodes}, edges={self.num_edges})"
