"""Graph traversal primitives: BFS/Dijkstra single-source distances.

These are the building blocks of the transitive-closure computation
(Section 3.1) and of the on-demand distance oracle used by the kGPM
verifier.  BFS is used for unit-weight graphs, Dijkstra otherwise.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

from repro.graph.digraph import LabeledDiGraph, NodeId


def bfs_distances(graph: LabeledDiGraph, source: NodeId) -> dict[NodeId, float]:
    """Shortest-path distances from ``source`` on a unit-weight graph.

    The source itself is *not* included (the closure records proper paths
    only, matching Definition of ``Gc``: an edge ``(v, v')`` exists iff
    there is a path from ``v`` to ``v'``; with no self-loops the distance
    of a node to itself via a cycle is still discovered, see below).

    Cycles through the source are handled: if ``source`` is reachable from
    itself via a non-empty path, it appears in the result with that cycle
    length.
    """
    dist: dict[NodeId, float] = {}
    queue: deque[NodeId] = deque([source])
    frontier_dist = {source: 0}
    while queue:
        node = queue.popleft()
        d = frontier_dist[node]
        for nxt in graph.successors(node):
            if nxt not in frontier_dist or (nxt == source and nxt not in dist):
                if nxt == source:
                    # A non-trivial cycle back to the source.
                    if source not in dist:
                        dist[source] = d + 1
                    continue
                frontier_dist[nxt] = d + 1
                dist[nxt] = d + 1
                queue.append(nxt)
    return dist


def dijkstra_distances(graph: LabeledDiGraph, source: NodeId) -> dict[NodeId, float]:
    """Shortest-path distances from ``source`` with positive edge weights.

    As with :func:`bfs_distances`, only non-empty paths are recorded; the
    source appears iff it lies on a cycle.
    """
    dist: dict[NodeId, float] = {}
    heap: list[tuple[float, int, NodeId]] = []
    counter = 0
    for nxt, weight in graph.successors(source).items():
        heapq.heappush(heap, (weight, counter, nxt))
        counter += 1
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for nxt, weight in graph.successors(node).items():
            if nxt not in dist:
                heapq.heappush(heap, (d + weight, counter, nxt))
                counter += 1
    return dist


def single_source_distances(
    graph: LabeledDiGraph, source: NodeId, unit_weights: bool | None = None
) -> dict[NodeId, float]:
    """Dispatch to BFS or Dijkstra depending on edge weights."""
    if unit_weights is None:
        unit_weights = graph.is_unit_weighted()
    if unit_weights:
        return bfs_distances(graph, source)
    return dijkstra_distances(graph, source)


def reachable_from(graph: LabeledDiGraph, source: NodeId) -> set[NodeId]:
    """Set of nodes reachable from ``source`` via a non-empty path."""
    seen: set[NodeId] = set()
    stack = list(graph.successors(source))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(n for n in graph.successors(node) if n not in seen)
    return seen


def connected_component(graph: LabeledDiGraph, source: NodeId) -> set[NodeId]:
    """Weakly-connected component containing ``source``."""
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for nxt in graph.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
        for prv in graph.predecessors(node):
            if prv not in seen:
                seen.add(prv)
                stack.append(prv)
    return seen


def random_walk_nodes(
    graph: LabeledDiGraph,
    start: NodeId,
    max_nodes: int,
    rng_choice: Callable,
    undirected: bool = True,
) -> set[NodeId]:
    """Collect up to ``max_nodes`` nodes by random walk from ``start``.

    Used by the workload extractors (the paper samples induced subgraphs of
    DBLP "by random walks").  ``rng_choice`` is ``random.Random.choice``.
    The walk restarts from a previously seen node when it gets stuck.
    """
    seen = {start}
    current = start
    stalled = 0
    while len(seen) < max_nodes and stalled < 4 * max_nodes:
        neighbors = list(graph.successors(current))
        if undirected:
            neighbors.extend(graph.predecessors(current))
        if not neighbors:
            current = rng_choice(sorted(seen, key=repr))
            stalled += 1
            continue
        current = rng_choice(neighbors)
        if current in seen:
            stalled += 1
        else:
            stalled = 0
            seen.add(current)
    return seen
