"""Serialization: load/save graphs, queries, and matches.

Two interchange formats:

* **TSV** for data graphs — one declaration per line, tab-separated::

      node <id> <label>
      edge <tail> <head> [weight]

  Lines starting with ``#`` and blank lines are ignored.  This mirrors the
  edge-list dumps common for citation/web datasets.

* **JSON** for query trees, query graphs, and match lists — explicit and
  self-describing, used by the CLI.

All node ids and labels round-trip as strings in these formats (matching
what external files can express); in-memory construction remains free to
use arbitrary hashables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

from repro.core.matches import Match
from repro.exceptions import GraphError, QueryError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import EdgeType, QueryGraph, QueryTree

# ----------------------------------------------------------------------
# Data graphs (TSV)
# ----------------------------------------------------------------------


def load_graph_tsv(source: str | Path | TextIO) -> LabeledDiGraph:
    """Parse a TSV graph file (see module docstring for the format)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_graph_tsv(handle)
    graph = LabeledDiGraph()
    pending_edges: list[tuple[str, str, float]] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        kind = parts[0]
        if kind == "node":
            if len(parts) != 3:
                raise GraphError(f"line {lineno}: node needs id and label")
            graph.add_node(parts[1], parts[2])
        elif kind == "edge":
            if len(parts) not in (3, 4):
                raise GraphError(f"line {lineno}: edge needs tail, head[, weight]")
            weight = float(parts[3]) if len(parts) == 4 else 1.0
            pending_edges.append((parts[1], parts[2], weight))
        else:
            raise GraphError(f"line {lineno}: unknown declaration {kind!r}")
    for tail, head, weight in pending_edges:
        graph.add_edge(tail, head, weight)
    return graph


def save_graph_tsv(graph: LabeledDiGraph, target: str | Path | TextIO) -> None:
    """Write a graph in the TSV format (stable, sorted order)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            save_graph_tsv(graph, handle)
            return
    for node in sorted(graph.nodes(), key=repr):
        target.write(f"node\t{node}\t{graph.label(node)}\n")
    for tail, head, weight in sorted(graph.edges(), key=repr):
        if weight == 1:
            target.write(f"edge\t{tail}\t{head}\n")
        else:
            target.write(f"edge\t{tail}\t{head}\t{weight:g}\n")


# ----------------------------------------------------------------------
# Queries (JSON)
# ----------------------------------------------------------------------


def query_tree_to_dict(query: QueryTree) -> dict:
    """JSON-ready representation of a query tree."""
    return {
        "kind": "query-tree",
        "nodes": {str(u): query.label(u) for u in query.nodes()},
        "edges": [
            {"parent": str(p), "child": str(c), "axis": etype.value}
            for p, c, etype in query.edges()
        ],
    }


def query_tree_from_dict(data: dict) -> QueryTree:
    """Inverse of :func:`query_tree_to_dict`."""
    if data.get("kind") != "query-tree":
        raise QueryError(f"not a query-tree document: kind={data.get('kind')!r}")
    labels = dict(data["nodes"])
    edges = []
    for edge in data["edges"]:
        axis = EdgeType(edge.get("axis", "//"))
        edges.append((edge["parent"], edge["child"], axis))
    return QueryTree(labels, edges)


def query_graph_to_dict(query: QueryGraph) -> dict:
    """JSON-ready representation of a kGPM query graph."""
    return {
        "kind": "query-graph",
        "nodes": {str(u): query.label(u) for u in query.nodes()},
        "edges": [{"u": str(u), "v": str(v)} for u, v in query.edges()],
    }


def query_graph_from_dict(data: dict) -> QueryGraph:
    """Inverse of :func:`query_graph_to_dict`."""
    if data.get("kind") != "query-graph":
        raise QueryError(f"not a query-graph document: kind={data.get('kind')!r}")
    return QueryGraph(
        dict(data["nodes"]),
        [(edge["u"], edge["v"]) for edge in data["edges"]],
    )


def load_query(source: str | Path | TextIO) -> QueryTree | QueryGraph:
    """Load a query (tree or graph) from a JSON file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_query(handle)
    data = json.load(source)
    kind = data.get("kind")
    if kind == "query-tree":
        return query_tree_from_dict(data)
    if kind == "query-graph":
        return query_graph_from_dict(data)
    raise QueryError(f"unknown query kind {kind!r}")


def save_query(
    query: QueryTree | QueryGraph, target: str | Path | TextIO
) -> None:
    """Save a query (tree or graph) as JSON."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            save_query(query, handle)
            return
    if isinstance(query, QueryTree):
        data = query_tree_to_dict(query)
    else:
        data = query_graph_to_dict(query)
    json.dump(data, target, indent=2, sort_keys=True)
    target.write("\n")


# ----------------------------------------------------------------------
# Matches (JSON)
# ----------------------------------------------------------------------


def matches_to_json(matches: Iterable[Match]) -> str:
    """Serialize a match list to a JSON string."""
    payload = [
        {
            "score": match.score,
            "assignment": {str(q): str(n) for q, n in match.assignment.items()},
        }
        for match in matches
    ]
    return json.dumps({"kind": "matches", "matches": payload}, indent=2)


def matches_from_json(text: str) -> list[Match]:
    """Inverse of :func:`matches_to_json` (string node ids)."""
    data = json.loads(text)
    if data.get("kind") != "matches":
        raise QueryError("not a matches document")
    return [
        Match(assignment=dict(entry["assignment"]), score=entry["score"])
        for entry in data["matches"]
    ]
