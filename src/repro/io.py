"""Serialization: load/save graphs, queries, and matches.

Two interchange formats:

* **TSV** for data graphs — one declaration per line, tab-separated::

      node <id> <label>
      edge <tail> <head> [weight]

  Lines starting with ``#`` and blank lines are ignored.  This mirrors the
  edge-list dumps common for citation/web datasets.

* **JSON** for query trees, query graphs, and match lists — explicit and
  self-describing, used by the CLI.

* **JSON dicts** for offline index artifacts (graphs, transitive closures,
  2-hop labels) — the interchange building blocks of ``repro.engine``
  index persistence (`MatchEngine.save_index` / `MatchEngine.load`).

This module also hosts the **index-format registry** (`INDEX_FORMATS`):
``MatchEngine.save_index`` defaults to the binary mmap-paged ``.ridx``
layout of :mod:`repro.storage.diskindex` (zero-parse cold start,
type-tagged str/int node ids, checksummed sections), with ``json`` kept
for interchange; ``MatchEngine.load`` sniffs the format from the file's
magic bytes.

Node ids and labels round-trip as strings in the TSV/JSON interchange
formats (matching what external files can express); the binary index
preserves str and int identities exactly, and the JSON index *refuses*
non-string node ids instead of silently coercing them (which would break
``Match`` equality after a reload).  In-memory construction remains free
to use arbitrary hashables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

from repro.closure.pll import PrunedLandmarkIndex
from repro.closure.transitive import TransitiveClosure
from repro.core.matches import Match
from repro.exceptions import GraphError, QueryError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import EdgeType, QueryGraph, QueryTree

# ----------------------------------------------------------------------
# Data graphs (TSV)
# ----------------------------------------------------------------------


def load_graph_tsv(source: str | Path | TextIO) -> LabeledDiGraph:
    """Parse a TSV graph file (see module docstring for the format)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_graph_tsv(handle)
    graph = LabeledDiGraph()
    pending_edges: list[tuple[str, str, float]] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        kind = parts[0]
        if kind == "node":
            if len(parts) != 3:
                raise GraphError(f"line {lineno}: node needs id and label")
            graph.add_node(parts[1], parts[2])
        elif kind == "edge":
            if len(parts) not in (3, 4):
                raise GraphError(f"line {lineno}: edge needs tail, head[, weight]")
            weight = float(parts[3]) if len(parts) == 4 else 1.0
            pending_edges.append((parts[1], parts[2], weight))
        else:
            raise GraphError(f"line {lineno}: unknown declaration {kind!r}")
    for tail, head, weight in pending_edges:
        graph.add_edge(tail, head, weight)
    return graph


def save_graph_tsv(graph: LabeledDiGraph, target: str | Path | TextIO) -> None:
    """Write a graph in the TSV format (stable, sorted order)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            save_graph_tsv(graph, handle)
            return
    for node in sorted(graph.nodes(), key=repr):
        target.write(f"node\t{node}\t{graph.label(node)}\n")
    for tail, head, weight in sorted(graph.edges(), key=repr):
        if weight == 1:
            target.write(f"edge\t{tail}\t{head}\n")
        else:
            target.write(f"edge\t{tail}\t{head}\t{weight:g}\n")


# ----------------------------------------------------------------------
# Queries (JSON)
# ----------------------------------------------------------------------


def query_tree_to_dict(query: QueryTree) -> dict:
    """JSON-ready representation of a query tree."""
    return {
        "kind": "query-tree",
        "nodes": {str(u): query.label(u) for u in query.nodes()},
        "edges": [
            {"parent": str(p), "child": str(c), "axis": etype.value}
            for p, c, etype in query.edges()
        ],
    }


def query_tree_from_dict(data: dict) -> QueryTree:
    """Inverse of :func:`query_tree_to_dict`."""
    if data.get("kind") != "query-tree":
        raise QueryError(f"not a query-tree document: kind={data.get('kind')!r}")
    labels = dict(data["nodes"])
    edges = []
    for edge in data["edges"]:
        axis = EdgeType(edge.get("axis", "//"))
        edges.append((edge["parent"], edge["child"], axis))
    return QueryTree(labels, edges)


def query_graph_to_dict(query: QueryGraph) -> dict:
    """JSON-ready representation of a kGPM query graph."""
    return {
        "kind": "query-graph",
        "nodes": {str(u): query.label(u) for u in query.nodes()},
        "edges": [{"u": str(u), "v": str(v)} for u, v in query.edges()],
    }


def query_graph_from_dict(data: dict) -> QueryGraph:
    """Inverse of :func:`query_graph_to_dict`."""
    if data.get("kind") != "query-graph":
        raise QueryError(f"not a query-graph document: kind={data.get('kind')!r}")
    return QueryGraph(
        dict(data["nodes"]),
        [(edge["u"], edge["v"]) for edge in data["edges"]],
    )


def load_query(source: str | Path | TextIO) -> QueryTree | QueryGraph:
    """Load a query (tree or graph) from a JSON file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_query(handle)
    data = json.load(source)
    kind = data.get("kind")
    if kind == "query-tree":
        return query_tree_from_dict(data)
    if kind == "query-graph":
        return query_graph_from_dict(data)
    raise QueryError(f"unknown query kind {kind!r}")


def save_query(
    query: QueryTree | QueryGraph, target: str | Path | TextIO
) -> None:
    """Save a query (tree or graph) as JSON."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            save_query(query, handle)
            return
    if isinstance(query, QueryTree):
        data = query_tree_to_dict(query)
    else:
        data = query_graph_to_dict(query)
    json.dump(data, target, indent=2, sort_keys=True)
    target.write("\n")


# ----------------------------------------------------------------------
# Matches (JSON)
# ----------------------------------------------------------------------


def matches_to_json(matches: Iterable[Match]) -> str:
    """Serialize a match list to a JSON string."""
    payload = [
        {
            "score": match.score,
            "assignment": {str(q): str(n) for q, n in match.assignment.items()},
        }
        for match in matches
    ]
    return json.dumps({"kind": "matches", "matches": payload}, indent=2)


def matches_from_json(text: str) -> list[Match]:
    """Inverse of :func:`matches_to_json` (string node ids)."""
    data = json.loads(text)
    if data.get("kind") != "matches":
        raise QueryError("not a matches document")
    return [
        Match(assignment=dict(entry["assignment"]), score=entry["score"])
        for entry in data["matches"]
    ]


# ----------------------------------------------------------------------
# Index artifacts (JSON dicts) — used by repro.engine persistence
# ----------------------------------------------------------------------


def graph_to_dict(graph: LabeledDiGraph) -> dict:
    """JSON-ready representation of a data graph (string ids/labels)."""
    return {
        "kind": "labeled-digraph",
        "nodes": {str(node): str(graph.label(node)) for node in graph.nodes()},
        "edges": [
            [str(tail), str(head), weight]
            for tail, head, weight in sorted(graph.edges(), key=repr)
        ],
    }


def graph_from_dict(data: dict) -> LabeledDiGraph:
    """Inverse of :func:`graph_to_dict`."""
    if data.get("kind") != "labeled-digraph":
        raise GraphError(
            f"not a labeled-digraph document: kind={data.get('kind')!r}"
        )
    graph = LabeledDiGraph()
    for node, label in data["nodes"].items():
        graph.add_node(node, label)
    for tail, head, weight in data["edges"]:
        graph.add_edge(tail, head, float(weight))
    return graph


def closure_to_dict(closure: TransitiveClosure) -> dict:
    """JSON-ready representation of a (possibly partial) closure."""
    rows: dict[str, dict[str, float]] = {}
    for tail, head, dist in closure.pairs():
        rows.setdefault(str(tail), {})[str(head)] = dist
    # Partial closures must remember sources with no successors too, so
    # emptiness stays distinguishable from "not a source".
    if closure.is_partial:
        for tail in closure.sources():
            rows.setdefault(str(tail), {})
    return {
        "kind": "transitive-closure",
        "partial": closure.is_partial,
        "rows": rows,
    }


def closure_from_dict(graph: LabeledDiGraph, data: dict) -> TransitiveClosure:
    """Inverse of :func:`closure_to_dict` — no shortest-path recompute."""
    if data.get("kind") != "transitive-closure":
        raise GraphError(
            f"not a transitive-closure document: kind={data.get('kind')!r}"
        )
    return TransitiveClosure.from_distances(
        graph, data["rows"], partial=bool(data.get("partial", False))
    )


def pll_to_dict(index: PrunedLandmarkIndex) -> dict:
    """JSON-ready representation of 2-hop labels (empty labels omitted)."""
    return {
        "kind": "pll-index",
        "out": {
            str(node): {str(lm): d for lm, d in labels.items()}
            for node, labels in index.label_out.items()
            if labels
        },
        "in": {
            str(node): {str(lm): d for lm, d in labels.items()}
            for node, labels in index.label_in.items()
            if labels
        },
    }


def pll_from_dict(graph: LabeledDiGraph, data: dict) -> PrunedLandmarkIndex:
    """Inverse of :func:`pll_to_dict` — no pruned-search recompute."""
    if data.get("kind") != "pll-index":
        raise GraphError(f"not a pll-index document: kind={data.get('kind')!r}")
    return PrunedLandmarkIndex.from_labels(graph, data["out"], data["in"])


# ----------------------------------------------------------------------
# Engine index persistence — the format registry
# ----------------------------------------------------------------------
#
# ``MatchEngine.save_index``/``load`` dispatch through here.  Two formats
# are registered:
#
# * ``binary`` (default) — the mmap-paged ``.ridx`` layout of
#   :mod:`repro.storage.diskindex`: zero-parse cold start, type-tagged
#   node ids (str/int preserved exactly), per-section checksums.
# * ``json`` — the self-describing interchange document (kept for
#   debugging and cross-tool exchange).  Its string coercion of node ids
#   is *refused loudly* at save time instead of silently breaking
#   ``Match`` equality after a round trip.
#
# ``load`` never needs a format argument: the binary magic is sniffed.

#: Persisted JSON-index format version (bumped on breaking layout changes).
INDEX_FORMAT_VERSION = 1

#: The format ``save_index`` uses when none is requested.
DEFAULT_INDEX_FORMAT = "binary"


def sniff_index_format(path: str | Path) -> str:
    """``"binary"`` for the ``.ridx`` magic, ``"sharded"`` for a shard
    manifest, else ``"json"`` (the JSON reader validates the kind)."""
    from repro.shard.manifest import sniff_is_shard_manifest
    from repro.storage.diskindex import sniff_is_binary_index

    if sniff_is_binary_index(path):
        return "binary"
    if sniff_is_shard_manifest(path):
        return "sharded"
    return "json"


def _save_index_json(engine, path: str | Path) -> None:
    from repro.exceptions import IndexFormatError

    offender = next(
        (
            node
            for node in engine.graph.nodes()
            if not isinstance(node, str)
        ),
        None,
    )
    if offender is not None:
        # The JSON document can only express string ids; silently writing
        # str(node) would make reloaded Match assignments compare unequal
        # to in-memory ones.  Refuse instead of corrupting identities.
        raise IndexFormatError(
            f"node id {offender!r} ({type(offender).__name__}) cannot "
            "round-trip through the JSON index format, which stringifies "
            'ids; use save_index(path, format="binary") to preserve '
            "str/int identities, or rename the nodes to strings"
        )
    document = {
        "kind": "repro-index",
        "version": INDEX_FORMAT_VERSION,
        "backend": engine.backend.name,
        "config": {
            "block_size": engine.config.block_size,
            "hot_fraction": engine.config.hot_fraction,
        },
        "graph": graph_to_dict(engine.graph),
        "payload": engine.backend.payload(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")


def _assemble_engine(
    engine_cls, graph, stored_config: dict, backend_name: str, make_backend,
    overrides: dict,
):
    """Shared load plumbing: merge config, restore backend, build engine."""
    from repro.engine.config import EngineConfig

    overrides = dict(overrides)
    overrides.setdefault("block_size", stored_config.get("block_size"))
    overrides.setdefault("hot_fraction", stored_config.get("hot_fraction"))
    overrides = {k: v for k, v in overrides.items() if v is not None}
    # Build with backend="auto" first: the constrained backend's
    # workload only exists inside the persisted payload, and config
    # validation would otherwise demand it up front.
    config = EngineConfig(**{**overrides, "backend": "auto"})
    backend = make_backend(graph, config)
    if backend_name == "constrained":
        config = config.replace(workload=backend.workload)
    config = config.replace(backend=backend_name)
    return engine_cls(graph, config, _backend=backend)


def _load_index_json(engine_cls, path: str | Path, overrides: dict):
    from repro.engine.backends import restore_backend
    from repro.exceptions import EngineError

    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("kind") != "repro-index":
        raise EngineError(
            f"not a repro-index document: kind={document.get('kind')!r}"
        )
    version = document.get("version")
    if version != INDEX_FORMAT_VERSION:
        raise EngineError(
            f"unsupported index version {version!r} "
            f"(this build reads version {INDEX_FORMAT_VERSION})"
        )
    backend_name = document["backend"]
    graph = graph_from_dict(document["graph"])

    def make_backend(graph, config):
        return restore_backend(graph, config, backend_name, document["payload"])

    return _assemble_engine(
        engine_cls, graph, document.get("config", {}), backend_name,
        make_backend, overrides,
    )


def _save_index_binary(engine, path: str | Path) -> None:
    from repro.storage.diskindex import write_engine_index

    write_engine_index(engine, path)


def _load_index_binary(engine_cls, path: str | Path, overrides: dict):
    from repro.engine.backends import restore_backend_from_disk
    from repro.storage.diskindex import open_engine_index

    graph, stored_config, backend_name, artifacts = open_engine_index(path)

    def make_backend(graph, config):
        return restore_backend_from_disk(graph, config, backend_name, artifacts)

    return _assemble_engine(
        engine_cls, graph, stored_config, backend_name, make_backend, overrides
    )


def _save_index_sharded(engine, path: str | Path) -> None:
    from repro.exceptions import IndexFormatError

    raise IndexFormatError(
        "a sharded index is written per shard, not through save_index; "
        "use repro.shard.shard_index(graph, path, num_shards) or "
        "`repro index --shards N`"
    )


def _load_index_sharded(engine_cls, path: str | Path, overrides: dict):
    """A shard manifest loads as a :class:`ShardedEngine` transparently.

    ``MatchEngine.load`` (and the CLI's ``--load-index``) therefore boot
    a scatter-gather engine whenever the path names a manifest — callers
    get the same query surface either way.
    """
    from repro.shard.engine import ShardedEngine

    return ShardedEngine.load(path, **overrides)


#: The registry: format name -> (save, load) implementations.
INDEX_FORMATS: dict[str, tuple] = {
    "json": (_save_index_json, _load_index_json),
    "binary": (_save_index_binary, _load_index_binary),
    "sharded": (_save_index_sharded, _load_index_sharded),
}


def save_engine_index(engine, path: str | Path, format: str | None = None) -> None:
    """Persist ``engine``'s offline artifacts in the requested format."""
    from repro.exceptions import EngineError

    name = format if format is not None else DEFAULT_INDEX_FORMAT
    entry = INDEX_FORMATS.get(name)
    if entry is None:
        raise EngineError(
            f"unknown index format {name!r}; choose from "
            f"{tuple(sorted(INDEX_FORMATS))}"
        )
    entry[0](engine, path)


def load_engine_index(engine_cls, path: str | Path, **overrides):
    """Rebuild an engine from a persisted index, sniffing the format."""
    return INDEX_FORMATS[sniff_index_format(path)][1](
        engine_cls, path, overrides
    )
