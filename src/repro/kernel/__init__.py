"""Compiled query kernels: plans lowered to flat specialized programs.

``compile_program`` lowers a ``CompiledQuery`` into a store-independent
:class:`KernelProgram` (a small register-style opcode sequence plus the
structure tables its executor needs); ``bind_program`` executes the
scan/probe/accumulate ops against a closure store into a
:class:`BoundProgram` of flat arrays; ``BoundProgram.run()`` starts
interpreter-exact Lawler enumerations (:class:`KernelRun`).

The planner selects the tier (``QueryPlan.tier == "compiled"``); the
``REPRO_KERNEL`` environment variable is the kill switch and
``REPRO_COMPACT_NUMPY`` (or an explicit ``use_numpy``) selects the
vectorized bind path.  See DESIGN.md, "Compiled kernel tier".
"""

from repro.kernel.executor import BoundProgram, KernelRun, bind_program
from repro.kernel.program import (
    KERNEL_ALGORITHMS,
    KERNEL_LOAD_CAP,
    TIER_COMPILED,
    TIER_INTERPRETED,
    KernelOp,
    KernelProgram,
    KernelUnsupported,
    compile_program,
    kernel_enabled,
    supports,
)

__all__ = [
    "KERNEL_ALGORITHMS",
    "KERNEL_LOAD_CAP",
    "TIER_COMPILED",
    "TIER_INTERPRETED",
    "BoundProgram",
    "KernelOp",
    "KernelProgram",
    "KernelRun",
    "KernelUnsupported",
    "bind_program",
    "compile_program",
    "kernel_enabled",
    "supports",
]
