"""Bind + execute kernel programs over flat arrays.

:func:`bind_program` runs a :class:`~repro.kernel.program.KernelProgram`
against a closure store: it executes the SCAN/FANOUT/PROBE/DIRECT ops by
streaming the store's pair tables into flat columns, then the ACCUM and
ROOTS ops by lowering the interpreter's ``bs`` scores and ``StaticSlot``
orderings into CSR arrays (offsets + keys + child indexes) frozen in the
interpreter's exact ``(key, repr)`` tie order.  The result is a
:class:`BoundProgram` — pure arrays, no per-node objects — from which
:meth:`BoundProgram.run` starts fresh :class:`KernelRun` enumerations
(the PUSH op: the Lawler loop over array slices).

Equivalence contract (fuzz-pinned byte-for-byte in
``tests/test_differential_fuzz.py``): for every query the kernel
supports, a :class:`KernelRun` produces the *identical* match sequence —
same assignments, same scores, same order, including tie order — as
``TopkEnumerator`` over ``build_runtime_graph``.  The load notes:

* ``StaticSlot`` extraction order is a pure function of the entry set
  sorted by ``(key, repr(payload))`` — insertion order never matters —
  so slots become pre-sorted array slices and ``ith(rank)`` becomes
  O(1) indexing.
* Run-time-graph viability equals ``bs``-existence, and the
  interpreter's top-down prune never removes entries from surviving
  root-reachable slots, so the kernel skips the prune entirely.
* Dead children are *excluded* from slot rows (never carried with
  ``inf`` keys, which would corrupt Case-2 second-best peeks); dead
  branches surface only as ``inf`` parent totals.
* All float arithmetic replays the interpreter's operation sequence:
  ``bs[child] + dist`` per row, per-child ``+=`` of group minimums in
  children order, incremental ``score + (next - prev)`` deltas.

The numpy batch path (``use_numpy=True`` or the ``REPRO_COMPACT_NUMPY``
flag) vectorizes the bind — many candidate rows per opcode at once via
:func:`repro.compact.accel.lower_slots` — and converts the results to
the same stdlib arrays, so enumeration code is shared and the two paths
are bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
import time
from array import array
from typing import Iterator

from repro.compact import accel
from repro.core.matches import EnumerationStats, Match
from repro.exceptions import MatchingError
from repro.kernel.program import KernelProgram

_INF = float("inf")

#: Sentinel edge index addressing the root slot.
_ROOT_SLOT = -1


def bind_program(
    program: KernelProgram,
    store,
    *,
    matcher,
    node_weight=None,
    use_numpy: bool | None = None,
) -> "BoundProgram":
    """Execute the program's scan/probe/accumulate ops against ``store``.

    ``matcher`` is the label matcher of the compiled query
    (``compiled.effective_matcher(config.label_matcher)``);
    ``node_weight`` the optional per-node weight callable;
    ``use_numpy`` overrides the ``REPRO_COMPACT_NUMPY`` flag (see
    :func:`repro.compact.accel.resolve_numpy`).

    The bound result is store-snapshot-specific but reusable: every
    :meth:`BoundProgram.run` call starts an independent enumeration over
    the same frozen arrays, which is what makes warm repeated serving
    queries cheap.
    """
    np = accel.resolve_numpy(use_numpy)
    started = time.perf_counter()
    graph = store.graph
    alphabet = graph.labels()
    order = program.order
    n = len(order)

    # SCAN / FANOUT + PROBE (+ pushed-down DIRECT): stream each edge's
    # pair-table rows into flat columns, expanding query labels through
    # the matcher exactly as ``build_runtime_graph`` does.
    def expand(pos: int):
        data_labels = matcher.data_labels_for(program.labels[pos], alphabet)
        return [None] if data_labels is None else data_labels

    raw_edges: list[tuple[list, list, list[float]]] = []
    for parent_pos, child_pos, direct in program.edge_specs:
        tails: list = []
        heads: list = []
        dists: list[float] = []
        for tail_label in expand(parent_pos):
            for head_label in expand(child_pos):
                for tail, head, dist in store.read_pair_table(
                    tail_label, head_label, direct_only=direct
                ):
                    tails.append(tail)
                    heads.append(head)
                    dists.append(dist)
        raw_edges.append((tails, heads, dists))

    # Candidate registers: sorted by repr — the interpreter's canonical
    # node order — with per-candidate repr((qnode, node)) strings frozen
    # once (slot tie-breaks compare the repr of the full payload tuple).
    cand_sets: list[set] = [set() for _ in range(n)]
    if n == 1:
        data_labels = matcher.data_labels_for(program.labels[0], alphabet)
        if data_labels is None:
            cand_sets[0] = set(graph.nodes())
        else:
            for data_label in data_labels:
                cand_sets[0] |= set(graph.nodes_with_label(data_label))
    else:
        for e, (parent_pos, child_pos, _direct) in enumerate(program.edge_specs):
            tails, heads, _dists = raw_edges[e]
            cand_sets[parent_pos].update(tails)
            cand_sets[child_pos].update(heads)
    nodes = [sorted(s, key=repr) for s in cand_sets]
    index = [{v: i for i, v in enumerate(vs)} for vs in nodes]
    reprs = [
        [repr((order[pos], v)) for v in vs] for pos, vs in enumerate(nodes)
    ]
    if node_weight is None:
        weights = [[0.0] * len(vs) for vs in nodes]
    else:
        weights = [[float(node_weight(v)) for v in vs] for vs in nodes]

    # Translate edge endpoints into candidate-index space.
    edge_cols: list[tuple[array, array, array]] = []
    for e, (parent_pos, child_pos, _direct) in enumerate(program.edge_specs):
        tails, heads, dists = raw_edges[e]
        ip = index[parent_pos]
        ic = index[child_pos]
        edge_cols.append(
            (
                array("q", (ip[v] for v in tails)),
                array("q", (ic[v] for v in heads)),
                array("d", dists),
            )
        )

    # ACCUM: bottom-up bs totals + per-edge slot CSR, scalar or numpy.
    num_edges = len(program.edge_specs)
    bs: list[list[float]] = [None] * n  # type: ignore[list-item]
    alive: list[list[bool]] = [None] * n  # type: ignore[list-item]
    slot_off: list[array] = [None] * num_edges  # type: ignore[list-item]
    slot_keys: list[array] = [None] * num_edges  # type: ignore[list-item]
    slot_child: list[array] = [None] * num_edges  # type: ignore[list-item]
    for pos in range(n - 1, -1, -1):
        num_cands = len(nodes[pos])
        kids = program.child_edges[pos]
        if not kids:
            bs[pos] = list(weights[pos])
            alive[pos] = [True] * num_cands
            continue
        if np is not None:
            totals = np.asarray(weights[pos], dtype=np.float64)
            for e, child_pos in kids:
                parents_col, children_col, dists_col = edge_cols[e]
                offsets, keys, childs, mins = accel.lower_slots(
                    np,
                    parents_col,
                    children_col,
                    dists_col,
                    bs[child_pos],
                    alive[child_pos],
                    reprs[child_pos],
                    num_cands,
                )
                slot_off[e] = array("q", offsets.tolist())
                slot_keys[e] = array("d", keys.tolist())
                slot_child[e] = array("q", childs.tolist())
                totals = totals + mins
        else:
            totals = list(weights[pos])
            for e, child_pos in kids:
                parents_col, children_col, dists_col = edge_cols[e]
                alive_child = alive[child_pos]
                bs_child = bs[child_pos]
                reprs_child = reprs[child_pos]
                groups: list[list] = [[] for _ in range(num_cands)]
                for row in range(len(parents_col)):
                    child = children_col[row]
                    if alive_child[child]:
                        groups[parents_col[row]].append(
                            (
                                bs_child[child] + dists_col[row],
                                reprs_child[child],
                                child,
                            )
                        )
                offsets = array("q", [0] * (num_cands + 1))
                keys = array("d")
                childs = array("q")
                filled = 0
                for cand in range(num_cands):
                    group = groups[cand]
                    if group:
                        group.sort()
                        totals[cand] += group[0][0]
                        for key, _rep, child in group:
                            keys.append(key)
                            childs.append(child)
                        filled += len(group)
                    else:
                        totals[cand] = _INF
                    offsets[cand + 1] = filled
                slot_off[e] = offsets
                slot_keys[e] = keys
                slot_child[e] = childs
        bs[pos] = [float(t) for t in totals]
        alive[pos] = [t < _INF for t in bs[pos]]

    # ROOTS: the root slot, sorted by (bs, repr((root, node))).
    root_entries = sorted(
        (bs[0][cand], reprs[0][cand], cand)
        for cand in range(len(nodes[0]))
        if alive[0][cand]
    )
    root_keys = array("d", (entry[0] for entry in root_entries))
    root_cand = array("q", (entry[2] for entry in root_entries))

    bound = BoundProgram(
        program=program,
        nodes=nodes,
        weights=weights,
        slot_off=slot_off,
        slot_keys=slot_keys,
        slot_child=slot_child,
        root_keys=root_keys,
        root_cand=root_cand,
        mode="numpy" if np is not None else "scalar",
        bind_seconds=time.perf_counter() - started,
    )
    return bound


class BoundProgram:
    """A program bound to one store snapshot: frozen flat arrays only."""

    __slots__ = (
        "program",
        "n",
        "nodes",
        "weights",
        "slot_off",
        "slot_keys",
        "slot_child",
        "root_keys",
        "root_cand",
        "mode",
        "bind_seconds",
    )

    def __init__(
        self,
        *,
        program: KernelProgram,
        nodes,
        weights,
        slot_off,
        slot_keys,
        slot_child,
        root_keys,
        root_cand,
        mode: str,
        bind_seconds: float,
    ) -> None:
        self.program = program
        self.n = program.num_positions
        self.nodes = nodes
        self.weights = weights
        self.slot_off = slot_off
        self.slot_keys = slot_keys
        self.slot_child = slot_child
        self.root_keys = root_keys
        self.root_cand = root_cand
        self.mode = mode
        self.bind_seconds = bind_seconds

    def top1_score(self) -> float | None:
        """Score of the best match, or ``None`` when no match exists."""
        return self.root_keys[0] if len(self.root_keys) else None

    @property
    def num_candidates(self) -> int:
        return sum(len(vs) for vs in self.nodes)

    @property
    def num_slot_entries(self) -> int:
        return sum(len(keys) for keys in self.slot_keys)

    def run(self) -> "KernelRun":
        """Start a fresh enumeration over the bound arrays (the PUSH op)."""
        return KernelRun(self)


class _Ref:
    """Compact candidate in array space: parent link + one replacement.

    ``edge``/``pcand`` address the slot the replacement was drawn from:
    ``edge == _ROOT_SLOT`` is the root slot, otherwise the CSR group of
    parent candidate ``pcand`` on edge ``edge``.
    """

    __slots__ = (
        "score",
        "parent",
        "div_pos",
        "cand",
        "rank",
        "edge",
        "pcand",
        "round_heap",
        "assign",
    )

    def __init__(self, score, parent, div_pos, cand, rank, edge, pcand):
        self.score = score
        self.parent = parent
        self.div_pos = div_pos
        self.cand = cand
        self.rank = rank
        self.edge = edge
        self.pcand = pcand
        self.round_heap = None
        self.assign = None


class KernelRun:
    """One enumeration over a :class:`BoundProgram` (interpreter-exact).

    Implements the enumerator protocol (``top_k`` / ``stream`` /
    ``results`` / ``stats``) so engines and ``ResultStream`` treat it
    like any interpreter enumerator.  The heap discipline mirrors
    ``TopkEnumerator`` exactly: a global queue with insertion-counter
    tie-breaks, per-round ``Q_l`` heaps with local counters, promote
    before divide.
    """

    def __init__(self, bound: BoundProgram) -> None:
        self._b = bound
        self.stats = EnumerationStats(init_seconds=bound.bind_seconds)
        self.stats.extra["tier"] = "compiled"
        self.stats.extra["bind_mode"] = bound.mode
        self._queue: list = []
        self._counter = itertools.count()
        self._started = False
        self.results: list[Match] = []

    # ------------------------------------------------------------------
    def _slot_bounds(self, edge: int, pcand: int) -> tuple[array, array, int, int]:
        """(keys, childs, start, end) of the addressed slot slice."""
        b = self._b
        if edge == _ROOT_SLOT:
            return b.root_keys, b.root_cand, 0, len(b.root_keys)
        offsets = b.slot_off[edge]
        return b.slot_keys[edge], b.slot_child[edge], offsets[pcand], offsets[pcand + 1]

    def top1_score(self) -> float | None:
        return self._b.top1_score()

    # ------------------------------------------------------------------
    def _seed(self) -> None:
        self._started = True
        b = self._b
        if not len(b.root_keys):
            return
        score = b.root_keys[0]
        ref = _Ref(score, None, 0, b.root_cand[0], 1, _ROOT_SLOT, 0)
        heapq.heappush(self._queue, (score, next(self._counter), ref))

    def _promote_sibling(self, ref: _Ref) -> None:
        heap = ref.round_heap
        if not heap:
            return
        score, _seq, sibling = heapq.heappop(heap)
        sibling.round_heap = heap
        heapq.heappush(self._queue, (score, next(self._counter), sibling))

    def _materialize(self, ref: _Ref) -> list:
        if ref.assign is not None:
            return ref.assign
        b = self._b
        if ref.parent is None:
            assign = [-1] * b.n
        else:
            if ref.parent.assign is None:
                raise MatchingError("parent match must be materialized first")
            assign = list(ref.parent.assign)
        assign[ref.div_pos] = ref.cand
        stack = [ref.div_pos]
        child_edges = b.program.child_edges
        slot_off = b.slot_off
        slot_child = b.slot_child
        while stack:
            pos = stack.pop()
            cand = assign[pos]
            for e, child_pos in child_edges[pos]:
                start = slot_off[e][cand]
                if start == slot_off[e][cand + 1]:
                    raise MatchingError(
                        f"no viable child on edge {e} of candidate {cand} "
                        "during kernel materialization"
                    )
                assign[child_pos] = slot_child[e][start]
                stack.append(child_pos)
        ref.assign = assign
        return assign

    def _divide(self, ref: _Ref) -> None:
        b = self._b
        stats = self.stats
        assign = ref.assign
        candidates: list[_Ref] = []

        # Case 1: next rank at the popped match's own slot.
        stats.case1_requests += 1
        keys, childs, start, end = self._slot_bounds(ref.edge, ref.pcand)
        nxt = start + ref.rank  # index of the (rank+1)-th entry
        if nxt >= end:
            stats.empty_subspaces += 1
        else:
            new_score = ref.score + (keys[nxt] - keys[nxt - 1])
            candidates.append(
                _Ref(
                    new_score,
                    ref,
                    ref.div_pos,
                    childs[nxt],
                    ref.rank + 1,
                    ref.edge,
                    ref.pcand,
                )
            )

        # Case 2: second-best sibling at every later BFS position.
        parent_pos = b.program.parent_pos
        edge_in = b.program.edge_in
        slot_off = b.slot_off
        for pos in range(ref.div_pos + 1, b.n):
            edge = edge_in[pos]
            pcand = assign[parent_pos[pos]]
            stats.case2_requests += 1
            offsets = slot_off[edge]
            start = offsets[pcand]
            if offsets[pcand + 1] - start < 2:
                stats.empty_subspaces += 1
                continue
            keys2 = b.slot_keys[edge]
            new_score = ref.score + (keys2[start + 1] - keys2[start])
            candidates.append(
                _Ref(
                    new_score,
                    ref,
                    pos,
                    b.slot_child[edge][start + 1],
                    2,
                    edge,
                    pcand,
                )
            )

        stats.candidates_generated += len(candidates)
        if not candidates:
            return
        best_index = min(range(len(candidates)), key=lambda i: candidates[i].score)
        best = candidates.pop(best_index)
        if candidates:
            round_heap: list = []
            local = itertools.count()
            for cand in candidates:
                heapq.heappush(round_heap, (cand.score, next(local), cand))
            best.round_heap = round_heap
        heapq.heappush(self._queue, (best.score, next(self._counter), best))

    def _advance(self) -> Match | None:
        if not self._started:
            self._seed()
        if not self._queue:
            return None
        score, _seq, ref = heapq.heappop(self._queue)
        self._promote_sibling(ref)
        assign = self._materialize(ref)
        self.stats.rounds += 1
        self._divide(ref)
        b = self._b
        match = Match(
            assignment={
                b.program.order[pos]: b.nodes[pos][assign[pos]]
                for pos in range(b.n)
            },
            score=score,
        )
        self.results.append(match)
        return match

    def __iter__(self) -> Iterator[Match]:
        return self.stream()

    def stream(self) -> Iterator[Match]:
        """Yield matches in non-decreasing score order (replays cache)."""
        index = 0
        while True:
            while index < len(self.results):
                yield self.results[index]
                index += 1
            if self._advance() is None:
                return

    def top_k(self, k: int) -> list[Match]:
        """Return up to ``k`` best matches (fewer when G has fewer)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        while len(self.results) < k:
            if self._advance() is None:
                break
        self.stats.enum_seconds += time.perf_counter() - started
        return list(self.results[:k])
