"""Lowering: a ``CompiledQuery`` becomes a flat kernel program.

The compiled tier replaces per-node interpreter walks (dict-of-slots
run-time graphs, ``StaticSlot`` objects, repr-keyed orderings recomputed
per request) with one *program*: a short register-style opcode sequence
plus the structural tables an executor needs to run it over flat arrays.

The opcode set (see DESIGN.md "Compiled kernel tier"):

``SCAN``
    label-range scan — candidates of one query node from a single label
    range of the interned id space.
``FANOUT``
    wildcard / containment fan-out — the matcher expands one query label
    into several label ranges (or the whole alphabet for ``*``).
``PROBE``
    closure-row probe — stream the ``L`` pair-table rows of one query
    edge into flat (parent, child, distance) columns.
``DIRECT``
    direct-child check — a ``/`` axis restricts the probed rows to
    closure entries realized by a direct data edge.  The check is pushed
    down into the probe's read (the store filters on its per-pair direct
    flags); the opcode marks the restriction in the listing.
``ACCUM``
    score-accumulate — bottom-up ``bs`` scores plus per-(parent, child)
    slot arrays sorted by ``(key, repr)`` (the interpreter's exact tie
    order, frozen at bind time).
``ROOTS``
    build the root slot from the surviving root candidates.
``PUSH``
    top-k push — the Lawler enumeration loop over the bound arrays.

A :class:`KernelProgram` is *store-independent*: it captures only query
structure (BFS positions, parent/child edge tables, axes, labels), so a
serving layer can cache it alongside the plan and bind it to whatever
snapshot is current.  Binding and execution live in
:mod:`repro.kernel.executor`.

Layering: this package sits below the engine and serving layers and must
never import them (rule RL001 of ``repro lint``, ``config/layers.toml``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.graph.query import EdgeType
from repro.query.compiler import CompiledQuery

#: Execution-tier names surfaced by plans (``QueryPlan.tier``).
TIER_COMPILED = "compiled"
TIER_INTERPRETED = "interpreted"

#: Planner guard: the kernel fully loads its run-time graph, so plans
#: whose estimated copy count exceeds this cap stay on the lazy
#: interpreter (Topk-EN touches a sliver of a huge candidate space; a
#: full load would not).  ``max(cap, config.full_load_threshold)`` is
#: the effective bound.
KERNEL_LOAD_CAP = 4096

#: The tree algorithms whose plans the compiled tier may replace.  The
#: kernel executes the fully-loaded reference semantics (byte-for-byte
#: the ``topk`` interpreter); ``topk-en`` plans share the repo-wide
#: comparable top-k contract, so replacing their execution is sound.
KERNEL_ALGORITHMS = ("topk", "topk-en")

_KERNEL_OFF = frozenset({"0", "false", "no", "off"})


class KernelUnsupported(Exception):
    """Raised when a query shape cannot lower to a kernel program."""


def kernel_enabled() -> bool:
    """True unless the ``REPRO_KERNEL`` kill switch turns the tier off."""
    return os.environ.get("REPRO_KERNEL", "").strip().lower() not in _KERNEL_OFF


def supports(compiled: CompiledQuery, algorithm: str | None = None) -> bool:
    """True when ``compiled`` (under ``algorithm``) can execute compiled.

    Cyclic ``graph(...)`` patterns stay on the kGPM interpreter; the
    DP baselines and brute force stay interpreted by design (they are
    the paper's comparison points, not hot paths).
    """
    if compiled.is_cyclic:
        return False
    if algorithm is not None and algorithm not in KERNEL_ALGORITHMS:
        return False
    return True


@dataclass(frozen=True)
class KernelOp:
    """One flat-program instruction: opcode, destination register, text."""

    code: str
    dest: str
    text: str

    def render(self, index: int) -> str:
        return f"{index:3d}  {self.code:<7} {self.dest:<5} {self.text}"


class KernelProgram:
    """A lowered query: opcode listing + the executor's structure tables.

    Equality and hashing are by identity — plan caches key programs by
    the object, and two lowerings of the same query are interchangeable
    but never compared.
    """

    __slots__ = (
        "query",
        "order",
        "labels",
        "wildcards",
        "parent_pos",
        "edge_in",
        "child_edges",
        "edge_specs",
        "ops",
        "matcher_kind",
    )

    def __init__(self, compiled: CompiledQuery) -> None:
        query = compiled.tree
        self.query = query
        order = tuple(query.bfs_order())
        self.order = order
        pos_of = {u: i for i, u in enumerate(order)}
        self.labels = tuple(query.label(u) for u in order)
        self.wildcards = tuple(query.is_wildcard(u) for u in order)
        self.parent_pos = tuple(
            None if query.parent(u) is None else pos_of[query.parent(u)]
            for u in order
        )
        # Edges indexed in (parent BFS position, children order): edge e
        # goes parent_pos -> child_pos, direct-only when the axis is '/'.
        edge_specs: list[tuple[int, int, bool]] = []
        child_edges: list[tuple[tuple[int, int], ...]] = []
        edge_in: list[int | None] = [None] * len(order)
        for i, u in enumerate(order):
            mine = []
            for child in query.children(u):
                j = pos_of[child]
                direct = query.edge_type(u, child) is EdgeType.CHILD
                e = len(edge_specs)
                edge_specs.append((i, j, direct))
                edge_in[j] = e
                mine.append((e, j))
            child_edges.append(tuple(mine))
        self.edge_specs = tuple(edge_specs)
        self.child_edges = tuple(child_edges)
        self.edge_in = tuple(edge_in)
        self.matcher_kind = compiled.matcher_kind
        self.ops = tuple(self._lower_ops(compiled))

    # ------------------------------------------------------------------
    @property
    def num_positions(self) -> int:
        return len(self.order)

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def _label_text(self, pos: int) -> str:
        if self.wildcards[pos]:
            return "*"
        return str(self.labels[pos])

    def _lower_ops(self, compiled: CompiledQuery) -> list[KernelOp]:
        ops: list[KernelOp] = []
        # Only a query-compiled non-equality matcher (containment) fans
        # one query label out statically; "engine-default" resolves at
        # bind time and almost always means plain equality scans.
        fanout = self.matcher_kind not in ("equality", "engine-default")
        for i, qnode in enumerate(self.order):
            wild = self.wildcards[i]
            code = "FANOUT" if (wild or fanout) else "SCAN"
            source = (
                "L[*] (alphabet fan-out)"
                if wild
                else f"L[{self._label_text(i)}]"
                + (" (matcher fan-out)" if fanout else "")
            )
            ops.append(
                KernelOp(code, f"r{i}", f"<- {source}  ; candidates of {qnode}")
            )
        for e, (i, j, direct) in enumerate(self.edge_specs):
            axis = "/" if direct else "//"
            ops.append(
                KernelOp(
                    "PROBE",
                    f"e{e}",
                    f"<- rows(r{i} -> r{j})  ; closure rows "
                    f"{self.order[i]}{axis}{self.order[j]}",
                )
            )
            if direct:
                ops.append(
                    KernelOp(
                        "DIRECT",
                        f"e{e}",
                        f"<- direct(e{e})  ; '/' axis keeps direct edges",
                    )
                )
        for i in range(len(self.order) - 1, -1, -1):
            kids = self.child_edges[i]
            terms = " + ".join(f"min e{e}" for e, _ in kids)
            rhs = f"w(r{i})" + (f" + {terms}" if terms else "")
            ops.append(
                KernelOp(
                    "ACCUM",
                    f"r{i}",
                    f"bs[r{i}] <- {rhs}  ; slots sorted by (key, repr)",
                )
            )
        ops.append(KernelOp("ROOTS", "root", "<- viable(r0)  ; root slot"))
        ops.append(KernelOp("PUSH", "topk", "<- lawler(root)  ; enumerate best-first"))
        return ops

    def listing(self) -> str:
        """The opcode listing (what ``repro query show --compiled`` prints)."""
        return "\n".join(op.render(i) for i, op in enumerate(self.ops))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelProgram({self.num_positions} positions, "
            f"{len(self.edge_specs)} edges, {self.num_ops} ops)"
        )


def compile_program(compiled: CompiledQuery) -> KernelProgram:
    """Lower ``compiled`` into a :class:`KernelProgram`.

    Raises :class:`KernelUnsupported` for shapes the kernel does not
    execute (cyclic patterns run in the kGPM interpreter).
    """
    if compiled.is_cyclic:
        raise KernelUnsupported(
            "cyclic graph(...) patterns execute in the kGPM interpreter"
        )
    return KernelProgram(compiled)
