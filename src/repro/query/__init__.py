"""Declarative query layer: DSL, fluent builders, and the query compiler.

Three ways to write the same query, all normalized by
:func:`compile_query` before execution:

* **DSL text** — ``engine.top_k("A//B[C][*]/D", k=5)``.  ``//`` is the
  descendant axis, ``/`` the direct-child axis, ``[...]`` a branch
  predicate, ``*`` a wildcard node, ``~tok1+tok2`` a containment label,
  ``{...}`` escapes exotic labels, and ``graph(a:A, b:B; a-b, ...)``
  writes cyclic kGPM patterns.
* **Fluent builders** — ``Q("A").child(Q("B").descendant("C"))`` and
  ``Pattern.from_edges({...}, [...])``.
* **Raw objects** — :class:`~repro.graph.query.QueryTree` /
  ``QueryGraph``, unchanged.

:func:`parse` turns DSL text into a typed AST (raising caret-annotated
:class:`~repro.exceptions.QuerySyntaxError`); :func:`to_dsl` pretty-prints
any query form back to canonical DSL (``parse(to_dsl(q)) == q``).
"""

from repro.exceptions import QuerySyntaxError
from repro.query.ast import (
    GraphPattern,
    LabelKind,
    LabelSpec,
    PatternEdge,
    PatternNode,
    TreePattern,
)
from repro.query.builder import Pattern, Q
from repro.query.compiler import (
    CompiledLabelMatcher,
    CompiledQuery,
    ContainsLabel,
    compile_query,
    to_dsl,
)
from repro.query.lexer import Token, TokenKind, tokenize
from repro.query.parser import parse

__all__ = [
    "Q",
    "Pattern",
    "parse",
    "to_dsl",
    "compile_query",
    "CompiledQuery",
    "CompiledLabelMatcher",
    "ContainsLabel",
    "QuerySyntaxError",
    "TreePattern",
    "GraphPattern",
    "PatternNode",
    "PatternEdge",
    "LabelSpec",
    "LabelKind",
    "Token",
    "TokenKind",
    "tokenize",
]
