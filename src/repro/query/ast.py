"""Typed AST for the declarative query layer.

The DSL parser (:mod:`repro.query.parser`) and the fluent builder
(:mod:`repro.query.builder`) both produce these nodes; the compiler
(:mod:`repro.query.compiler`) lowers them to the physical
:class:`~repro.graph.query.QueryTree` / :class:`~repro.graph.query.QueryGraph`
the engine executes.  Everything is a frozen dataclass, so two queries are
equal exactly when they are structurally identical — the property the
``parse(to_dsl(q)) == q`` round-trip tests rely on.

A tree pattern is a root :class:`PatternNode` whose children hang off
:class:`PatternEdge` instances carrying the axis (``//`` descendant or
``/`` direct child).  A :class:`GraphPattern` is the cyclic kGPM form:
named nodes plus undirected edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.graph.query import EdgeType


class LabelKind(enum.Enum):
    """What a query node's label means."""

    LABEL = "label"            #: exact label equality
    WILDCARD = "wildcard"      #: ``*`` — matches every data node
    CONTAINS = "contains"      #: ``~a+b`` — data label must contain all tokens


@dataclass(frozen=True)
class LabelSpec:
    """One query node's label semantics."""

    kind: LabelKind
    text: str = ""                      #: the label (LABEL only)
    tokens: tuple[str, ...] = ()        #: required tokens (CONTAINS only)

    @staticmethod
    def label(text: str) -> "LabelSpec":
        return LabelSpec(LabelKind.LABEL, text=str(text))

    @staticmethod
    def wildcard() -> "LabelSpec":
        return LabelSpec(LabelKind.WILDCARD)

    @staticmethod
    def contains(*tokens: str) -> "LabelSpec":
        return LabelSpec(LabelKind.CONTAINS, tokens=tuple(str(t) for t in tokens))

    @property
    def is_wildcard(self) -> bool:
        return self.kind is LabelKind.WILDCARD


@dataclass(frozen=True)
class PatternEdge:
    """An edge to a child pattern node, with axis semantics."""

    axis: EdgeType
    child: "PatternNode"


@dataclass(frozen=True)
class PatternNode:
    """A tree-pattern node: a label spec plus ordered child edges."""

    spec: LabelSpec
    children: tuple[PatternEdge, ...] = ()


@dataclass(frozen=True)
class TreePattern:
    """A rooted tree pattern — the AST of one DSL query or builder chain."""

    root: PatternNode

    def walk(self) -> Iterator[PatternNode]:
        """Pre-order iteration over all pattern nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(edge.child for edge in reversed(node.children))

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    def count_edges(self, axis: EdgeType) -> int:
        """Number of edges using the given axis."""
        return sum(
            1
            for node in self.walk()
            for edge in node.children
            if edge.axis is axis
        )


@dataclass(frozen=True)
class GraphPattern:
    """A cyclic (kGPM) pattern: named labeled nodes + undirected edges.

    Node order and edge order are preserved — they are what the pretty
    printer emits and what structural equality compares.
    """

    nodes: tuple[tuple[str, LabelSpec], ...]
    edges: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.nodes)
