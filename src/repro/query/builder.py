"""Fluent builders producing the same AST as the DSL parser.

Tree patterns::

    from repro.query import Q

    Q("A").child(Q("B").descendant("C"))      # same AST as "A/B//C"
    Q("A").descendant("B").descendant("C")    # "A[B]//C" (two branches)
    Q("A").descendant(Q.wildcard())           # "A//*"
    Q("A").child(Q.contains("db", "systems")) # "A/~db+systems"

Cyclic (kGPM) patterns::

    from repro.query import Pattern

    Pattern.from_edges(
        {"a": "A", "b": "B", "c": "C"},
        [("a", "b"), ("b", "c"), ("c", "a")],
    )                                          # graph(a:A, b:B, c:C; a-b, b-c, c-a)

Builders are consumed by :func:`repro.query.compiler.compile_query` (and
therefore by every :class:`~repro.engine.core.MatchEngine` entry point)
exactly like DSL strings, raw ASTs, and raw query objects.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import QueryError
from repro.graph.query import WILDCARD, EdgeType
from repro.query.ast import (
    GraphPattern,
    LabelSpec,
    PatternEdge,
    PatternNode,
    TreePattern,
)


def _coerce_spec(label) -> LabelSpec:
    """str / '*' / LabelSpec / childless Q — anything that names one node."""
    if isinstance(label, LabelSpec):
        return label
    if isinstance(label, Q):
        if label._children:
            raise QueryError(
                "expected a plain node label here, got a Q with children"
            )
        return label._spec
    if label == WILDCARD:
        return LabelSpec.wildcard()
    if isinstance(label, str):
        return LabelSpec.label(label)
    raise QueryError(
        f"cannot use {label!r} as a query label; pass a string, '*', "
        "Q.wildcard(), or Q.contains(...)"
    )


class Q:
    """Fluent tree-pattern node: ``Q("A").child("B").descendant("C")``.

    ``child``/``descendant`` append a branch (``/`` / ``//`` edge) and
    return ``self``, so chains read top-down; pass another ``Q`` to nest
    deeper structure.  ``Q("*")`` is the wildcard; :meth:`Q.contains`
    builds a containment node.
    """

    def __init__(self, label) -> None:
        self._spec = _coerce_spec(label)
        self._children: list[tuple[EdgeType, "Q"]] = []

    # -- node constructors ---------------------------------------------
    @classmethod
    def wildcard(cls) -> "Q":
        """A wildcard node (DSL ``*``)."""
        return cls(LabelSpec.wildcard())

    @classmethod
    def contains(cls, *tokens: str) -> "Q":
        """A containment node (DSL ``~tok1+tok2``): the data label must
        contain every token."""
        if not tokens:
            raise QueryError("Q.contains() needs at least one token")
        return cls(LabelSpec.contains(*tokens))

    # -- structure ------------------------------------------------------
    def _attach(self, axis: EdgeType, node) -> "Q":
        child = node if isinstance(node, Q) else Q(node)
        self._children.append((axis, child))
        return self

    def child(self, node) -> "Q":
        """Attach a direct-child branch (DSL ``/``)."""
        return self._attach(EdgeType.CHILD, node)

    def descendant(self, node) -> "Q":
        """Attach a descendant branch (DSL ``//``)."""
        return self._attach(EdgeType.DESCENDANT, node)

    # -- conversion -----------------------------------------------------
    def _to_node(self) -> PatternNode:
        return PatternNode(
            self._spec,
            tuple(
                PatternEdge(axis, child._to_node())
                for axis, child in self._children
            ),
        )

    def to_ast(self) -> TreePattern:
        """The equivalent :class:`~repro.query.ast.TreePattern`."""
        return TreePattern(self._to_node())

    def to_dsl(self) -> str:
        """Canonical DSL text for this pattern."""
        from repro.query.compiler import to_dsl

        return to_dsl(self.to_ast())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Q({self.to_dsl()!r})"


class Pattern:
    """Cyclic (kGPM) pattern builder over named, labeled nodes."""

    def __init__(
        self,
        nodes: Iterable[tuple[str, LabelSpec]],
        edges: Iterable[tuple[str, str]],
    ) -> None:
        self._nodes = tuple(nodes)
        self._edges = tuple(edges)

    @classmethod
    def from_edges(
        cls,
        labels: Mapping,
        edges: Iterable[tuple],
    ) -> "Pattern":
        """Build a graph pattern from a label mapping and an edge list.

        ``labels`` maps node names to labels (strings, ``"*"``,
        ``Q.contains(...)``, or :class:`LabelSpec`); ``edges`` are
        undirected name pairs.  Names are stringified, so integer node
        ids work too.  Edge endpoints must be declared in ``labels``.
        """
        declared = {str(name): _coerce_spec(label) for name, label in labels.items()}
        if not declared:
            raise QueryError("a graph pattern needs at least one node")
        pairs: list[tuple[str, str]] = []
        for u, v in edges:
            u, v = str(u), str(v)
            for endpoint in (u, v):
                if endpoint not in declared:
                    raise QueryError(
                        f"edge ({u!r}, {v!r}) references undeclared node "
                        f"{endpoint!r}"
                    )
            pairs.append((u, v))
        return cls(tuple(declared.items()), pairs)

    def to_ast(self) -> GraphPattern:
        """The equivalent :class:`~repro.query.ast.GraphPattern`."""
        return GraphPattern(self._nodes, self._edges)

    def to_dsl(self) -> str:
        """Canonical DSL text (the ``graph(...)`` form)."""
        from repro.query.compiler import to_dsl

        return to_dsl(self.to_ast())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({self.to_dsl()!r})"
