"""Compile any query form down to what the engine executes.

:func:`compile_query` is the single chokepoint through which every query
enters :class:`~repro.engine.core.MatchEngine`: DSL strings, fluent
builders (:class:`~repro.query.builder.Q` / ``Pattern``), typed ASTs, and
raw :class:`~repro.graph.query.QueryTree` / ``QueryGraph`` objects all
normalize to one :class:`CompiledQuery` carrying

* the physical query (``tree`` or ``pattern``),
* the :class:`~repro.twig.semantics.LabelMatcher` the query's label
  semantics require (``None`` when the engine's configured matcher should
  apply),
* compiled-semantics counters the planner surfaces (wildcards, direct
  ``/`` edges, containment nodes, cyclic-or-tree), and
* :meth:`CompiledQuery.to_dsl` — the canonical pretty-printed DSL, which
  re-parses to the same AST (``parse(to_dsl(q)) == q``).

DSL-lowered tree nodes are named ``n0, n1, ...`` in pre-order of the
query text, and those names key the resulting match assignments; raw
``QueryTree``/``QueryGraph`` inputs keep their own node ids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.graph.query import WILDCARD, EdgeType, QueryGraph, QueryTree
from repro.query.ast import (
    GraphPattern,
    LabelKind,
    LabelSpec,
    PatternEdge,
    PatternNode,
    TreePattern,
)
from repro.query.builder import Pattern, Q
from repro.query.parser import parse
from repro.twig.semantics import ContainmentMatcher, LabelMatcher


@dataclass(frozen=True)
class ContainsLabel:
    """Query-node label carrying containment semantics (DSL ``~a+b``).

    Used as the literal label inside compiled ``QueryTree``/``QueryGraph``
    objects; :class:`CompiledLabelMatcher` recognizes it and matches data
    labels that contain every token.
    """

    tokens: tuple[str, ...]

    def __str__(self) -> str:
        return "~" + "+".join(self.tokens)


class CompiledLabelMatcher(ContainmentMatcher):
    """Per-node semantics for compiled queries.

    Plain labels match by equality, ``*`` matches everything, and
    :class:`ContainsLabel` nodes match data labels containing all their
    tokens (data labels tokenized like
    :class:`~repro.twig.semantics.ContainmentMatcher`: collections, or
    ``+``-delimited strings).
    """

    def matches(self, query_label, data_label) -> bool:
        if isinstance(query_label, ContainsLabel):
            return frozenset(query_label.tokens) <= self._tokens(data_label)
        return LabelMatcher.matches(self, query_label, data_label)

    def data_labels_for(self, query_label, alphabet):
        if isinstance(query_label, ContainsLabel):
            return [l for l in alphabet if self.matches(query_label, l)]
        return LabelMatcher.data_labels_for(self, query_label, alphabet)


#: Shared stateless instance — compiled queries reuse it so engine-side
#: caches keyed on matcher identity hit across queries.
COMPILED_MATCHER = CompiledLabelMatcher()


def workload_matcher(workload, default: LabelMatcher) -> LabelMatcher:
    """Matcher a constrained index must build its closure with.

    Compiled containment nodes carry :class:`ContainsLabel` labels, which
    the plain equality matcher cannot expand into data labels; when the
    declared workload contains one (and the configured matcher is the
    equality default), upgrade to :data:`COMPILED_MATCHER` so the index
    pre-computes the right closure sources.
    """
    if type(default) is not LabelMatcher:
        return default
    for tree in workload:
        for node in tree.nodes():
            if isinstance(tree.label(node), ContainsLabel):
                return COMPILED_MATCHER
    return default


@dataclass(frozen=True, eq=False)
class CompiledQuery:
    """One query, fully normalized: AST + physical form + semantics."""

    ast: TreePattern | GraphPattern
    tree: QueryTree | None
    pattern: QueryGraph | None
    matcher: LabelMatcher | None
    is_cyclic: bool
    direct_edges: int
    wildcards: int
    containment_nodes: int
    has_duplicate_labels: bool

    @property
    def matcher_kind(self) -> str:
        """Label-semantics summary for plans: ``equality``/``containment``
        for compiled matchers, ``engine-default`` when the engine config
        decides."""
        if self.matcher is None:
            return "engine-default"
        if isinstance(self.matcher, CompiledLabelMatcher):
            return "containment"
        return type(self.matcher).__name__

    @property
    def num_nodes(self) -> int:
        query = self.pattern if self.is_cyclic else self.tree
        return query.num_nodes

    def effective_matcher(self, default: LabelMatcher) -> LabelMatcher:
        """The matcher execution must use: this query's compiled matcher,
        falling back to the engine-configured ``default``.  Planner and
        executor both resolve through here so reported and actual
        semantics cannot diverge."""
        return self.matcher if self.matcher is not None else default

    def to_dsl(self) -> str:
        """Canonical DSL text; re-parses to this query's AST."""
        return to_dsl(self.ast)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledQuery({self.to_dsl()!r})"


# ----------------------------------------------------------------------
# Lowering: AST -> QueryTree / QueryGraph
# ----------------------------------------------------------------------


def _spec_to_label(spec: LabelSpec):
    if spec.kind is LabelKind.WILDCARD:
        return WILDCARD
    if spec.kind is LabelKind.CONTAINS:
        return ContainsLabel(spec.tokens)
    return spec.text


def _lower_tree(ast: TreePattern) -> QueryTree:
    labels: dict[str, object] = {}
    edges: list[tuple[str, str, EdgeType]] = []

    def visit(node: PatternNode) -> str:
        name = f"n{len(labels)}"
        labels[name] = _spec_to_label(node.spec)
        for edge in node.children:
            child_name = visit(edge.child)
            edges.append((name, child_name, edge.axis))
        return name

    visit(ast.root)
    return QueryTree(labels, edges)


def _lower_graph(ast: GraphPattern) -> QueryGraph:
    labels = {name: _spec_to_label(spec) for name, spec in ast.nodes}
    return QueryGraph(labels, list(ast.edges))


# ----------------------------------------------------------------------
# Lifting: QueryTree / QueryGraph -> AST (for to_dsl round-trips)
# ----------------------------------------------------------------------


def _label_to_spec(label) -> LabelSpec:
    if label == WILDCARD:
        return LabelSpec.wildcard()
    if isinstance(label, ContainsLabel):
        return LabelSpec.contains(*label.tokens)
    return LabelSpec.label(str(label))


def _lift_tree(query: QueryTree) -> TreePattern:
    def visit(node) -> PatternNode:
        children = tuple(
            PatternEdge(query.edge_type(node, child), visit(child))
            for child in query.children(node)
        )
        return PatternNode(_label_to_spec(query.label(node)), children)

    return TreePattern(visit(query.root))


def _lift_graph(query: QueryGraph) -> GraphPattern:
    nodes = tuple(
        (str(node), _label_to_spec(query.label(node))) for node in query.nodes()
    )
    edges = tuple(
        (str(u), str(v))
        for u, v in sorted(query.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    )
    return GraphPattern(nodes, edges)


# ----------------------------------------------------------------------
# Pretty printer
# ----------------------------------------------------------------------


def escape_label(text: str) -> str:
    """Render a label as DSL text: bare words pass through, anything
    else is ``{...}``-escaped (labels containing ``}`` are unprintable
    and raise :class:`~repro.exceptions.QueryError`)."""
    if text and all(ch.isalnum() or ch == "_" for ch in text):
        return text
    if "}" in text:
        raise QueryError(
            f"label {text!r} contains '}}' and cannot be written in the DSL"
        )
    return "{" + text + "}"


# Internal alias (historical name used throughout the printer).
_escape = escape_label


def _render_spec(spec: LabelSpec) -> str:
    if spec.kind is LabelKind.WILDCARD:
        return "*"
    if spec.kind is LabelKind.CONTAINS:
        return "~" + "+".join(_escape(token) for token in spec.tokens)
    return _escape(spec.text)


def _render_node(node: PatternNode) -> str:
    parts = [_render_spec(node.spec)]
    if node.children:
        for edge in node.children[:-1]:
            prefix = "/" if edge.axis is EdgeType.CHILD else ""
            parts.append(f"[{prefix}{_render_node(edge.child)}]")
        last = node.children[-1]
        axis = "/" if last.axis is EdgeType.CHILD else "//"
        parts.append(axis + _render_node(last.child))
    return "".join(parts)


def to_dsl(query) -> str:
    """Canonical DSL text for any query form.

    Accepts everything :func:`compile_query` accepts.  The output
    re-parses to the same AST: branch children print as ``[...]``
    predicates, the last child prints as the path continuation, and
    exotic labels are ``{...}``-escaped.
    """
    if isinstance(query, TreePattern):
        return _render_node(query.root)
    if isinstance(query, GraphPattern):
        nodes = ", ".join(
            f"{_escape(name)}:{_render_spec(spec)}" for name, spec in query.nodes
        )
        if not query.edges:
            return f"graph({nodes})"
        edges = ", ".join(
            f"{_escape(u)}-{_escape(v)}" for u, v in query.edges
        )
        return f"graph({nodes}; {edges})"
    return compile_query(query).to_dsl()


# ----------------------------------------------------------------------
# The chokepoint
# ----------------------------------------------------------------------


def _tree_semantics(query: QueryTree) -> tuple[int, int, int, bool]:
    direct = sum(
        1 for _, __, etype in query.edges() if etype is EdgeType.CHILD
    )
    labels = [query.label(u) for u in query.nodes()]
    wildcards = sum(1 for label in labels if label == WILDCARD)
    containment = sum(1 for label in labels if isinstance(label, ContainsLabel))
    duplicates = len(set(labels)) != len(labels)
    return direct, wildcards, containment, duplicates


def _graph_semantics(query: QueryGraph) -> tuple[int, int, bool]:
    labels = [query.label(u) for u in query.nodes()]
    wildcards = sum(1 for label in labels if label == WILDCARD)
    containment = sum(1 for label in labels if isinstance(label, ContainsLabel))
    duplicates = len(set(labels)) != len(labels)
    return wildcards, containment, duplicates


def compile_query(query) -> CompiledQuery:
    """Normalize any supported query form to a :class:`CompiledQuery`.

    Accepted forms:

    * DSL text — ``"A//B[C][*]/D"`` or ``"graph(a:A, b:B; a-b)"``;
    * fluent builders — :class:`~repro.query.builder.Q` and ``Pattern``;
    * typed ASTs — :class:`~repro.query.ast.TreePattern` / ``GraphPattern``;
    * physical queries — :class:`~repro.graph.query.QueryTree` /
      ``QueryGraph`` (kept as-is, node ids preserved);
    * an already-compiled :class:`CompiledQuery` (returned unchanged).

    Raises :class:`~repro.exceptions.QuerySyntaxError` for malformed DSL
    text and :class:`~repro.exceptions.QueryError` for structurally
    invalid patterns (e.g. wildcard roots).
    """
    if isinstance(query, CompiledQuery):
        return query
    if isinstance(query, str):
        query = parse(query)
    elif isinstance(query, (Q, Pattern)):
        query = query.to_ast()

    if isinstance(query, TreePattern):
        tree = _lower_tree(query)
        return _compile_tree(query, tree)
    if isinstance(query, GraphPattern):
        pattern = _lower_graph(query)
        return _compile_graph(query, pattern)
    if isinstance(query, QueryTree):
        return _compile_tree(_lift_tree(query), query)
    if isinstance(query, QueryGraph):
        return _compile_graph(_lift_graph(query), query)
    raise QueryError(
        f"cannot compile {type(query).__name__!r} as a query; pass DSL "
        "text, a Q/Pattern builder, a TreePattern/GraphPattern AST, or a "
        "QueryTree/QueryGraph"
    )


def _compile_tree(ast: TreePattern, tree: QueryTree) -> CompiledQuery:
    if tree.label(tree.root) == WILDCARD:
        raise QueryError(
            "wildcard roots are not supported (every data node would be a "
            "root candidate)"
        )
    direct, wildcards, containment, duplicates = _tree_semantics(tree)
    matcher = COMPILED_MATCHER if containment else None
    return CompiledQuery(
        ast=ast,
        tree=tree,
        pattern=None,
        matcher=matcher,
        is_cyclic=False,
        direct_edges=direct,
        wildcards=wildcards,
        containment_nodes=containment,
        has_duplicate_labels=duplicates,
    )


def _compile_graph(ast: GraphPattern, pattern: QueryGraph) -> CompiledQuery:
    wildcards, containment, duplicates = _graph_semantics(pattern)
    matcher = COMPILED_MATCHER if containment else None
    return CompiledQuery(
        ast=ast,
        tree=None,
        pattern=pattern,
        matcher=matcher,
        is_cyclic=True,
        direct_edges=0,
        wildcards=wildcards,
        containment_nodes=containment,
        has_duplicate_labels=duplicates,
    )
