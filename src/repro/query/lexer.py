"""Hand-written tokenizer for the query DSL.

Token stream for strings like ``A//B[C][*]/D``, ``~db+systems//paper``,
``{weird label!}//X``, and the cyclic form ``graph(a:A, b:B; a-b)``.

Bare names are word characters only (``[A-Za-z0-9_]``); anything else —
spaces, punctuation, unicode — goes through the ``{...}`` escape, which
yields a NAME token flagged as escaped (so ``{graph}`` is always a label,
never the ``graph(...)`` keyword).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import QuerySyntaxError


class TokenKind(enum.Enum):
    NAME = "name"              #: bare word or {escaped} label
    SLASH = "/"
    DSLASH = "//"
    LBRACKET = "["
    RBRACKET = "]"
    STAR = "*"
    TILDE = "~"
    PLUS = "+"
    LPAREN = "("
    RPAREN = ")"
    COLON = ":"
    COMMA = ","
    SEMICOLON = ";"
    DASH = "-"
    END = "end of query"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    pos: int
    escaped: bool = False

    def describe(self) -> str:
        if self.kind is TokenKind.END:
            return "end of query"
        return f"{self.text!r}"


_PUNCT = {
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "*": TokenKind.STAR,
    "~": TokenKind.TILDE,
    "+": TokenKind.PLUS,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "-": TokenKind.DASH,
}


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> list[Token]:
    """Tokenize a DSL string; raises :class:`QuerySyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "/":
            if i + 1 < n and source[i + 1] == "/":
                tokens.append(Token(TokenKind.DSLASH, "//", i))
                i += 2
            else:
                tokens.append(Token(TokenKind.SLASH, "/", i))
                i += 1
            continue
        if ch == "{":
            end = source.find("}", i + 1)
            if end < 0:
                raise QuerySyntaxError("unterminated '{' escape", source, i)
            inner = source[i + 1 : end]
            if not inner:
                raise QuerySyntaxError("empty '{}' label", source, i)
            tokens.append(Token(TokenKind.NAME, inner, i, escaped=True))
            i = end + 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if _is_name_char(ch):
            start = i
            while i < n and _is_name_char(source[i]):
                i += 1
            tokens.append(Token(TokenKind.NAME, source[start:i], start))
            continue
        raise QuerySyntaxError(
            f"unexpected character {ch!r} (use '{{...}}' to escape exotic labels)",
            source,
            i,
        )
    tokens.append(Token(TokenKind.END, "", n))
    return tokens
