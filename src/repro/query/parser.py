"""Recursive-descent parser for the query DSL.

Grammar (whitespace free between any two tokens)::

    query        := graph_query | step
    step         := node predicate* continuation?
    node         := NAME | '{' any '}' | '*' | '~' token ('+' token)*
    predicate    := '[' axis? step ']'          -- a branch; axis defaults to //
    continuation := axis step                   -- the path keeps going
    axis         := '/' | '//'
    graph_query  := 'graph' '(' decls ';' links ')'
    decls        := NAME ':' node (',' NAME ':' node)*
    links        := NAME '-' NAME (',' NAME '-' NAME)*

Examples::

    A//B[C][*]/D          tree: A -// B, B -// C, B -// *, B -/ D
    paper[~db+systems]    tree: paper with a containment-labeled branch
    graph(a:A, b:B, c:C; a-b, b-c, c-a)   cyclic kGPM triangle

Every syntax error is a :class:`~repro.exceptions.QuerySyntaxError` whose
string rendering points a caret at the offending character.
"""

from __future__ import annotations

from repro.exceptions import QuerySyntaxError
from repro.graph.query import EdgeType
from repro.query.ast import (
    GraphPattern,
    LabelSpec,
    PatternEdge,
    PatternNode,
    TreePattern,
)
from repro.query.lexer import Token, TokenKind, tokenize

_NODE_START = (TokenKind.NAME, TokenKind.STAR, TokenKind.TILDE)


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.END:
            self.index += 1
        return token

    def expect(self, kind: TokenKind, what: str) -> Token:
        if self.current.kind is not kind:
            self.fail(f"expected {what}, got {self.current.describe()}")
        return self.advance()

    def fail(self, message: str, token: Token | None = None) -> None:
        token = token if token is not None else self.current
        raise QuerySyntaxError(message, self.source, token.pos)

    # ------------------------------------------------------------------
    def parse(self) -> TreePattern | GraphPattern:
        if (
            self.current.kind is TokenKind.NAME
            and not self.current.escaped
            and self.current.text == "graph"
            and self.tokens[self.index + 1].kind is TokenKind.LPAREN
        ):
            pattern = self.parse_graph()
        else:
            pattern = TreePattern(root=self.parse_step())
        if self.current.kind is not TokenKind.END:
            self.fail(f"unexpected {self.current.describe()} after the query")
        return pattern

    # -- tree form ------------------------------------------------------
    def parse_step(self) -> PatternNode:
        spec = self.parse_node()
        children: list[PatternEdge] = []
        while self.current.kind is TokenKind.LBRACKET:
            self.advance()
            axis = self.parse_axis(default=EdgeType.DESCENDANT)
            children.append(PatternEdge(axis, self.parse_step()))
            self.expect(TokenKind.RBRACKET, "']' closing the branch predicate")
        if self.current.kind in (TokenKind.SLASH, TokenKind.DSLASH):
            axis = self.parse_axis(default=None)
            children.append(PatternEdge(axis, self.parse_step()))
        return PatternNode(spec, tuple(children))

    def parse_axis(self, default: EdgeType | None) -> EdgeType:
        if self.current.kind is TokenKind.SLASH:
            self.advance()
            return EdgeType.CHILD
        if self.current.kind is TokenKind.DSLASH:
            self.advance()
            return EdgeType.DESCENDANT
        if default is None:
            self.fail("expected '/' or '//'")
        return default

    def parse_node(self) -> LabelSpec:
        token = self.current
        if token.kind is TokenKind.NAME:
            self.advance()
            return LabelSpec.label(token.text)
        if token.kind is TokenKind.STAR:
            self.advance()
            return LabelSpec.wildcard()
        if token.kind is TokenKind.TILDE:
            self.advance()
            tokens = [
                self.expect(TokenKind.NAME, "a token after '~'").text
            ]
            while self.current.kind is TokenKind.PLUS:
                self.advance()
                tokens.append(
                    self.expect(TokenKind.NAME, "a token after '+'").text
                )
            return LabelSpec.contains(*tokens)
        self.fail(
            "expected a label, '*' (wildcard), '~tokens' (containment), "
            "or '{...}' (escaped label)"
        )
        raise AssertionError("unreachable")  # pragma: no cover

    # -- graph form -----------------------------------------------------
    def parse_graph(self) -> GraphPattern:
        self.advance()  # 'graph'
        self.expect(TokenKind.LPAREN, "'(' after 'graph'")
        nodes: list[tuple[str, LabelSpec]] = []
        declared: set[str] = set()
        while True:
            name_token = self.current
            name = self.expect(TokenKind.NAME, "a node name").text
            if name in declared:
                self.fail(f"node {name!r} declared twice", name_token)
            declared.add(name)
            self.expect(TokenKind.COLON, "':' between node name and label")
            nodes.append((name, self.parse_node()))
            if self.current.kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        edges: list[tuple[str, str]] = []
        if self.current.kind is TokenKind.SEMICOLON:
            self.advance()
        if self.current.kind is TokenKind.RPAREN:
            self.advance()
            return GraphPattern(tuple(nodes), ())
        while True:
            u_token = self.current
            u = self.expect(TokenKind.NAME, "an edge endpoint").text
            self.expect(TokenKind.DASH, "'-' between edge endpoints")
            v_token = self.current
            v = self.expect(TokenKind.NAME, "an edge endpoint").text
            if u not in declared:
                self.fail(f"edge references undeclared node {u!r}", u_token)
            if v not in declared:
                self.fail(f"edge references undeclared node {v!r}", v_token)
            edges.append((u, v))
            if self.current.kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenKind.RPAREN, "')' closing the graph pattern")
        return GraphPattern(tuple(nodes), tuple(edges))


def parse(source: str) -> TreePattern | GraphPattern:
    """Parse DSL text into a typed AST.

    Returns a :class:`~repro.query.ast.TreePattern` for path/twig syntax
    and a :class:`~repro.query.ast.GraphPattern` for the ``graph(...)``
    form.  Raises :class:`~repro.exceptions.QuerySyntaxError` (with a
    caret-annotated message) on malformed input.
    """
    if not isinstance(source, str):
        raise TypeError(f"expected DSL text, got {type(source).__name__}")
    if not source.strip():
        raise QuerySyntaxError("empty query", source, 0)
    return _Parser(source).parse()
