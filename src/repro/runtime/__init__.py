"""Run-time graph materialization and sibling-list (slot) structures."""

from repro.runtime.graph import RNode, RuntimeGraph, assignment_score, build_runtime_graph
from repro.runtime.slots import DynamicSlot, ExclusionChain, StaticSlot

__all__ = [
    "RuntimeGraph",
    "RNode",
    "build_runtime_graph",
    "assignment_score",
    "StaticSlot",
    "DynamicSlot",
    "ExclusionChain",
]
