"""The run-time graph ``GR`` (Section 3.1) and its fully-loaded builder.

``GR`` is the subgraph of the transitive closure induced by the query
tree's edges.  Nodes are ``(query_node, data_node)`` *copies*: for
distinct-label queries this is isomorphic to the paper's label-keyed
run-time graph, and it directly realizes the Section 5 recipe for
duplicate labels and wildcards ("for each label in T we make possibly
multiple copies of a node in G at the levels of GR corresponding to the
levels of nodes with that label in T").

:func:`build_runtime_graph` performs the fully-loaded identification used
by Algorithm 1 (every relevant table is streamed from the metered store);
Algorithm 3 instead assembles only the needed part on demand and does not
use this builder.
"""

from __future__ import annotations

from typing import Iterator

from repro.closure.store import ClosureStore
from repro.exceptions import MatchingError
from repro.graph.digraph import NodeId
from repro.graph.query import EdgeType, QNodeId, QueryTree
from repro.twig.semantics import EQUALITY, LabelMatcher

#: A run-time-graph node: (query node, data node).
RNode = tuple[QNodeId, NodeId]


class RuntimeGraph:
    """Materialized ``GR``: per-node child slots and viability marks.

    ``slot(u, v, u_child)`` holds the closure edges from data node ``v``
    (matched at query node ``u``) to the candidates of child query node
    ``u_child``, already filtered to *viable* children (nodes whose own
    subtrees can be completed — the paper's "safely remove v from GR"
    pruning).  Raw node/edge counts before pruning are kept for the
    Table 3 statistics.
    """

    def __init__(self, query: QueryTree) -> None:
        self.query = query
        # (u, v, u_child) -> list[(v_child, distance)], viable children only.
        self._slots: dict[tuple[QNodeId, NodeId, QNodeId], list[tuple[NodeId, float]]] = {}
        # u -> set of viable data nodes for u.
        self._viable: dict[QNodeId, set[NodeId]] = {u: set() for u in query.nodes()}
        self.raw_num_nodes = 0
        self.raw_num_edges = 0

    # ------------------------------------------------------------------
    def viable_candidates(self, u: QNodeId) -> set[NodeId]:
        """Viable data nodes for query node ``u``."""
        return self._viable[u]

    def is_viable(self, u: QNodeId, v: NodeId) -> bool:
        """True when ``(u, v)`` survived bottom-up pruning."""
        return v in self._viable[u]

    def slot(
        self, u: QNodeId, v: NodeId, u_child: QNodeId
    ) -> list[tuple[NodeId, float]]:
        """Viable candidates of ``u_child`` reachable from ``(u, v)``."""
        return self._slots.get((u, v, u_child), [])

    def roots(self) -> list[NodeId]:
        """Viable data nodes for the query root, deterministic order."""
        return sorted(self._viable[self.query.root], key=repr)

    def nodes(self) -> Iterator[RNode]:
        """Iterate viable ``(query node, data node)`` copies."""
        for u, candidates in self._viable.items():
            for v in sorted(candidates, key=repr):
                yield (u, v)

    @property
    def num_nodes(self) -> int:
        """Viable copy count (``n_R`` after pruning)."""
        return sum(len(c) for c in self._viable.values())

    @property
    def num_edges(self) -> int:
        """Viable edge count (``m_R`` after pruning)."""
        return sum(len(entries) for entries in self._slots.values())

    def max_slot_size(self) -> int:
        """``d_R``-style statistic: largest single slot."""
        if not self._slots:
            return 0
        return max(len(entries) for entries in self._slots.values())


def build_runtime_graph(
    store: ClosureStore,
    query: QueryTree,
    matcher: LabelMatcher = EQUALITY,
    prune: bool = True,
) -> RuntimeGraph:
    """Identify and fully load ``GR`` from the metered closure store.

    For every query edge ``(u_p, u)`` the corresponding ``L`` pair tables
    are streamed from storage (one read per block, as Section 3.1's
    "linear I/O time regarding the run-time graph size").  ``/`` edges
    restrict to closure entries that are direct data-graph edges.
    """
    gr = RuntimeGraph(query)
    alphabet = store.graph.labels()

    def expand_labels(qnode: QNodeId) -> list | None:
        return matcher.data_labels_for(query.label(qnode), alphabet)

    # Raw edges per query edge, before viability pruning.
    raw_edges: dict[tuple[QNodeId, QNodeId], list[tuple[NodeId, NodeId, float]]] = {}
    raw_nodes: set[RNode] = set()
    for u_p, u, etype in query.edges():
        tail_labels = expand_labels(u_p)
        head_labels = expand_labels(u)
        direct_only = etype is EdgeType.CHILD
        triples: list[tuple[NodeId, NodeId, float]] = []

        def read(tl, hl) -> None:
            triples.extend(store.read_pair_table(tl, hl, direct_only=direct_only))

        for tl in tail_labels if tail_labels is not None else [None]:
            for hl in head_labels if head_labels is not None else [None]:
                read(tl, hl)
        raw_edges[(u_p, u)] = triples
        for tail, head, _ in triples:
            raw_nodes.add((u_p, tail))
            raw_nodes.add((u, head))
    gr.raw_num_nodes = len(raw_nodes)
    gr.raw_num_edges = sum(len(t) for t in raw_edges.values())

    # Candidate sets per query node from the raw edges.
    candidates: dict[QNodeId, set[NodeId]] = {u: set() for u in query.nodes()}
    root = query.root
    if query.num_nodes == 1:
        # Degenerate single-node query: candidates are all label matches.
        label = query.label(root)
        labels = matcher.data_labels_for(label, alphabet)
        if labels is None:
            candidates[root] = set(store.graph.nodes())
        else:
            for data_label in labels:
                candidates[root] |= store.graph.nodes_with_label(data_label)
    else:
        for (u_p, u), triples in raw_edges.items():
            for tail, head, _ in triples:
                candidates[u_p].add(tail)
                candidates[u].add(head)

    # Bottom-up viability: a candidate survives iff every child slot keeps
    # at least one viable entry.
    order = list(query.bfs_order())
    for u in reversed(order):
        kids = query.children(u)
        if not kids:
            gr._viable[u] = set(candidates[u])
            continue
        per_parent: dict[QNodeId, dict[NodeId, list[tuple[NodeId, float]]]] = {}
        for u_child in kids:
            grouped: dict[NodeId, list[tuple[NodeId, float]]] = {}
            viable_children = gr._viable[u_child] if prune else candidates[u_child]
            for tail, head, dist in raw_edges[(u, u_child)]:
                if head in viable_children:
                    grouped.setdefault(tail, []).append((head, dist))
            per_parent[u_child] = grouped
        survivors: set[NodeId] = set()
        for v in candidates[u]:
            entries_per_child = []
            ok = True
            for u_child in kids:
                entries = per_parent[u_child].get(v)
                if not entries:
                    ok = False
                    break
                entries_per_child.append((u_child, entries))
            if not ok and prune:
                continue
            survivors.add(v)
            for u_child, entries in entries_per_child:
                gr._slots[(u, v, u_child)] = entries
        gr._viable[u] = survivors

    if prune:
        _prune_top_down(gr, query, order)
    return gr


def _prune_top_down(gr: RuntimeGraph, query: QueryTree, order: list) -> None:
    """Drop copies unreachable from a viable root (the paper's recursive
    removal of descendants left without parents)."""
    reachable: dict[QNodeId, set[NodeId]] = {u: set() for u in order}
    reachable[query.root] = set(gr._viable[query.root])
    for u in order:
        keep = reachable[u]
        for v in keep:
            for u_child in query.children(u):
                for v_child, _ in gr.slot(u, v, u_child):
                    reachable[u_child].add(v_child)
    for u in order:
        gr._viable[u] &= reachable[u]
    dead = [
        key
        for key in gr._slots
        if key[1] not in reachable[key[0]]
    ]
    for key in dead:
        del gr._slots[key]


def assignment_score(
    store: ClosureStore,
    query: QueryTree,
    assignment: dict[QNodeId, NodeId],
    node_weight=None,
) -> float:
    """Penalty score of a full assignment (Definition 2.2), via the closure.

    Raises :class:`MatchingError` when the assignment violates label or
    connectivity constraints — used as a test oracle and by the kGPM
    verifier.  ``node_weight`` adds per-node weights (footnote 2).
    """
    total = 0.0
    if node_weight is not None:
        total += sum(float(node_weight(v)) for v in assignment.values())
    for u_p, u, etype in query.edges():
        tail = assignment[u_p]
        head = assignment[u]
        if etype is EdgeType.CHILD and not store.has_direct_edge(tail, head):
            raise MatchingError(
                f"'/' edge ({u_p!r}, {u!r}) not realized by a direct edge"
            )
        dist = store.distance(tail, head)
        if dist is None:
            raise MatchingError(f"{head!r} unreachable from {tail!r}")
        total += dist
    return total
