"""Sibling candidate lists — the ``L``/``H`` structure of Section 3.3.

A *slot* holds, for one run-time-graph node ``x`` and one child query node
``u'``, the candidates ``(x', bs(x') + delta(x, x'))`` among which Lawler
replacements pick.  Two variants:

* :class:`StaticSlot` — contents fixed at construction (Algorithm 1).  It
  keeps the paper's split: a sorted extracted prefix ``H`` (the ranks
  requested so far) and a binary min-heap ``L`` with the rest.  Rank 1 and
  rank ``len(H)+1`` are O(1); deeper ranks pop from ``L`` in O(log)
  amortized, and the prefix is shared by all subspaces using the slot.
* :class:`DynamicSlot` — entries arrive over time as closure blocks are
  loaded (Algorithm 3).  Ranks are not stable under insertion, so the slot
  keeps a fully sorted list and exclusion is by node identity via
  persistent :class:`ExclusionChain` sets (see DESIGN.md for why this
  deviation is correctness-preserving).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Iterable, Iterator

Entry = tuple[float, Any]  # (key, payload node)


class StaticSlot:
    """Immutable candidate set with L/H rank extraction (Algorithm 1)."""

    __slots__ = ("_h", "_l", "_counter")

    def __init__(self, entries: Iterable[Entry]) -> None:
        items = [(key, repr(node), node) for key, node in entries]
        self._h: list[Entry] = []
        if items:
            # One scan for the minimum, heapify the rest: the paper's
            # linear-time initialization.
            best_index = min(range(len(items)), key=lambda i: items[i][:2])
            best = items.pop(best_index)
            self._h.append((best[0], best[2]))
        heapq.heapify(items)
        self._l = items

    def __len__(self) -> int:
        return len(self._h) + len(self._l)

    def __bool__(self) -> bool:
        return bool(self._h) or bool(self._l)

    @property
    def extracted(self) -> list[Entry]:
        """The sorted ``H`` prefix extracted so far."""
        return self._h

    def min(self) -> Entry | None:
        """Rank-1 candidate (O(1)); ``None`` when empty."""
        if self._h:
            return self._h[0]
        return None

    def ith(self, rank: int) -> Entry | None:
        """The ``rank``-th (1-based) lowest candidate, or ``None``.

        Rank ``len(H)+1`` peeks the heap top without extracting (the O(1)
        Case-2 path of Theorem 3.2); deeper ranks extract heap elements
        into ``H`` (the Case-1 path of Theorem 3.1, O(log) per element).
        """
        if rank <= 0:
            raise ValueError(f"rank must be >= 1, got {rank}")
        h = self._h
        if rank <= len(h):
            return h[rank - 1]
        l = self._l
        if rank == len(h) + 1:
            if l:
                key, _, node = l[0]
                return (key, node)
            return None
        while len(h) < rank and l:
            key, _, node = heapq.heappop(l)
            h.append((key, node))
        if rank <= len(h):
            return h[rank - 1]
        return None

    def materialize_rank(self, rank: int) -> None:
        """Ensure ranks ``1..rank`` live in ``H`` (used after a Case-1 pick).

        Keeps later O(1) ``ith`` calls for those ranks and mirrors the
        paper's "remove it from ``L`` to ``H``" bookkeeping.
        """
        h, l = self._h, self._l
        while len(h) < rank and l:
            key, _, node = heapq.heappop(l)
            h.append((key, node))


class ExclusionChain:
    """A persistent (shared-structure) set of excluded nodes.

    Lawler subspaces exclude node sets that grow one element at a time
    along a chain ``U ⊂ U ∪ {y1} ⊂ ...``; persistent cons cells share that
    structure in O(1) per extension.  Membership is a chain walk — chains
    are short in practice (bounded by the number of times one slot fed
    consecutive top-l results).
    """

    __slots__ = ("node", "prev", "size")

    def __init__(self, node: Any, prev: "ExclusionChain | None") -> None:
        self.node = node
        self.prev = prev
        self.size = 1 + (prev.size if prev is not None else 0)

    @staticmethod
    def extend(chain: "ExclusionChain | None", node: Any) -> "ExclusionChain":
        """Return a new chain with ``node`` added."""
        return ExclusionChain(node, chain)

    @staticmethod
    def contains(chain: "ExclusionChain | None", node: Any) -> bool:
        """True when ``node`` is in ``chain``."""
        while chain is not None:
            if chain.node == node:
                return True
            chain = chain.prev
        return False

    @staticmethod
    def length(chain: "ExclusionChain | None") -> int:
        """Number of excluded nodes."""
        return 0 if chain is None else chain.size

    @staticmethod
    def iterate(chain: "ExclusionChain | None") -> Iterator[Any]:
        """Iterate excluded nodes, most recent first."""
        while chain is not None:
            yield chain.node
            chain = chain.prev


class DynamicSlot:
    """Insertable candidate set with exclusion-based selection (Algorithm 3).

    ``version`` increments on every insertion; pending Lawler candidates
    record the version they were computed against so the enumerator knows
    when a recomputation could change the outcome.
    """

    __slots__ = ("_entries", "_nodes", "version")

    def __init__(self) -> None:
        self._entries: list[tuple[float, str, Any]] = []
        self._nodes: set[Any] = set()
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, node: Any) -> bool:
        return node in self._nodes

    def insert(self, key: float, node: Any) -> bool:
        """Insert a candidate; returns False when ``node`` is already present.

        Duplicates can arise when an edge is pre-seeded from an ``E`` table
        and later re-read from an ``L`` block; first insertion wins (both
        carry the same shortest distance, and ``bs`` is final on arrival —
        Theorem 4.2).
        """
        if node in self._nodes:
            return False
        self._nodes.add(node)
        insort(self._entries, (key, repr(node), node))
        self.version += 1
        return True

    def min(self) -> Entry | None:
        """Lowest-key candidate, or ``None``."""
        if not self._entries:
            return None
        key, _, node = self._entries[0]
        return (key, node)

    def best_excluding(
        self, excluded: ExclusionChain | None
    ) -> Entry | None:
        """Lowest-key candidate whose node is not in ``excluded``."""
        if ExclusionChain.length(excluded) == 0:
            return self.min()
        for key, _, node in self._entries:
            if not ExclusionChain.contains(excluded, node):
                return (key, node)
        return None

    def entries(self) -> Iterator[Entry]:
        """Iterate ``(key, node)`` in non-decreasing key order."""
        for key, _, node in self._entries:
            yield (key, node)
