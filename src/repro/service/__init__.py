"""Concurrent serving layer: snapshot sessions, caching, bounded workers.

The per-call library (:class:`repro.engine.MatchEngine`) becomes a
long-lived service here:

    from repro.service import MatchService

    with MatchService(graph, max_workers=4) as service:
        service.top_k("A//B[C]", k=5)            # plan+result caches warm
        future = service.submit("A//B[C]", 5)    # bounded async execution
        service.batch(["A//B", "A//C"], k=3)     # back-pressured fan-out
        service.apply_updates(edges_added=[("v1", "v9")])  # new snapshot

See :mod:`repro.service.service` for the design notes, and the
README's "Serving & caching" section for a tour.
"""

from repro.service.cache import CacheStats, LRUCache, ResultCache
from repro.service.service import MatchService, ServiceResponse
from repro.service.sharded import ShardedMatchService, ShardedResponse
from repro.service.snapshot import (
    Snapshot,
    UpdateReport,
    cacheable_dsl,
    query_label_footprint,
)

__all__ = [
    "MatchService",
    "ServiceResponse",
    "ShardedMatchService",
    "ShardedResponse",
    "Snapshot",
    "UpdateReport",
    "LRUCache",
    "ResultCache",
    "CacheStats",
    "cacheable_dsl",
    "query_label_footprint",
]
