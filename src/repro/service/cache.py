"""Thread-safe caches of the serving layer: plans and results.

Two caches with different lifecycles:

* the plan cache — a plain :class:`LRUCache` holding ``(compiled
  query, plan)`` tuples keyed by ``canonical DSL x k x algorithm x
  engine config``.  Plans depend only on label counts (never on edges),
  so edge-level updates keep every entry valid; node additions clear it.
* :class:`ResultCache` — LRU over finished top-k answers, keyed by
  ``(snapshot epoch, canonical DSL, k, algorithm)``.  Epochs make
  snapshot isolation free: an in-flight request on an old snapshot can
  only ever fill (and hit) old-epoch keys.  On an update the cache
  *migrates* entries whose query labels are provably untouched to the
  new epoch and drops the rest — the selective invalidation the
  incremental closure refresh enables.

Both keep hit/miss/eviction counters that :meth:`MatchService.statistics`
surfaces, and both are safe to use from many threads (one lock per cache;
every operation is O(1) or O(entries) for migrations).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.devtools.lockcheck import make_lock


class CacheStats:
    """Monotonic counters of one cache (read without the cache lock)."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class LRUCache:
    """A small thread-safe LRU map (the plan cache's engine room)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = make_lock("service.cache")
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        """The cached value, or ``None`` (counts a hit/miss)."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh ``key``; evicts the least recently used entry."""
        if value is None:
            raise ValueError("cache values must not be None")
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped


class ResultEntry:
    """One cached answer: the frozen matches, the query's label footprint
    (``labels=None`` = not exact — wildcards, containment, cyclic — so
    the entry must be dropped on any graph update), and the algorithm
    that produced it (so cache hits report the same provenance as the
    original miss)."""

    __slots__ = ("matches", "labels", "algorithm")

    def __init__(
        self,
        matches: tuple,
        labels: frozenset | None,
        algorithm: str | None = None,
    ) -> None:
        self.matches = matches
        self.labels = labels
        self.algorithm = algorithm


class ResultCache(LRUCache):
    """Epoch-aware LRU over finished top-k answers.

    A thin layer over :class:`LRUCache`: keys are ``(epoch,
    request_key)`` tuples and values are :class:`ResultEntry` objects.
    Readers always ask with their snapshot's epoch, so answers computed
    against an old graph version can never serve a request on a newer
    one — even when an update races with in-flight requests that insert
    after the swap.
    """

    def lookup(self, epoch: int, key: Hashable) -> ResultEntry | None:
        """The cached :class:`ResultEntry` for ``key`` at ``epoch``."""
        return super().get((epoch, key))

    def store(
        self,
        epoch: int,
        key: Hashable,
        matches: tuple,
        labels: frozenset | None,
        algorithm: str | None = None,
    ) -> None:
        """Cache ``matches`` with the query's label footprint.

        ``labels`` drives selective invalidation on updates: pass the
        exact set of data labels the query can touch, or ``None`` when
        the footprint is not statically known.
        """
        super().put((epoch, key), ResultEntry(tuple(matches), labels, algorithm))

    def advance(
        self,
        old_epoch: int,
        new_epoch: int,
        affected_labels: frozenset | None,
    ) -> tuple[int, int]:
        """Migrate unaffected ``old_epoch`` entries to ``new_epoch``.

        An entry survives the update iff its label footprint is exact and
        disjoint from ``affected_labels``.  ``affected_labels=None``
        (rebuild path: no invalidation signal) drops everything.  Entries
        of epochs older than ``old_epoch`` are purged either way.
        Returns ``(migrated, dropped)``.
        """
        migrated = 0
        dropped = 0
        with self._lock:
            survivors: OrderedDict[tuple, ResultEntry] = OrderedDict()
            for (epoch, key), entry in self._entries.items():
                if (
                    epoch == old_epoch
                    and affected_labels is not None
                    and entry.labels is not None
                    and not (entry.labels & affected_labels)
                ):
                    survivors[(new_epoch, key)] = entry
                    migrated += 1
                else:
                    dropped += 1
            self._entries = survivors
            self.stats.invalidations += dropped
        return migrated, dropped
