"""The :class:`MatchService` — a thread-safe serving layer over one engine.

Where :class:`~repro.engine.core.MatchEngine` is a per-call library,
``MatchService`` is the piece that sustains concurrent traffic:

    from repro.service import MatchService

    service = MatchService(graph, backend="full", max_workers=4)

    service.top_k("A//B[C]", k=5)          # sync, caches warm up
    future = service.submit("A//B[C]", 5)  # async, bounded worker pool
    future.result().matches

    service.apply_updates(edges_added=[("v1", "v9")])   # new snapshot
    service.statistics()["result_cache"]["hit_rate"]

Design:

* **Snapshot isolation** — every request resolves the current
  :class:`~repro.service.snapshot.Snapshot` exactly once and runs against
  its immutable graph + closure indexes; updates swap in a new snapshot
  atomically and never mutate a live one.
* **Plan cache** — LRU keyed by ``canonical DSL x k x algorithm x engine
  config``; a hit skips planning, and DSL-text requests additionally hit
  a compile cache (raw string -> compiled query) that skips parsing and
  lowering.  Plans depend only on label counts, so edge-level updates
  keep every entry.
* **Result cache** — optional LRU keyed by ``(epoch, DSL, k, algorithm)``
  with explicit invalidation (:meth:`invalidate_results`); updates
  migrate entries whose label footprint is provably untouched and drop
  the rest.
* **Bounded execution** — ``submit()`` runs on a fixed worker pool behind
  a bounded queue (fail-fast :class:`ServiceOverloadedError` when full;
  ``batch()`` blocks for slots instead) with per-request deadlines
  (:class:`DeadlineExceededError` when a request expires in the queue).
* **Write-ahead delta overlay** — under the default ``update_policy=
  "auto"``, small update batches take the *delta path*: records land in
  a :class:`~repro.delta.DeltaLog` (write-ahead-logged when
  ``wal_path`` is set), the epoch advances immediately, and the overlay
  is folded onto the base lazily — on first read, or by the background
  :class:`~repro.delta.Compactor`, which also folds accumulated deltas
  into ``.ridx`` generations when :class:`~repro.delta.CompactionPolicy`
  thresholds trip.  ``update_policy="eager"`` retains the classic
  fold-before-return behavior; ``"auto"`` falls back to it for batches
  larger than ``delta_batch_limit``.  Both paths funnel through
  :func:`repro.delta.view.fold`, so their answers are byte-identical.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.core.matches import Match
from repro.delta.compactor import CompactionPolicy, Compactor
from repro.devtools.lockcheck import make_lock
from repro.delta.generations import GenerationStore, resolve_index_path
from repro.delta.log import DeltaLog
from repro.delta.records import (
    EdgeAdd,
    EdgeRemove,
    LabelChange,
    NodeAdd,
    records_from_updates,
)
from repro.delta.view import apply_records, fold
from repro.delta.wal import WriteAheadLog
from repro.engine.config import EngineConfig
from repro.engine.core import MatchEngine
from repro.engine.planner import QueryPlan, config_fingerprint
from repro.exceptions import (
    DeadlineExceededError,
    GraphError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.query.compiler import compile_query
from repro.service.cache import LRUCache, ResultCache
from repro.service.snapshot import (
    Snapshot,
    UpdateReport,
    cacheable_dsl,
    query_label_footprint,
)


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request, with its provenance.

    ``epoch`` names the snapshot that produced (or cached) the answer;
    two responses with equal ``(epoch, dsl, k, algorithm)`` are
    guaranteed identical — the determinism the concurrency tests pin.
    """

    matches: tuple[Match, ...]
    epoch: int
    dsl: str | None
    k: int
    algorithm: str
    plan: QueryPlan | None
    result_cache_hit: bool
    plan_cache_hit: bool
    elapsed_seconds: float


class MatchService:
    """Concurrent top-k matching over snapshot-isolated engines.

    Parameters
    ----------
    graph:
        The initial data graph (the epoch-0 snapshot is built from it,
        paying the backend's offline cost once).
    config:
        An :class:`EngineConfig`, or keyword overrides (``backend=...``,
        ``algorithm=...``) exactly like :class:`MatchEngine`.
    plan_cache_size / result_cache_size:
        LRU capacities; ``0`` disables the cache (the result cache is the
        optional one — disable it when answers must always recompute).
        ``plan_cache_size`` also sizes the DSL compile cache (raw query
        string -> compiled query), so ``0`` disables both and every
        request re-parses.
    max_workers:
        Worker threads executing :meth:`submit`/:meth:`batch` requests.
    max_pending:
        Bound on in-flight requests (queued + running) before
        :meth:`submit` fails fast; defaults to ``8 * max_workers``.
    default_deadline:
        Seconds applied to :meth:`submit` requests that pass none.
    update_policy:
        ``"auto"`` (delta path for batches up to ``delta_batch_limit``,
        eager beyond), ``"delta"`` (always defer), or ``"eager"``
        (always fold before returning — the retained fallback).
    delta_batch_limit:
        Record-count cutover between the delta and eager paths under
        ``"auto"``.
    wal_path:
        Optional write-ahead log segment file.  Opening an existing
        segment recovers it (torn tail truncated) and replays its
        records as a pending overlay, so a crashed service converges to
        the pre-crash graph on first read.
    compaction:
        A :class:`~repro.delta.CompactionPolicy`; defaults to the stock
        thresholds.
    auto_compact:
        Run the background :class:`~repro.delta.Compactor` thread
        (started lazily on the first delta-path update).  ``False``
        leaves folding to reads and explicit :meth:`compact` calls.
    generation_base:
        Index path whose generation family :meth:`compact` should write
        (``index.gen-NNNN.ridx`` + manifest).  :meth:`from_index` wires
        this automatically; memory-constructed services compact
        in-memory only unless it is set.
    """

    def __init__(
        self,
        graph,
        config: EngineConfig | None = None,
        *,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        max_workers: int = 4,
        max_pending: int | None = None,
        default_deadline: float | None = None,
        update_policy: str = "auto",
        delta_batch_limit: int = 64,
        wal_path: str | Path | None = None,
        compaction: CompactionPolicy | None = None,
        auto_compact: bool = True,
        generation_base: str | Path | None = None,
        _engine: MatchEngine | None = None,
        **overrides,
    ) -> None:
        if max_workers <= 0:
            raise ServiceError(f"max_workers must be positive, got {max_workers}")
        if max_pending is None:
            max_pending = 8 * max_workers
        if max_pending <= 0:
            raise ServiceError(f"max_pending must be positive, got {max_pending}")
        if default_deadline is not None and default_deadline <= 0:
            raise ServiceError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        if plan_cache_size < 0 or result_cache_size < 0:
            raise ServiceError(
                "cache sizes must be >= 0 (0 disables a cache), got "
                f"plan_cache_size={plan_cache_size}, "
                f"result_cache_size={result_cache_size}"
            )
        if update_policy not in ("auto", "delta", "eager"):
            raise ServiceError(
                'update_policy must be "auto", "delta", or "eager", got '
                f"{update_policy!r}"
            )
        if delta_batch_limit < 1:
            raise ServiceError(
                f"delta_batch_limit must be >= 1, got {delta_batch_limit}"
            )
        if _engine is not None:
            # Adopted pre-built engine (the from_index cold-start path):
            # the offline artifacts were restored from a persisted index,
            # so snapshot 0 costs no closure/label computation.
            engine = _engine
        else:
            engine = MatchEngine(graph, config, **overrides)
        self._snapshot = Snapshot.initial(engine)
        self._config_fp = config_fingerprint(engine.config)
        self._plans = LRUCache(plan_cache_size)
        self._results = ResultCache(result_cache_size)
        # First-level cache for DSL-text requests: raw query string ->
        # (compiled, canonical dsl).  This is what lets a warm request
        # skip the lexer/parser/compiler entirely, not just planning.
        # Never invalidated: compilation is graph-independent.
        self._compiled = LRUCache(plan_cache_size)
        # Bumped whenever the plan cache is cleared (node additions,
        # explicit invalidation) and embedded in every plan key: an
        # in-flight request that planned against the pre-clear graph
        # inserts under the old generation, which no later reader asks
        # for — a bare clear() alone cannot prevent that re-insert.
        self._plan_generation = 0
        self.max_workers = max_workers
        self.max_pending = max_pending
        self.default_deadline = default_deadline
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="matchservice"
        )
        self._slots = threading.BoundedSemaphore(max_pending)
        self._update_lock = make_lock("service.update")
        self._closed = False
        # Monotonic counters; guarded by a lock so the consistency
        # identities the stress tests assert (e.g. result-cache lookups
        # == cacheable requests) hold exactly under contention.
        self._stats_lock = make_lock("service.stats")
        self._requests = 0
        self._uncacheable = 0
        self._deadline_misses = 0
        self._overload_rejections = 0
        self._updates_applied = 0

        # -- write-ahead delta overlay state -----------------------------
        self.update_policy = update_policy
        self.delta_batch_limit = delta_batch_limit
        self._gen_store = (
            GenerationStore(generation_base)
            if generation_base is not None
            else None
        )
        wal = None
        if wal_path is not None:
            base_generation = (
                self._gen_store.current_generation if self._gen_store else 0
            )
            wal = WriteAheadLog(wal_path, generation=base_generation)
        self._log = DeltaLog(wal=wal)
        # Graph with every pending record applied (None while clean);
        # becomes the folded engine's graph at materialization, so it is
        # never handed out while still mutable.
        self._pending_graph = None
        self._pending_batches = 0
        self._compaction = (
            compaction if compaction is not None else CompactionPolicy()
        )
        self._auto_compact = auto_compact
        self._compactor: Compactor | None = None
        self._delta_updates = 0
        self._eager_updates = 0
        self._materializations = 0
        self._last_materialize_seconds = 0.0
        self._compactions = 0
        self._last_compaction_seconds = 0.0
        self._records_since_compaction = 0
        if wal is not None and wal.recovered_records:
            if self._gen_store is not None and self._gen_store.stale_wal(
                wal.generation
            ):
                # Crash landed between the generation-manifest update and
                # the WAL truncation: these records are already folded
                # into the generation we just booted from.  Discard.
                wal.rewrite(
                    (), generation=self._gen_store.current_generation
                )
            else:
                self._replay_recovered(wal.recovered_records)

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def _replay_recovered(self, records) -> None:
        """Adopt WAL-recovered records as a pending overlay (boot path).

        The records were durable before the crash, so they re-enter the
        in-memory log only (writing them back would double them in the
        segment); the first read folds them and converges to the
        pre-crash graph.
        """
        graph = self._snapshot.graph.copy()
        try:
            apply_records(graph, records)
        except (GraphError, TypeError, ValueError, IndexError) as exc:
            raise ServiceError(
                f"recovered WAL does not apply to this base index: {exc}"
            ) from exc
        self._log.adopt(records)
        self._pending_graph = graph
        self._pending_batches = 1

    @classmethod
    def from_index(cls, path, **kwargs) -> "MatchService":
        """Serve straight from a persisted index — the cold-start path.

        Builds the epoch-0 snapshot from :meth:`MatchEngine.load` instead
        of paying the backend's offline cost: with a binary ``.ridx``
        index the closure opens via ``mmap`` with no per-entry decode, so
        a process can start taking traffic as soon as the file is mapped
        (blocks page in on first touch).  Engine config overrides
        (``label_matcher``, planner knobs, ...) and service knobs
        (``max_workers``, cache sizes, deadlines) are both accepted.
        """
        from repro.shard.manifest import sniff_is_shard_manifest

        if sniff_is_shard_manifest(path):
            # A shard manifest cold-starts the multi-process front-end
            # instead: each shard worker mmaps only its own .ridx.
            from repro.service.sharded import ShardedMatchService

            return ShardedMatchService.from_manifest(path, **kwargs)
        service_keys = (
            "plan_cache_size", "result_cache_size", "max_workers",
            "max_pending", "default_deadline", "update_policy",
            "delta_batch_limit", "wal_path", "compaction", "auto_compact",
            "generation_base",
        )
        service_kwargs = {
            key: kwargs.pop(key) for key in service_keys if key in kwargs
        }
        # A compacted deployment boots at its newest generation (the
        # manifest, or a sibling manifest of the given base, names it),
        # and compact() keeps writing into the same family.
        resolved = resolve_index_path(path)
        service_kwargs.setdefault("generation_base", path)
        engine = MatchEngine.load(resolved, **kwargs)
        return cls(engine.graph, engine.config, _engine=engine, **service_kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """The current snapshot (readers may hold it as long as they like).

        Folds any pending delta overlay first, so the returned snapshot
        always reflects every applied update.
        """
        return self._read_snapshot()

    @property
    def epoch(self) -> int:
        """Logical epoch: bumped by every update, folded or pending."""
        return self._snapshot.epoch + self._pending_batches

    @property
    def closed(self) -> bool:
        return self._closed

    def statistics(self) -> dict:
        """Serving counters: requests, cache hit rates, update history."""
        base = self._snapshot
        graph = self._pending_graph or base.graph
        pending = self._log.pending_records
        base_size = base.graph.num_nodes + base.graph.num_edges
        return {
            "epoch": self.epoch,
            "backend": base.engine.backend_name,
            "graph_nodes": graph.num_nodes,
            "graph_edges": graph.num_edges,
            "requests": self._requests,
            "uncacheable_requests": self._uncacheable,
            "deadline_misses": self._deadline_misses,
            "overload_rejections": self._overload_rejections,
            "updates_applied": self._updates_applied,
            "max_workers": self.max_workers,
            "max_pending": self.max_pending,
            "compile_cache": {
                "entries": len(self._compiled),
                "capacity": self._compiled.capacity,
                **self._compiled.stats.as_dict(),
            },
            "plan_cache": {
                "entries": len(self._plans),
                "capacity": self._plans.capacity,
                **self._plans.stats.as_dict(),
            },
            "result_cache": {
                "entries": len(self._results),
                "capacity": self._results.capacity,
                **self._results.stats.as_dict(),
            },
            "delta": {
                "policy": self.update_policy,
                "batch_limit": self.delta_batch_limit,
                "pending_records": pending,
                "pending_batches": self._pending_batches,
                "overlay_base_ratio": pending / max(1, base_size),
                "delta_updates": self._delta_updates,
                "eager_updates": self._eager_updates,
                "materializations": self._materializations,
                "last_materialize_seconds": self._last_materialize_seconds,
                "compactions": self._compactions,
                "last_compaction_seconds": self._last_compaction_seconds,
                "records_since_compaction": self._records_since_compaction,
                "wal": None if self._log.wal is None else self._log.wal.stats(),
                "generations": (
                    None if self._gen_store is None else self._gen_store.stats()
                ),
                "compactor": (
                    None if self._compactor is None else self._compactor.stats()
                ),
            },
        }

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("this MatchService has been closed")

    def _answer(
        self, snapshot: Snapshot, query, k: int, algorithm: str | None
    ) -> ServiceResponse:
        """Answer one request entirely against ``snapshot``."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        engine = snapshot.engine
        if isinstance(query, str):
            cached_compile = self._compiled.get(query)
            if cached_compile is None:
                compiled = compile_query(query)
                dsl = cacheable_dsl(compiled)
                self._compiled.put(query, (compiled, dsl))
            else:
                compiled, dsl = cached_compile
        else:
            compiled = compile_query(query)
            dsl = cacheable_dsl(compiled)
        requested = algorithm if algorithm is not None else engine.config.algorithm
        # Counted only once the query compiled: "requests" are requests
        # that reached the cache/execution pipeline, keeping the counter
        # identities (result lookups == requests - uncacheable) exact
        # even when malformed queries raise above.
        self._count("_requests")
        if dsl is None:
            self._count("_uncacheable")
            plan = engine.planner.plan(compiled, k, algorithm=algorithm)
            matches = tuple(engine._execute_plan(compiled, plan, k))
            return ServiceResponse(
                matches=matches,
                epoch=snapshot.epoch,
                dsl=None,
                k=k,
                algorithm=plan.algorithm,
                plan=plan,
                result_cache_hit=False,
                plan_cache_hit=False,
                elapsed_seconds=time.perf_counter() - started,
            )
        request_key = (dsl, k, requested)
        cached = self._results.lookup(snapshot.epoch, request_key)
        if cached is not None:
            return ServiceResponse(
                matches=cached.matches,
                epoch=snapshot.epoch,
                dsl=dsl,
                k=k,
                algorithm=cached.algorithm or requested,
                plan=None,
                result_cache_hit=True,
                plan_cache_hit=False,
                elapsed_seconds=time.perf_counter() - started,
            )
        plan_key = (dsl, k, requested, self._plan_generation, self._config_fp)
        entry = self._plans.get(plan_key)
        plan_hit = entry is not None
        if entry is None:
            plan = engine.planner.plan(compiled, k, algorithm=algorithm)
            program = engine.program_for(compiled, plan)
            self._plans.put(plan_key, (compiled, plan, program))
        else:
            # Reuse the cached compiled form too: equal canonical DSL
            # means an equivalent query, and reusing one object keeps
            # matcher identity stable for the engine's kGPM cache.  The
            # cached kernel program (compiled-tier plans) is
            # store-independent, so warm requests skip lowering and hit
            # the engine's binding cache by program identity.
            compiled, plan, program = entry
        matches = tuple(engine._execute_plan(compiled, plan, k, program=program))
        self._results.store(
            snapshot.epoch,
            request_key,
            matches,
            query_label_footprint(compiled, engine.config.label_matcher),
            algorithm=plan.algorithm,
        )
        return ServiceResponse(
            matches=matches,
            epoch=snapshot.epoch,
            dsl=dsl,
            k=k,
            algorithm=plan.algorithm,
            plan=plan,
            result_cache_hit=False,
            plan_cache_hit=plan_hit,
            elapsed_seconds=time.perf_counter() - started,
        )

    def top_k(self, query, k: int, algorithm: str | None = None) -> list[Match]:
        """Synchronous top-k on the caller's thread (mirrors the engine API).

        Runs against the newest snapshot and feeds/serves the caches like
        every other request.
        """
        self._check_open()
        return list(self._answer(self._read_snapshot(), query, k, algorithm).matches)

    def request(self, query, k: int, algorithm: str | None = None) -> ServiceResponse:
        """Like :meth:`top_k` but returns the full :class:`ServiceResponse`."""
        self._check_open()
        return self._answer(self._read_snapshot(), query, k, algorithm)

    # ------------------------------------------------------------------
    # Asynchronous execution over the bounded pool
    # ------------------------------------------------------------------
    def _run_request(
        self, query, k: int, algorithm: str | None, expires_at: float | None
    ) -> ServiceResponse:
        if expires_at is not None and time.monotonic() > expires_at:
            self._count("_deadline_misses")
            raise DeadlineExceededError(
                "request deadline expired while queued "
                f"(deadline was {expires_at:.3f} on the monotonic clock)"
            )
        return self._answer(self._read_snapshot(), query, k, algorithm)

    def _submit(
        self,
        query,
        k: int,
        algorithm: str | None,
        deadline: float | None,
        block: bool,
    ) -> Future:
        self._check_open()
        if deadline is None:
            deadline = self.default_deadline
        if deadline is not None and deadline <= 0:
            raise ServiceError(f"deadline must be positive, got {deadline}")
        expires_at = None if deadline is None else time.monotonic() + deadline
        if not self._slots.acquire(blocking=block):
            self._count("_overload_rejections")
            raise ServiceOverloadedError(
                f"request queue is full ({self.max_pending} in flight); "
                "back off and retry"
            )
        try:
            future = self._pool.submit(
                self._run_request, query, k, algorithm, expires_at
            )
        except RuntimeError as exc:  # pool shut down concurrently
            self._slots.release()
            raise ServiceClosedError("this MatchService has been closed") from exc
        # Release the slot from a done callback, not inside the task
        # body: a cancelled still-queued future never runs its task, and
        # the callback is the one hook that fires exactly once for
        # completion, failure, and cancellation alike.
        future.add_done_callback(lambda _finished: self._slots.release())
        return future

    def submit(
        self,
        query,
        k: int,
        algorithm: str | None = None,
        deadline: float | None = None,
    ) -> Future:
        """Queue one request; the future resolves to a :class:`ServiceResponse`.

        Fails fast with :class:`ServiceOverloadedError` when ``max_pending``
        requests are already in flight.  ``deadline`` (seconds) bounds
        queue wait: a request picked up past its deadline fails with
        :class:`DeadlineExceededError` instead of executing.
        """
        return self._submit(query, k, algorithm, deadline, block=False)

    def batch(
        self,
        queries,
        k: int,
        algorithm: str | None = None,
        deadline: float | None = None,
    ) -> list[list[Match]]:
        """Answer many queries through the worker pool, in input order.

        Applies back-pressure: when the queue is full, enqueueing blocks
        instead of raising.  The first failed request propagates (the
        rest still complete in the pool).
        """
        futures = [
            self._submit(query, k, algorithm, deadline, block=True)
            for query in queries
        ]
        return [list(future.result().matches) for future in futures]

    # ------------------------------------------------------------------
    # Updates and invalidation
    # ------------------------------------------------------------------
    def _read_snapshot(self) -> Snapshot:
        """The snapshot reads run against, folding any pending overlay.

        Lock-free when the overlay is clean — the common steady-state
        read path costs one attribute load.
        """
        if self._pending_batches:
            with self._update_lock:
                return self._absorb_locked()
        return self._snapshot

    def _absorb_locked(self) -> Snapshot:
        """Fold every pending delta batch into a fresh snapshot.

        Caller holds ``_update_lock``.  The logical epoch advances by
        exactly the number of pending batches, so epochs handed out by
        deferred :class:`UpdateReport`\\ s line up with the snapshots
        readers eventually see.  The WAL is *not* truncated here — only
        a compaction makes the fold durable (see :meth:`compact`).
        """
        old = self._snapshot
        batches = self._pending_batches
        if not batches:
            return old
        records = self._log.drain()
        result = fold(old.engine, records, patched_graph=self._pending_graph)
        snapshot = Snapshot(
            epoch=old.epoch + batches,
            engine=result.engine,
            created_at=time.time(),
        )
        self._results.advance(
            old.epoch, snapshot.epoch, result.affected_labels
        )
        self._snapshot = snapshot
        self._pending_graph = None
        self._pending_batches = 0
        with self._stats_lock:
            self._materializations += 1
            self._last_materialize_seconds = result.elapsed_seconds
            self._records_since_compaction += len(records)
        return snapshot

    def apply_updates(
        self,
        edges_added: tuple = (),
        edges_removed: tuple = (),
        nodes_added: dict | None = None,
        labels_changed: dict | None = None,
    ) -> UpdateReport:
        """Apply graph deltas; readers never block and never see a tear.

        Under the default ``update_policy="auto"``, batches up to
        ``delta_batch_limit`` records take the *delta path*: they are
        validated against the pending overlay graph, appended to the
        :class:`~repro.delta.DeltaLog` (write-ahead-logged first when a
        WAL is attached), and the call returns a ``deferred`` report —
        the fold onto the base happens on the next read or in the
        background compactor.  Larger batches, and every batch under
        ``"eager"``, fold before returning exactly as before.  Both
        paths advance the logical epoch by one and funnel through
        :func:`repro.delta.view.fold`, so answers are byte-identical.

        The result cache migrates entries whose label footprint is
        disjoint from the fold's affected labels (at materialization
        time on the delta path).  The plan cache survives edge deltas
        outright — plans depend only on label counts — and is cleared
        when nodes or relabels (new label candidates) arrive.
        """
        with self._update_lock:
            self._check_open()
            try:
                records = records_from_updates(
                    edges_added, edges_removed, nodes_added, labels_changed
                )
            except (TypeError, ValueError, IndexError) as exc:
                raise ServiceError(f"invalid graph update: {exc}") from exc
            if not records:
                raise ServiceError(
                    "apply_updates needs at least one change (edges_added, "
                    "edges_removed, nodes_added, or labels_changed)"
                )
            use_delta = self.update_policy == "delta" or (
                self.update_policy == "auto"
                and len(records) <= self.delta_batch_limit
            )
            if use_delta:
                return self._apply_delta_locked(records)
            return self._apply_eager_locked(
                edges_added, edges_removed, nodes_added, labels_changed,
                records,
            )

    def _rollback_pending_locked(self) -> None:
        """Rebuild the pending graph from the intact log after a failed
        apply left it half-mutated (records are validated one by one, so
        a mid-batch structural error can strand earlier mutations)."""
        logged = self._log.records()
        if logged:
            fresh = self._snapshot.graph.copy()
            apply_records(fresh, logged)  # previously validated; must apply
            self._pending_graph = fresh
        else:
            self._pending_graph = None

    def _apply_delta_locked(self, records) -> UpdateReport:
        """The deferred path: validate, log, bump the epoch, return."""
        started = time.perf_counter()
        graph = self._pending_graph
        if graph is None:
            graph = self._snapshot.graph.copy()
        try:
            apply_records(graph, records)
        except (GraphError, TypeError, ValueError, IndexError) as exc:
            self._rollback_pending_locked()
            raise ServiceError(f"invalid graph update: {exc}") from exc
        try:
            self._log.append(records)
        except Exception:
            # WAL append failed (unencodable ids, closed segment):
            # nothing became durable, so nothing may become visible.
            self._rollback_pending_locked()
            raise
        self._pending_graph = graph
        self._pending_batches += 1
        n_nodes = sum(isinstance(r, NodeAdd) for r in records)
        n_labels = sum(isinstance(r, LabelChange) for r in records)
        report = UpdateReport(
            epoch=self.epoch,
            nodes_added=n_nodes,
            edges_added=sum(isinstance(r, EdgeAdd) for r in records),
            edges_removed=sum(isinstance(r, EdgeRemove) for r in records),
            incremental=True,
            rows_recomputed=0,
            affected_labels=None,
            elapsed_seconds=time.perf_counter() - started,
            labels_changed=n_labels,
            deferred=True,
            pending_records=self._log.pending_records,
        )
        if n_nodes or n_labels:
            # Cleared eagerly (not at materialization): a plan computed
            # between this append and the fold would otherwise bake in
            # stale label candidate counts.  The bump takes _stats_lock
            # because invalidate_plans() increments concurrently without
            # holding _update_lock.
            with self._stats_lock:
                self._plan_generation += 1
            report.plans_cleared = self._plans.clear()
        self._count("_updates_applied")
        self._count("_delta_updates")
        self._ensure_compactor()
        if self._compactor is not None:
            self._compactor.kick()
        return report

    def _apply_eager_locked(
        self, edges_added, edges_removed, nodes_added, labels_changed,
        records,
    ) -> UpdateReport:
        """The classic path: fold before returning (absorbing first)."""
        self._absorb_locked()
        old = self._snapshot
        snapshot, report = old.updated(
            edges_added=edges_added,
            edges_removed=edges_removed,
            nodes_added=nodes_added,
            labels_changed=labels_changed,
        )
        # Durability parity with the delta path: the fold lives only in
        # memory until the next compaction, so the records must reach
        # the segment or a crash would silently lose an applied update.
        wal = self._log.wal
        if wal is not None:
            wal.append(records)
        migrated, dropped = self._results.advance(
            old.epoch, snapshot.epoch, report.affected_labels
        )
        report.results_migrated = migrated
        report.results_dropped = dropped
        if report.nodes_added or report.labels_changed:
            # Same race as the delta path: invalidate_plans() bumps this
            # counter under _stats_lock only.
            with self._stats_lock:
                self._plan_generation += 1
            report.plans_cleared = self._plans.clear()
        self._snapshot = snapshot
        with self._stats_lock:
            self._records_since_compaction += len(records)
        self._count("_updates_applied")
        self._count("_eager_updates")
        return report

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _ensure_compactor(self) -> None:
        if (
            self._auto_compact
            and self._compactor is None
            and not self._closed
        ):
            self._compactor = Compactor(self._compaction_tick)

    def _compaction_tick(self) -> None:
        """One background beat: absorb pending, compact when due."""
        if self._closed:
            return
        if self._pending_batches:
            with self._update_lock:
                if not self._closed:
                    self._absorb_locked()
        base = self._snapshot.graph
        if self._compaction.due(
            self._records_since_compaction,
            base.num_nodes + base.num_edges,
        ):
            with self._update_lock:
                if not self._closed:
                    self._compact_locked("policy")

    def compact(self) -> dict:
        """Fold the overlay and persist the next index generation now.

        Absorbs every pending delta batch, writes
        ``<base>.gen-NNNN.ridx`` + manifest when a generation family is
        attached (:meth:`from_index` wires one automatically), then
        truncates the WAL with the new generation stamp — the swap
        protocol DESIGN.md specifies.  Returns a report dict.
        """
        with self._update_lock:
            self._check_open()
            return self._compact_locked("explicit")

    def _compact_locked(self, trigger: str) -> dict:
        started = time.perf_counter()
        snapshot = self._absorb_locked()
        folded = self._records_since_compaction
        generation = None
        path = None
        if self._gen_store is not None:
            generation, gen_path = self._gen_store.write_generation(
                snapshot.engine,
                epoch=snapshot.epoch,
                records_folded=folded,
                wall_seconds=time.perf_counter() - started,
            )
            path = str(gen_path)
        wal = self._log.wal
        if wal is not None:
            # Step 3 of the swap protocol: only now that the fold is
            # durable (or there is no durable family at all) may the
            # segment forget the records.
            wal.rewrite(
                (),
                generation=(
                    generation if generation is not None
                    else wal.generation + 1
                ),
            )
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._compactions += 1
            self._last_compaction_seconds = elapsed
            self._records_since_compaction = 0
        return {
            "trigger": trigger,
            "epoch": snapshot.epoch,
            "records_folded": folded,
            "generation": generation,
            "path": path,
            "elapsed_seconds": elapsed,
        }

    def invalidate_results(self) -> int:
        """Explicitly drop every cached result; returns the count."""
        return self._results.clear()

    def invalidate_plans(self) -> int:
        """Explicitly drop every cached plan; returns the count."""
        with self._stats_lock:
            self._plan_generation += 1
        return self._plans.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> bool:
        """Stop accepting requests and shut the worker pool down.

        Returns ``True`` when everything shut down cleanly; ``False``
        when the background compactor failed to stop within its join
        timeout (the leak is also visible as
        ``statistics()["delta"]["compactor"]["stop_timed_out"]``).
        """
        self._closed = True
        compactor = self._compactor
        stopped = True
        if compactor is not None:
            stopped = compactor.stop()
        self._pool.shutdown(wait=wait)
        wal = self._log.wal
        if wal is not None:
            wal.close()
        return stopped

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchService(epoch={self.epoch}, "
            f"backend={self._snapshot.engine.backend_name!r}, "
            f"policy={self.update_policy!r}, "
            f"workers={self.max_workers}, closed={self._closed})"
        )
