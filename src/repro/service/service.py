"""The :class:`MatchService` — a thread-safe serving layer over one engine.

Where :class:`~repro.engine.core.MatchEngine` is a per-call library,
``MatchService`` is the piece that sustains concurrent traffic:

    from repro.service import MatchService

    service = MatchService(graph, backend="full", max_workers=4)

    service.top_k("A//B[C]", k=5)          # sync, caches warm up
    future = service.submit("A//B[C]", 5)  # async, bounded worker pool
    future.result().matches

    service.apply_updates(edges_added=[("v1", "v9")])   # new snapshot
    service.statistics()["result_cache"]["hit_rate"]

Design:

* **Snapshot isolation** — every request resolves the current
  :class:`~repro.service.snapshot.Snapshot` exactly once and runs against
  its immutable graph + closure indexes; updates swap in a new snapshot
  atomically and never mutate a live one.
* **Plan cache** — LRU keyed by ``canonical DSL x k x algorithm x engine
  config``; a hit skips planning, and DSL-text requests additionally hit
  a compile cache (raw string -> compiled query) that skips parsing and
  lowering.  Plans depend only on label counts, so edge-level updates
  keep every entry.
* **Result cache** — optional LRU keyed by ``(epoch, DSL, k, algorithm)``
  with explicit invalidation (:meth:`invalidate_results`); updates
  migrate entries whose label footprint is provably untouched and drop
  the rest.
* **Bounded execution** — ``submit()`` runs on a fixed worker pool behind
  a bounded queue (fail-fast :class:`ServiceOverloadedError` when full;
  ``batch()`` blocks for slots instead) with per-request deadlines
  (:class:`DeadlineExceededError` when a request expires in the queue).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.matches import Match
from repro.engine.config import EngineConfig
from repro.engine.core import MatchEngine
from repro.engine.planner import QueryPlan, config_fingerprint
from repro.exceptions import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.query.compiler import compile_query
from repro.service.cache import LRUCache, ResultCache
from repro.service.snapshot import (
    Snapshot,
    UpdateReport,
    cacheable_dsl,
    query_label_footprint,
)


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request, with its provenance.

    ``epoch`` names the snapshot that produced (or cached) the answer;
    two responses with equal ``(epoch, dsl, k, algorithm)`` are
    guaranteed identical — the determinism the concurrency tests pin.
    """

    matches: tuple[Match, ...]
    epoch: int
    dsl: str | None
    k: int
    algorithm: str
    plan: QueryPlan | None
    result_cache_hit: bool
    plan_cache_hit: bool
    elapsed_seconds: float


class MatchService:
    """Concurrent top-k matching over snapshot-isolated engines.

    Parameters
    ----------
    graph:
        The initial data graph (the epoch-0 snapshot is built from it,
        paying the backend's offline cost once).
    config:
        An :class:`EngineConfig`, or keyword overrides (``backend=...``,
        ``algorithm=...``) exactly like :class:`MatchEngine`.
    plan_cache_size / result_cache_size:
        LRU capacities; ``0`` disables the cache (the result cache is the
        optional one — disable it when answers must always recompute).
        ``plan_cache_size`` also sizes the DSL compile cache (raw query
        string -> compiled query), so ``0`` disables both and every
        request re-parses.
    max_workers:
        Worker threads executing :meth:`submit`/:meth:`batch` requests.
    max_pending:
        Bound on in-flight requests (queued + running) before
        :meth:`submit` fails fast; defaults to ``8 * max_workers``.
    default_deadline:
        Seconds applied to :meth:`submit` requests that pass none.
    """

    def __init__(
        self,
        graph,
        config: EngineConfig | None = None,
        *,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        max_workers: int = 4,
        max_pending: int | None = None,
        default_deadline: float | None = None,
        _engine: MatchEngine | None = None,
        **overrides,
    ) -> None:
        if max_workers <= 0:
            raise ServiceError(f"max_workers must be positive, got {max_workers}")
        if max_pending is None:
            max_pending = 8 * max_workers
        if max_pending <= 0:
            raise ServiceError(f"max_pending must be positive, got {max_pending}")
        if default_deadline is not None and default_deadline <= 0:
            raise ServiceError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        if plan_cache_size < 0 or result_cache_size < 0:
            raise ServiceError(
                "cache sizes must be >= 0 (0 disables a cache), got "
                f"plan_cache_size={plan_cache_size}, "
                f"result_cache_size={result_cache_size}"
            )
        if _engine is not None:
            # Adopted pre-built engine (the from_index cold-start path):
            # the offline artifacts were restored from a persisted index,
            # so snapshot 0 costs no closure/label computation.
            engine = _engine
        else:
            engine = MatchEngine(graph, config, **overrides)
        self._snapshot = Snapshot.initial(engine)
        self._config_fp = config_fingerprint(engine.config)
        self._plans = LRUCache(plan_cache_size)
        self._results = ResultCache(result_cache_size)
        # First-level cache for DSL-text requests: raw query string ->
        # (compiled, canonical dsl).  This is what lets a warm request
        # skip the lexer/parser/compiler entirely, not just planning.
        # Never invalidated: compilation is graph-independent.
        self._compiled = LRUCache(plan_cache_size)
        # Bumped whenever the plan cache is cleared (node additions,
        # explicit invalidation) and embedded in every plan key: an
        # in-flight request that planned against the pre-clear graph
        # inserts under the old generation, which no later reader asks
        # for — a bare clear() alone cannot prevent that re-insert.
        self._plan_generation = 0
        self.max_workers = max_workers
        self.max_pending = max_pending
        self.default_deadline = default_deadline
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="matchservice"
        )
        self._slots = threading.BoundedSemaphore(max_pending)
        self._update_lock = threading.Lock()
        self._closed = False
        # Monotonic counters; guarded by a lock so the consistency
        # identities the stress tests assert (e.g. result-cache lookups
        # == cacheable requests) hold exactly under contention.
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._uncacheable = 0
        self._deadline_misses = 0
        self._overload_rejections = 0
        self._updates_applied = 0

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    @classmethod
    def from_index(cls, path, **kwargs) -> "MatchService":
        """Serve straight from a persisted index — the cold-start path.

        Builds the epoch-0 snapshot from :meth:`MatchEngine.load` instead
        of paying the backend's offline cost: with a binary ``.ridx``
        index the closure opens via ``mmap`` with no per-entry decode, so
        a process can start taking traffic as soon as the file is mapped
        (blocks page in on first touch).  Engine config overrides
        (``label_matcher``, planner knobs, ...) and service knobs
        (``max_workers``, cache sizes, deadlines) are both accepted.
        """
        from repro.shard.manifest import sniff_is_shard_manifest

        if sniff_is_shard_manifest(path):
            # A shard manifest cold-starts the multi-process front-end
            # instead: each shard worker mmaps only its own .ridx.
            from repro.service.sharded import ShardedMatchService

            return ShardedMatchService.from_manifest(path, **kwargs)
        service_keys = (
            "plan_cache_size", "result_cache_size", "max_workers",
            "max_pending", "default_deadline",
        )
        service_kwargs = {
            key: kwargs.pop(key) for key in service_keys if key in kwargs
        }
        engine = MatchEngine.load(path, **kwargs)
        return cls(engine.graph, engine.config, _engine=engine, **service_kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """The current snapshot (readers may hold it as long as they like)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Epoch of the current snapshot (bumped by every update)."""
        return self._snapshot.epoch

    @property
    def closed(self) -> bool:
        return self._closed

    def statistics(self) -> dict:
        """Serving counters: requests, cache hit rates, update history."""
        return {
            "epoch": self._snapshot.epoch,
            "backend": self._snapshot.engine.backend_name,
            "graph_nodes": self._snapshot.graph.num_nodes,
            "graph_edges": self._snapshot.graph.num_edges,
            "requests": self._requests,
            "uncacheable_requests": self._uncacheable,
            "deadline_misses": self._deadline_misses,
            "overload_rejections": self._overload_rejections,
            "updates_applied": self._updates_applied,
            "max_workers": self.max_workers,
            "max_pending": self.max_pending,
            "compile_cache": {
                "entries": len(self._compiled),
                "capacity": self._compiled.capacity,
                **self._compiled.stats.as_dict(),
            },
            "plan_cache": {
                "entries": len(self._plans),
                "capacity": self._plans.capacity,
                **self._plans.stats.as_dict(),
            },
            "result_cache": {
                "entries": len(self._results),
                "capacity": self._results.capacity,
                **self._results.stats.as_dict(),
            },
        }

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("this MatchService has been closed")

    def _answer(
        self, snapshot: Snapshot, query, k: int, algorithm: str | None
    ) -> ServiceResponse:
        """Answer one request entirely against ``snapshot``."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        engine = snapshot.engine
        if isinstance(query, str):
            cached_compile = self._compiled.get(query)
            if cached_compile is None:
                compiled = compile_query(query)
                dsl = cacheable_dsl(compiled)
                self._compiled.put(query, (compiled, dsl))
            else:
                compiled, dsl = cached_compile
        else:
            compiled = compile_query(query)
            dsl = cacheable_dsl(compiled)
        requested = algorithm if algorithm is not None else engine.config.algorithm
        # Counted only once the query compiled: "requests" are requests
        # that reached the cache/execution pipeline, keeping the counter
        # identities (result lookups == requests - uncacheable) exact
        # even when malformed queries raise above.
        self._count("_requests")
        if dsl is None:
            self._count("_uncacheable")
            plan = engine.planner.plan(compiled, k, algorithm=algorithm)
            matches = tuple(engine._execute_plan(compiled, plan, k))
            return ServiceResponse(
                matches=matches,
                epoch=snapshot.epoch,
                dsl=None,
                k=k,
                algorithm=plan.algorithm,
                plan=plan,
                result_cache_hit=False,
                plan_cache_hit=False,
                elapsed_seconds=time.perf_counter() - started,
            )
        request_key = (dsl, k, requested)
        cached = self._results.lookup(snapshot.epoch, request_key)
        if cached is not None:
            return ServiceResponse(
                matches=cached.matches,
                epoch=snapshot.epoch,
                dsl=dsl,
                k=k,
                algorithm=cached.algorithm or requested,
                plan=None,
                result_cache_hit=True,
                plan_cache_hit=False,
                elapsed_seconds=time.perf_counter() - started,
            )
        plan_key = (dsl, k, requested, self._plan_generation, self._config_fp)
        entry = self._plans.get(plan_key)
        plan_hit = entry is not None
        if entry is None:
            plan = engine.planner.plan(compiled, k, algorithm=algorithm)
            self._plans.put(plan_key, (compiled, plan))
        else:
            # Reuse the cached compiled form too: equal canonical DSL
            # means an equivalent query, and reusing one object keeps
            # matcher identity stable for the engine's kGPM cache.
            compiled, plan = entry
        matches = tuple(engine._execute_plan(compiled, plan, k))
        self._results.store(
            snapshot.epoch,
            request_key,
            matches,
            query_label_footprint(compiled, engine.config.label_matcher),
            algorithm=plan.algorithm,
        )
        return ServiceResponse(
            matches=matches,
            epoch=snapshot.epoch,
            dsl=dsl,
            k=k,
            algorithm=plan.algorithm,
            plan=plan,
            result_cache_hit=False,
            plan_cache_hit=plan_hit,
            elapsed_seconds=time.perf_counter() - started,
        )

    def top_k(self, query, k: int, algorithm: str | None = None) -> list[Match]:
        """Synchronous top-k on the caller's thread (mirrors the engine API).

        Runs against the newest snapshot and feeds/serves the caches like
        every other request.
        """
        self._check_open()
        return list(self._answer(self._snapshot, query, k, algorithm).matches)

    def request(self, query, k: int, algorithm: str | None = None) -> ServiceResponse:
        """Like :meth:`top_k` but returns the full :class:`ServiceResponse`."""
        self._check_open()
        return self._answer(self._snapshot, query, k, algorithm)

    # ------------------------------------------------------------------
    # Asynchronous execution over the bounded pool
    # ------------------------------------------------------------------
    def _run_request(
        self, query, k: int, algorithm: str | None, expires_at: float | None
    ) -> ServiceResponse:
        if expires_at is not None and time.monotonic() > expires_at:
            self._count("_deadline_misses")
            raise DeadlineExceededError(
                "request deadline expired while queued "
                f"(deadline was {expires_at:.3f} on the monotonic clock)"
            )
        return self._answer(self._snapshot, query, k, algorithm)

    def _submit(
        self,
        query,
        k: int,
        algorithm: str | None,
        deadline: float | None,
        block: bool,
    ) -> Future:
        self._check_open()
        if deadline is None:
            deadline = self.default_deadline
        if deadline is not None and deadline <= 0:
            raise ServiceError(f"deadline must be positive, got {deadline}")
        expires_at = None if deadline is None else time.monotonic() + deadline
        if not self._slots.acquire(blocking=block):
            self._count("_overload_rejections")
            raise ServiceOverloadedError(
                f"request queue is full ({self.max_pending} in flight); "
                "back off and retry"
            )
        try:
            future = self._pool.submit(
                self._run_request, query, k, algorithm, expires_at
            )
        except RuntimeError as exc:  # pool shut down concurrently
            self._slots.release()
            raise ServiceClosedError("this MatchService has been closed") from exc
        # Release the slot from a done callback, not inside the task
        # body: a cancelled still-queued future never runs its task, and
        # the callback is the one hook that fires exactly once for
        # completion, failure, and cancellation alike.
        future.add_done_callback(lambda _finished: self._slots.release())
        return future

    def submit(
        self,
        query,
        k: int,
        algorithm: str | None = None,
        deadline: float | None = None,
    ) -> Future:
        """Queue one request; the future resolves to a :class:`ServiceResponse`.

        Fails fast with :class:`ServiceOverloadedError` when ``max_pending``
        requests are already in flight.  ``deadline`` (seconds) bounds
        queue wait: a request picked up past its deadline fails with
        :class:`DeadlineExceededError` instead of executing.
        """
        return self._submit(query, k, algorithm, deadline, block=False)

    def batch(
        self,
        queries,
        k: int,
        algorithm: str | None = None,
        deadline: float | None = None,
    ) -> list[list[Match]]:
        """Answer many queries through the worker pool, in input order.

        Applies back-pressure: when the queue is full, enqueueing blocks
        instead of raising.  The first failed request propagates (the
        rest still complete in the pool).
        """
        futures = [
            self._submit(query, k, algorithm, deadline, block=True)
            for query in queries
        ]
        return [list(future.result().matches) for future in futures]

    # ------------------------------------------------------------------
    # Updates and invalidation
    # ------------------------------------------------------------------
    def apply_updates(
        self,
        edges_added: tuple = (),
        edges_removed: tuple = (),
        nodes_added: dict | None = None,
    ) -> UpdateReport:
        """Produce and install a new snapshot with the deltas applied.

        In-flight requests keep running on the snapshot they resolved —
        nothing is mutated in place.  The result cache migrates entries
        whose label footprint is disjoint from the update's affected
        labels (exact when the backend refreshes incrementally; a rebuild
        reports no signal and flushes).  The plan cache survives edge
        deltas outright — plans depend only on label counts — and is
        cleared when nodes (new label candidates) arrive.  Updates are
        serialized with one another but never block readers.
        """
        with self._update_lock:
            self._check_open()
            old = self._snapshot
            snapshot, report = old.updated(
                edges_added=edges_added,
                edges_removed=edges_removed,
                nodes_added=nodes_added,
            )
            migrated, dropped = self._results.advance(
                old.epoch, snapshot.epoch, report.affected_labels
            )
            report.results_migrated = migrated
            report.results_dropped = dropped
            if report.nodes_added:
                self._plan_generation += 1
                report.plans_cleared = self._plans.clear()
            self._snapshot = snapshot
            self._count("_updates_applied")
            return report

    def invalidate_results(self) -> int:
        """Explicitly drop every cached result; returns the count."""
        return self._results.clear()

    def invalidate_plans(self) -> int:
        """Explicitly drop every cached plan; returns the count."""
        with self._stats_lock:
            self._plan_generation += 1
        return self._plans.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchService(epoch={self._snapshot.epoch}, "
            f"backend={self._snapshot.engine.backend_name!r}, "
            f"workers={self.max_workers}, closed={self._closed})"
        )
