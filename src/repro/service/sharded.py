"""The :class:`ShardedMatchService` — multi-process scatter-gather serving.

Hosts each shard of a sharded index in its own ``multiprocessing``
worker (always the ``spawn`` start method — fork is unsafe under the
coordinator's threads) and answers queries by routing, scattering over
the worker pipes in parallel, and merging the partial top-k replies
with the same deterministic gather as
:class:`~repro.shard.ShardedEngine`:

    from repro.service import ShardedMatchService

    with ShardedMatchService.from_manifest("index.ridx") as service:
        service.top_k("A//B[C]", k=5)
        service.apply_updates(edges_added=[("v1", "v9")])

Design:

* **Post-fork shard opening** — a worker booted from a manifest opens
  *only its own* ``.ridx`` inside the child, so mmap'd pages belong to
  the worker and the coordinator never materializes a shard's closure.
* **Per-shard deadlines** — one request deadline bounds the whole
  scatter; each worker call inherits the remaining budget, and a worker
  that blows it is terminated and restarted (its pipe is desynchronized
  mid-computation) while the request fails with
  :class:`~repro.exceptions.DeadlineExceededError` — the same taxonomy
  as :class:`MatchService`.
* **Graceful degradation** — a dead worker raises
  :class:`~repro.exceptions.ShardUnavailableError` (after one restart
  attempt when ``restart_workers`` is on).  ``on_shard_failure="error"``
  fails the request; ``"degrade"`` returns the merged partials from the
  surviving shards with ``response.degraded`` set, raising only when no
  routed shard answered.
* **Epoch-consistent swaps** — ``apply_updates`` re-plans, rebuilds
  every shard subgraph, and ships them to the workers one epoch later.
  Every query reply carries its worker's epoch; a scatter that observes
  a mixed or stale epoch (it raced the swap) transparently retries
  against the new epoch, so no response ever mixes two graph versions.
* **Per-shard delta overlays** — under ``update_policy="auto"`` small
  update batches ship as ``delta`` ops: each worker parks its new
  subgraph and bumps its epoch immediately, folding incrementally
  (:func:`repro.delta.view.fold_graph`) on its next query — the update
  call returns without waiting for any shard to rebuild.  ``compact()``
  asks every worker to fold now.  ``apply_updates(...,
  num_shards=...)`` additionally re-spreads the graph over a different
  worker count in the same epoch-consistent swap.
* **Replicated shards with failover** — ``replication=R`` spawns R
  workers per shard (a :class:`_ShardGroup`), all serving the same
  subgraph.  Reads round-robin across live replicas; a replica that is
  dead or misses its slice of the deadline fails over to a peer (the
  first attempt gets half the remaining budget so a hung replica
  leaves room for the retry), and dead replicas respawn in the
  background off the read path — a single worker kill neither degrades
  answers nor blocks a scatter on a reboot.  Updates broadcast to every
  replica, so the whole group moves epochs together.
* **Per-shard write-ahead durability** — with ``wal_path`` set, every
  ``apply_updates`` appends its record batch to one WAL segment per
  shard (``shard-NN.wal``, generation-stamped with the manifest epoch
  it applies on top of) *before* any worker sees the new epoch.  The
  segments are replicas of the same global record stream — delta
  records cannot express a shard-local view (member sets shrink on
  re-plan, and records have no node-remove), and replicating the log
  means any one surviving segment recovers the full write history.
  Boot replays the longest segment over the manifest base (stale
  segments — older generation than the manifest, the crash window
  between checkpoint and truncate — are discarded per shard), and
  ``compact()`` on a manifest-backed service checkpoints durably:
  re-shard the folded graph at the current epoch, then truncate every
  segment at the new stamp.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import repro.exceptions as _exceptions
from repro.core.matches import Match
from repro.delta.records import records_from_updates
from repro.delta.view import apply_records
from repro.delta.wal import WriteAheadLog, scan_wal
from repro.devtools.lockcheck import make_lock
from repro.engine.config import EngineConfig
from repro.exceptions import (
    DeadlineExceededError,
    EngineError,
    GraphError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShardError,
    ShardUnavailableError,
)
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import WILDCARD
from repro.query.compiler import CompiledQuery, compile_query
from repro.shard.engine import _union_graph
from repro.shard.manifest import load_manifest, shard_index, shard_paths
from repro.shard.merge import merge_topk
from repro.shard.plan import ShardPlan
from repro.shard.worker import worker_main

#: How long a worker may take to boot (build/mmap its engine) before the
#: coordinator declares it dead.
_BOOT_TIMEOUT = 120.0
#: Poll granularity while waiting on a worker pipe.
_POLL_INTERVAL = 0.05
#: Scatters retried when a reply's epoch proves the request raced a swap.
_EPOCH_RETRIES = 3


@dataclass(frozen=True)
class ShardedResponse:
    """One answered scatter-gather request, with its provenance."""

    matches: tuple[Match, ...]
    epoch: int
    k: int
    algorithm: str | None
    #: Shards the query was routed to (sorted indices).
    shards_routed: tuple[int, ...]
    #: Routed shards that failed (non-empty only under ``"degrade"``).
    shards_failed: tuple[int, ...]
    #: True when the answer is a partial merge over surviving shards.
    degraded: bool
    elapsed_seconds: float


class _ShardWorker:
    """Coordinator-side handle of one shard worker process.

    One in-flight request per worker (the pipe is a strict
    request/reply channel); the handle's lock enforces that, and a
    reply-timeout poisons the handle — the process is terminated and
    respawned from its boot spec rather than left desynchronized.
    """

    def __init__(self, index: int, ctx, boot: dict, replica: int = 0) -> None:
        self.index = index
        self.replica = replica
        self._ctx = ctx
        self._boot = boot
        self.lock = make_lock("sharded.worker")
        self.restarts = 0
        #: Bumped by every (re)spawn.  A caller whose request just blew
        #: up captures the incarnation it failed against; restarting is
        #: then conditional on the incarnation being unchanged, which is
        #: immune to the SIGKILL-to-waitpid race where a freshly killed
        #: process still reads as alive.
        self.incarnation = 0
        self.process = None
        self.conn = None
        self._spawn()

    # -- lifecycle ------------------------------------------------------
    def _spawn(self) -> None:
        self.incarnation += 1
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child, self._boot),
            name=f"repro-shard-{self.index}.{self.replica}",
            daemon=True,
        )
        process.start()
        child.close()
        self.process = process
        self.conn = parent
        reply = self._recv(time.monotonic() + _BOOT_TIMEOUT)
        if reply[0] != "ok":
            self._terminate()
            raise ShardUnavailableError(
                f"shard {self.index} failed to boot: "
                f"{reply[1]}: {reply[2]}"
                if len(reply) == 3
                else f"shard {self.index} failed to boot"
            )

    def restart(self) -> None:
        """Terminate (if needed) and respawn from the boot spec."""
        self._terminate()
        self.restarts += 1
        self._spawn()

    def _terminate(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
            self.process = None

    def shutdown(self) -> None:
        """Polite exit: ask, wait briefly, then terminate."""
        if self.conn is not None and self.process is not None:
            try:
                self.conn.send(("exit",))
                self.process.join(timeout=2.0)
            except (BrokenPipeError, OSError):
                pass
        self._terminate()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    # -- protocol -------------------------------------------------------
    def _recv(self, expires_at: float | None):
        """Wait for one reply, watching liveness and the deadline."""
        while True:
            try:
                if self.conn.poll(_POLL_INTERVAL):
                    return self.conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardUnavailableError(
                    f"shard {self.index} worker died mid-request"
                ) from exc
            if expires_at is not None and time.monotonic() > expires_at:
                # The worker is mid-computation; its pipe is now
                # desynchronized.  Poison the handle so the next caller
                # respawns instead of reading this request's late reply.
                self._terminate()
                raise DeadlineExceededError(
                    f"shard {self.index} missed the request deadline"
                )
            if not self.alive:
                raise ShardUnavailableError(
                    f"shard {self.index} worker died mid-request"
                )

    def call(self, op: str, payload: tuple, expires_at: float | None):
        """One request/reply exchange (serialized per worker)."""
        remaining = None
        if expires_at is not None:
            remaining = expires_at - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"request deadline expired before shard {self.index} "
                    "was called"
                )
        if not self.lock.acquire(timeout=remaining if remaining else -1):
            raise DeadlineExceededError(
                f"request deadline expired waiting for shard {self.index}"
            )
        try:
            if not self.alive:
                raise ShardUnavailableError(
                    f"shard {self.index} worker is not running"
                )
            try:
                self.conn.send((op, *payload))
            except (BrokenPipeError, OSError) as exc:
                raise ShardUnavailableError(
                    f"shard {self.index} worker died (broken pipe)"
                ) from exc
            return self._recv(expires_at)
        finally:
            self.lock.release()


class _ShardGroup:
    """All replicas of one shard: failover reads, broadcast writes.

    Reads rotate a round-robin cursor over the replicas and fail over
    to the next live peer when the preferred one is dead or misses its
    slice of the deadline; a dead replica is respawned on a background
    thread so the scatter path never blocks on a boot (except as a last
    resort when *every* replica is down).  Update ops broadcast to all
    replicas so the group changes epochs as a unit — a replica that
    misses a broadcast because it was dead is restarted from the new
    boot spec instead.
    """

    def __init__(self, index: int, ctx, boot: dict, replication: int) -> None:
        self.index = index
        self._ctx = ctx
        self.replicas: list[_ShardWorker] = []
        try:
            for replica in range(replication):
                self.replicas.append(_ShardWorker(index, ctx, boot, replica))
        except BaseException:
            self.shutdown()
            raise
        self._rr = 0
        self._rr_lock = make_lock("sharded.rr")
        self.failovers = 0
        self.background_restarts = 0

    # -- introspection --------------------------------------------------
    @property
    def replication(self) -> int:
        return len(self.replicas)

    @property
    def alive_count(self) -> int:
        return sum(1 for worker in self.replicas if worker.alive)

    @property
    def restarts(self) -> int:
        return sum(worker.restarts for worker in self.replicas)

    # -- reads ----------------------------------------------------------
    def _read_order(self) -> list[_ShardWorker]:
        """Replicas in attempt order: round-robin, live ones first."""
        with self._rr_lock:
            start = self._rr
            self._rr = (self._rr + 1) % len(self.replicas)
        rotated = self.replicas[start:] + self.replicas[:start]
        return [w for w in rotated if w.alive] + [
            w for w in rotated if not w.alive
        ]

    def _restart_in_background(
        self, worker: _ShardWorker, incarnation: int
    ) -> None:
        """Respawn a broken replica off the read path (at most one at a
        time per replica — a held lock means someone is already on it).

        ``incarnation`` is the worker incarnation the caller's request
        failed against: the respawn is skipped when someone else already
        replaced it, and happens regardless of ``is_alive()`` otherwise
        (a broken pipe condemns the incarnation even while the killed
        process awaits its waitpid).
        """
        if not worker.lock.acquire(blocking=False):
            return

        def _revive() -> None:
            try:
                if worker.incarnation == incarnation:
                    self.background_restarts += 1
                    worker.restart()
            except ReproError:
                pass  # stays dead; the next failover tries again
            finally:
                worker.lock.release()

        threading.Thread(
            target=_revive,
            name=f"repro-shard-{self.index}.{worker.replica}-revive",
            daemon=True,
        ).start()

    def query(
        self,
        compiled: CompiledQuery,
        k: int,
        algorithm: str | None,
        expires_at: float | None,
        restart_workers: bool,
    ):
        """One shard's reply tuple, trying replicas until one answers.

        Non-final attempts get at most half the remaining deadline
        budget, so a hung replica still leaves its peer enough time to
        answer; the final attempt gets whatever remains, and is the
        only one allowed to restart a dead worker inline.
        """
        candidates = self._read_order()
        if restart_workers:
            # Revive dead replicas the rotation is about to skip — a
            # replica nobody queries must not stay dead forever.
            for worker in candidates:
                if not worker.alive:
                    self._restart_in_background(worker, worker.incarnation)
        last = len(candidates) - 1
        last_error: Exception | None = None
        for position, worker in enumerate(candidates):
            final = position == last
            attempt_expires = expires_at
            if expires_at is not None and not final:
                now = time.monotonic()
                attempt_expires = min(
                    expires_at, now + (expires_at - now) / 2.0
                )
            incarnation = worker.incarnation
            try:
                return self._attempt(
                    worker,
                    compiled,
                    k,
                    algorithm,
                    attempt_expires,
                    restart_inline=final and restart_workers,
                )
            except ShardUnavailableError as exc:
                last_error = exc
                if restart_workers:
                    self._restart_in_background(worker, incarnation)
                if final:
                    raise
                self.failovers += 1
            except DeadlineExceededError as exc:
                # _recv poisoned (terminated) the hung worker; revive it
                # in the background and spend the rest of the budget on
                # a peer.
                last_error = exc
                if restart_workers:
                    self._restart_in_background(worker, incarnation)
                if final:
                    raise
                self.failovers += 1
        raise last_error  # pragma: no cover - loop always raises/returns

    def _attempt(
        self,
        worker: _ShardWorker,
        compiled: CompiledQuery,
        k: int,
        algorithm: str | None,
        expires_at: float | None,
        restart_inline: bool,
    ):
        incarnation = worker.incarnation
        try:
            return worker.call("query", (compiled, k, algorithm), expires_at)
        except ShardUnavailableError:
            if not restart_inline:
                raise
            with worker.lock:
                if worker.incarnation == incarnation:
                    worker.restart()
            return worker.call("query", (compiled, k, algorithm), expires_at)

    # -- writes ---------------------------------------------------------
    def broadcast(self, op: str, payload: tuple, boot: dict) -> None:
        """Ship one update op to every replica.

        A dead replica is restarted from the *new* boot spec (which is
        equivalent to having applied the op); a live replica that
        rejects the op fails the whole update.
        """
        for worker in self.replicas:
            try:
                reply = worker.call(op, payload, None)
            except ShardUnavailableError:
                with worker.lock:
                    worker._boot = boot
                    worker.restart()
                reply = ("ok", None)
            if reply[0] != "ok":
                raise ServiceError(
                    f"shard {self.index} (replica {worker.replica}) "
                    f"rejected the update: {reply[2]}"
                )
            worker._boot = boot

    def set_boot(self, boot: dict) -> None:
        for worker in self.replicas:
            worker._boot = boot

    def compact(self, expires_at: float | None) -> tuple[int, list[str]]:
        """Ask every replica to fold; returns ``(ok_count, errors)``."""
        oks = 0
        errors: list[str] = []
        for worker in self.replicas:
            try:
                reply = worker.call("compact", (), expires_at)
            except (ShardError, ServiceError) as exc:
                errors.append(
                    f"shard {self.index}.{worker.replica}: {exc}"
                )
                continue
            if reply[0] == "ok":
                oks += 1
            else:
                errors.append(
                    f"shard {self.index}.{worker.replica}: {reply[2]}"
                )
        return oks, errors

    # -- lifecycle ------------------------------------------------------
    def shutdown(self) -> None:
        for worker in self.replicas:
            worker.shutdown()


class ShardedMatchService:
    """Scatter-gather serving over one worker process per shard.

    Construct either from a graph (``ShardedMatchService(graph,
    num_shards=4)`` — subgraphs are planned here and shipped to the
    spawned workers) or from a sharded manifest
    (:meth:`from_manifest` — each worker opens only its own ``.ridx``,
    post-fork).  The query surface mirrors :class:`MatchService`:
    ``top_k`` / ``request`` sync, ``submit`` / ``batch`` over a bounded
    thread pool with deadlines and back-pressure.
    """

    def __init__(
        self,
        graph: LabeledDiGraph | None = None,
        config: EngineConfig | None = None,
        *,
        manifest: str | Path | None = None,
        num_shards: int = 2,
        max_workers: int = 4,
        max_pending: int | None = None,
        default_deadline: float | None = None,
        on_shard_failure: str = "error",
        restart_workers: bool = True,
        update_policy: str = "auto",
        delta_batch_limit: int = 64,
        replication: int | None = None,
        wal_path: str | Path | None = None,
        **overrides,
    ) -> None:
        if (graph is None) == (manifest is None):
            raise ServiceError(
                "pass exactly one of graph= or manifest= to ShardedMatchService"
            )
        if replication is not None and replication < 1:
            raise ServiceError(
                f"replication must be >= 1, got {replication}"
            )
        if on_shard_failure not in ("error", "degrade"):
            raise ServiceError(
                'on_shard_failure must be "error" or "degrade", got '
                f"{on_shard_failure!r}"
            )
        if update_policy not in ("auto", "delta", "eager"):
            raise ServiceError(
                'update_policy must be "auto", "delta", or "eager", got '
                f"{update_policy!r}"
            )
        if delta_batch_limit < 1:
            raise ServiceError(
                f"delta_batch_limit must be >= 1, got {delta_batch_limit}"
            )
        if max_workers <= 0:
            raise ServiceError(f"max_workers must be positive, got {max_workers}")
        if max_pending is None:
            max_pending = 8 * max_workers
        if max_pending <= 0:
            raise ServiceError(f"max_pending must be positive, got {max_pending}")
        if default_deadline is not None and default_deadline <= 0:
            raise ServiceError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        self.on_shard_failure = on_shard_failure
        self.restart_workers = restart_workers
        self.update_policy = update_policy
        self.delta_batch_limit = delta_batch_limit
        self.max_workers = max_workers
        self.max_pending = max_pending
        self.default_deadline = default_deadline
        self._ctx = multiprocessing.get_context("spawn")
        self._config = config if config is not None else EngineConfig(**overrides)
        self._closed = False
        self._epoch = 0
        self._update_lock = make_lock("sharded.update")
        self._stats_lock = make_lock("sharded.stats")
        self._requests = 0
        self._degraded_responses = 0
        self._epoch_retries = 0
        self._deadline_misses = 0
        self._overload_rejections = 0
        self._updates_applied = 0
        self._delta_updates = 0
        self._eager_updates = 0
        self._shard_count_changes = 0
        self._compactions = 0
        self._shards: list[_ShardGroup] = []

        # -- per-shard write-ahead log state ---------------------------
        self.manifest_path: Path | None = None
        self._wal_dir = None if wal_path is None else Path(wal_path)
        self._wals: list[WriteAheadLog] = []
        #: Every record appended since the segments' generation stamp
        #: (mirrors the segments; seeds new segments on a resize).
        self._wal_records: list = []
        #: The epoch the segments' records apply on top of (the manifest
        #: epoch at the last durable checkpoint).
        self._wal_generation = 0
        self._wal_recovered_records = 0
        self._wal_stale_discards = 0

        if graph is not None:
            self.replication = replication if replication is not None else 1
            self._graph: LabeledDiGraph | None = graph.copy()
            self._plan: ShardPlan | None = ShardPlan.from_graph(
                self._graph, num_shards, self.replication
            )
            self.requested_shards = num_shards
            self._owner = {
                label: spec.index
                for spec in self._plan.shards
                for label in spec.labels
            }
            boots = [
                {
                    "mode": "graph",
                    "graph": self._plan.subgraph(self._graph, spec.index),
                    "config": self._config,
                    "epoch": 0,
                }
                for spec in self._plan.shards
            ]
        else:
            self.manifest_path = Path(manifest)
            document = load_manifest(self.manifest_path)
            self.replication = (
                replication
                if replication is not None
                else int(document.get("replication", 1))
            )
            self._graph = None  # reassembled lazily, on first apply_updates
            self._plan = None
            self._epoch = int(document.get("epoch", 0))
            self.requested_shards = document.get(
                "requested_shards", document["shard_count"]
            )
            self._owner = {}
            for entry in document["shards"]:
                for label in entry["labels"]:
                    self._owner[label] = entry["index"]
            boots = [
                {"mode": "file", "path": str(path), "overrides": {}, "epoch": self._epoch}
                for path in shard_paths(document, self.manifest_path)
            ]

        if self._wal_dir is not None:
            boots = self._boot_wals(boots)

        try:
            for index, boot in enumerate(boots):
                self._shards.append(
                    _ShardGroup(index, self._ctx, boot, self.replication)
                )
        except BaseException:
            for group in self._shards:
                group.shutdown()
            for wal in self._wals:
                wal.close()
            raise
        self.shard_count = len(self._shards)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="shardedservice"
        )
        # Scatter fan-out runs on its own pool so a multi-shard request
        # inside a submit() worker thread cannot deadlock the request
        # pool against itself.
        self._fanout = ThreadPoolExecutor(
            max_workers=max(2, self.shard_count),
            thread_name_prefix="shardfanout",
        )
        self._slots = threading.BoundedSemaphore(max_pending)

    @classmethod
    def from_manifest(
        cls, manifest: str | Path, **kwargs
    ) -> "ShardedMatchService":
        """Serve a sharded index; each worker mmaps only its own shard."""
        return cls(manifest=manifest, **kwargs)

    # ------------------------------------------------------------------
    # Per-shard write-ahead log
    # ------------------------------------------------------------------
    def _wal_segment_path(self, index: int) -> Path:
        return self._wal_dir / f"shard-{index:02d}.wal"

    def _boot_wals(self, boots: list[dict]) -> list[dict]:
        """Open one WAL segment per shard; replay what a crash left.

        Each segment carries the same global record stream (see the
        module docstring for why shard-local streams are unsound), so
        recovery takes the longest surviving sequence — every shorter
        segment must be a prefix of it (a crash mid-append tears at
        most the tail of each).  A segment stamped older than the boot
        epoch is the checkpoint-then-crash window: its records are
        already in the shard files, so it is discarded.  Recovered
        records are replayed onto the assembled base graph, the layout
        is re-planned one epoch later, and the returned boot specs park
        each shard's replayed subgraph as a pending overlay.
        """
        # Boot runs before the service is shared, but the WAL/plan/graph
        # fields it rebinds are _update_lock state everywhere else —
        # hold it here too so the invariant is unconditional.
        with self._update_lock:
            self._wal_dir.mkdir(parents=True, exist_ok=True)
            base = self._epoch
            self._wal_generation = base
            wals: list[WriteAheadLog] = []
            sequences: list[tuple] = []
            try:
                for index in range(len(boots)):
                    wal = WriteAheadLog(
                        self._wal_segment_path(index), generation=base
                    )
                    wals.append(wal)
                    if wal.generation < base:
                        wal.rewrite((), generation=base)
                        self._wal_stale_discards += 1
                    elif wal.generation > base:
                        raise ServiceError(
                            f"WAL segment {wal.path} is stamped generation "
                            f"{wal.generation}, ahead of the index epoch "
                            f"{base}; it does not pair with this index"
                        )
                    else:
                        sequences.append(wal.recovered_records)
                # Segments past the shard count are a crashed resize's
                # leftovers; they hold the same stream, so honour then
                # drop them.
                known = {wal.path for wal in wals}
                for orphan in sorted(self._wal_dir.glob("shard-*.wal")):
                    if orphan in known or orphan.suffix != ".wal":
                        continue
                    scan = scan_wal(orphan)
                    if scan.generation == base:
                        sequences.append(scan.records)
                    orphan.unlink()
                best: tuple = ()
                for sequence in sequences:
                    if len(sequence) > len(best):
                        best = sequence
                for sequence in sequences:
                    if tuple(best[: len(sequence)]) != tuple(sequence):
                        raise ServiceError(
                            "per-shard WAL segments disagree (not prefixes "
                            "of one stream); refusing to guess a replay "
                            f"order under {self._wal_dir}"
                        )
            except BaseException:
                for wal in wals:
                    wal.close()
                raise
            self._wals = wals
            self._wal_records = list(best)
            self._wal_recovered_records = len(best)
            if not best:
                return boots
            graph = self._materialize_graph().copy()
            try:
                apply_records(graph, best)
            except (GraphError, TypeError, ValueError, IndexError) as exc:
                raise ServiceError(
                    f"recovered per-shard WAL does not apply to this "
                    f"index: {exc}"
                ) from exc
            self._graph = graph
            self._epoch = base + 1
            plan = ShardPlan.from_graph(
                graph, self.requested_shards, self.replication
            )
            self._plan = plan
            self._owner = {
                label: spec.index
                for spec in plan.shards
                for label in spec.labels
            }
            replayed: list[dict] = []
            for spec in plan.shards:
                subgraph = plan.subgraph(graph, spec.index)
                old = boots[spec.index] if spec.index < len(boots) else None
                if old is not None and old.get("mode") == "file":
                    replayed.append(
                        {**old, "epoch": self._epoch, "pending": subgraph}
                    )
                else:
                    replayed.append(
                        {
                            "mode": "graph",
                            "graph": subgraph,
                            "config": self._config,
                            "epoch": self._epoch,
                        }
                    )
            self._realign_wals(len(replayed))
            return replayed

    def _realign_wals(self, count: int) -> None:
        """Match the segment set to ``count`` shards (resize support).

        Surplus segments are deleted; new ones are seeded with the full
        record history at the current stamp, keeping every segment a
        replica of the same stream.
        """
        if self._wal_dir is None:
            return
        while len(self._wals) > count:
            wal = self._wals.pop()
            path = wal.path
            wal.close()
            path.unlink(missing_ok=True)
        for index in range(len(self._wals), count):
            wal = WriteAheadLog(
                self._wal_segment_path(index),
                generation=self._wal_generation,
            )
            wal.rewrite(
                tuple(self._wal_records), generation=self._wal_generation
            )
            self._wals.append(wal)

    def _wal_append_locked(self, records) -> None:
        """Write-ahead step of ``apply_updates``: every segment, then ack."""
        for wal in self._wals:
            wal.append(records)
        self._wal_records.extend(records)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def closed(self) -> bool:
        return self._closed

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def statistics(self, include_shards: bool = False) -> dict:
        """Serving counters; ``include_shards=True`` adds per-worker stats."""
        stats = {
            "epoch": self._epoch,
            "shard_count": self.shard_count,
            "requested_shards": self.requested_shards,
            "replication": self.replication,
            "requests": self._requests,
            "degraded_responses": self._degraded_responses,
            "epoch_retries": self._epoch_retries,
            "deadline_misses": self._deadline_misses,
            "overload_rejections": self._overload_rejections,
            "updates_applied": self._updates_applied,
            "worker_restarts": sum(g.restarts for g in self._shards),
            "workers_alive": sum(g.alive_count for g in self._shards),
            "failovers": sum(g.failovers for g in self._shards),
            "background_restarts": sum(
                g.background_restarts for g in self._shards
            ),
            "max_workers": self.max_workers,
            "max_pending": self.max_pending,
            "delta": {
                "policy": self.update_policy,
                "batch_limit": self.delta_batch_limit,
                "delta_updates": self._delta_updates,
                "eager_updates": self._eager_updates,
                "shard_count_changes": self._shard_count_changes,
                "compactions": self._compactions,
                "wal": None
                if self._wal_dir is None
                else {
                    "dir": str(self._wal_dir),
                    "generation": self._wal_generation,
                    "records": len(self._wal_records),
                    "recovered_records": self._wal_recovered_records,
                    "stale_discards": self._wal_stale_discards,
                    "segments": [wal.stats() for wal in self._wals],
                },
            },
        }
        if include_shards:
            shards = []
            for group in self._shards:
                entry = {
                    "replication": group.replication,
                    "replicas_alive": group.alive_count,
                    "restarts": group.restarts,
                    "failovers": group.failovers,
                }
                preferred = next(
                    (w for w in group.replicas if w.alive),
                    group.replicas[0],
                )
                try:
                    reply = preferred.call(
                        "stats", (), time.monotonic() + 10.0
                    )
                    entry["engine"] = (
                        reply[1] if reply[0] == "ok" else {"error": reply[2]}
                    )
                except (ShardError, ServiceError) as exc:
                    entry["engine"] = {"unavailable": str(exc)}
                shards.append(entry)
            stats["shards"] = shards
        return stats

    # ------------------------------------------------------------------
    # Routing (coordinator-side, no engine required)
    # ------------------------------------------------------------------
    def _compile(self, query) -> CompiledQuery:
        compiled = compile_query(query)
        if compiled.is_cyclic:
            raise EngineError(
                "cyclic (kGPM) patterns cannot run on a sharded service: "
                "they match over the bidirected closure, which label-range "
                "shards cannot answer locally; use an unsharded "
                "MatchService for this query"
            )
        return compiled

    def route(self, query) -> tuple[int, ...]:
        """Shard indices ``query`` scatters to (sorted, possibly empty)."""
        compiled = self._compile(query)
        root_label = compiled.tree.label(compiled.tree.root)
        if root_label == WILDCARD:
            return tuple(range(self.shard_count))
        matcher = compiled.effective_matcher(self._config.label_matcher)
        alphabet = tuple(self._owner)
        data_labels = matcher.data_labels_for(root_label, alphabet)
        if data_labels is None:
            return tuple(range(self.shard_count))
        owners = {
            self._owner[label] for label in data_labels if label in self._owner
        }
        return tuple(sorted(owners))

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("this ShardedMatchService has been closed")

    def _shard_query(
        self,
        group: _ShardGroup,
        compiled: CompiledQuery,
        k: int,
        algorithm: str | None,
        expires_at: float | None,
    ):
        """One shard's partial answer: ``(epoch, matches)``.

        The group fails over across replicas; only when every replica
        is exhausted (after one inline restart attempt, when enabled)
        does :class:`ShardUnavailableError` propagate to the gather.
        """
        reply = group.query(
            compiled, k, algorithm, expires_at, self.restart_workers
        )
        if reply[0] == "error":
            raise self._reraise(group.index, reply[1], reply[2])
        return reply[1], reply[2]

    @staticmethod
    def _reraise(index: int, name: str, message: str) -> Exception:
        """Map a worker's ``("error", name, message)`` reply to an exception."""
        exc_class = getattr(_exceptions, name, None)
        if isinstance(exc_class, type) and issubclass(exc_class, ReproError):
            return exc_class(message)
        if name in ("ValueError", "TypeError", "KeyError"):
            return {"ValueError": ValueError, "TypeError": TypeError,
                    "KeyError": KeyError}[name](message)
        return ShardError(f"shard {index}: {name}: {message}")

    def _scatter_once(
        self,
        compiled: CompiledQuery,
        k: int,
        algorithm: str | None,
        expires_at: float | None,
    ) -> tuple[int, list[Match], tuple[int, ...], tuple[int, ...], bool]:
        """One scatter round: ``(epoch, matches, routed, failed, consistent)``."""
        targets = self.route(compiled)
        if not targets:
            return self._epoch, [], (), (), True
        # Snapshot the group list once: a concurrent resize swaps it
        # out whole, and a routing table that outruns the swap would
        # index past the end — report inconsistent and retry instead.
        groups = self._shards
        if any(shard >= len(groups) for shard in targets):
            return self._epoch, [], targets, (), False
        futures = {
            shard: self._fanout.submit(
                self._shard_query,
                groups[shard],
                compiled,
                k,
                algorithm,
                expires_at,
            )
            for shard in targets
        }
        partials: list[list[Match]] = []
        epochs: set[int] = set()
        failed: list[int] = []
        first_error: Exception | None = None
        for shard, future in futures.items():
            try:
                epoch, matches = future.result()
                epochs.add(epoch)
                partials.append(matches)
            except ShardUnavailableError as exc:
                failed.append(shard)
                if first_error is None:
                    first_error = exc
            except Exception as exc:  # noqa: BLE001 - gather must drain all
                if first_error is None or isinstance(
                    first_error, ShardUnavailableError
                ):
                    first_error = exc
        if first_error is not None and not isinstance(
            first_error, ShardUnavailableError
        ):
            raise first_error
        if failed and (self.on_shard_failure == "error" or not partials):
            raise first_error
        consistent = len(epochs) <= 1
        epoch = epochs.pop() if epochs else self._epoch
        return epoch, merge_topk(partials, k), targets, tuple(failed), consistent

    def _answer(
        self, query, k: int, algorithm: str | None, expires_at: float | None
    ) -> ShardedResponse:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        compiled = self._compile(query)
        self._count("_requests")
        for _attempt in range(_EPOCH_RETRIES + 1):
            epoch, matches, routed, failed, consistent = self._scatter_once(
                compiled, k, algorithm, expires_at
            )
            if consistent:
                # An answer whose shards all agree on one epoch is a
                # consistent snapshot even if a swap landed concurrently;
                # only mixed-epoch scatters (some shards pre-swap, some
                # post-swap) must retry.
                if failed:
                    self._count("_degraded_responses")
                return ShardedResponse(
                    matches=tuple(matches),
                    epoch=epoch,
                    k=k,
                    algorithm=algorithm,
                    shards_routed=routed,
                    shards_failed=failed,
                    degraded=bool(failed),
                    elapsed_seconds=time.perf_counter() - started,
                )
            self._count("_epoch_retries")
        raise ServiceError(
            f"request could not observe a consistent epoch after "
            f"{_EPOCH_RETRIES} retries (updates arriving too fast?)"
        )

    def top_k(self, query, k: int, algorithm: str | None = None) -> list[Match]:
        """Synchronous global top-k on the caller's thread."""
        self._check_open()
        return list(self._answer(query, k, algorithm, self._expiry(None)).matches)

    def request(
        self,
        query,
        k: int,
        algorithm: str | None = None,
        deadline: float | None = None,
    ) -> ShardedResponse:
        """Like :meth:`top_k` but returns the full :class:`ShardedResponse`."""
        self._check_open()
        return self._answer(query, k, algorithm, self._expiry(deadline))

    def _expiry(self, deadline: float | None) -> float | None:
        if deadline is None:
            deadline = self.default_deadline
        if deadline is None:
            return None
        if deadline <= 0:
            raise ServiceError(f"deadline must be positive, got {deadline}")
        return time.monotonic() + deadline

    # ------------------------------------------------------------------
    # Asynchronous execution over the bounded pool
    # ------------------------------------------------------------------
    def _run_request(
        self, query, k: int, algorithm: str | None, expires_at: float | None
    ) -> ShardedResponse:
        if expires_at is not None and time.monotonic() > expires_at:
            self._count("_deadline_misses")
            raise DeadlineExceededError(
                "request deadline expired while queued "
                f"(deadline was {expires_at:.3f} on the monotonic clock)"
            )
        return self._answer(query, k, algorithm, expires_at)

    def _submit(
        self, query, k: int, algorithm: str | None, deadline: float | None,
        block: bool,
    ) -> Future:
        self._check_open()
        expires_at = self._expiry(deadline)
        if not self._slots.acquire(blocking=block):
            self._count("_overload_rejections")
            raise ServiceOverloadedError(
                f"request queue is full ({self.max_pending} in flight); "
                "back off and retry"
            )
        try:
            future = self._pool.submit(
                self._run_request, query, k, algorithm, expires_at
            )
        except RuntimeError as exc:  # pool shut down concurrently
            self._slots.release()
            raise ServiceClosedError(
                "this ShardedMatchService has been closed"
            ) from exc
        future.add_done_callback(lambda _finished: self._slots.release())
        return future

    def submit(
        self, query, k: int, algorithm: str | None = None,
        deadline: float | None = None,
    ) -> Future:
        """Queue one request; resolves to a :class:`ShardedResponse`."""
        return self._submit(query, k, algorithm, deadline, block=False)

    def batch(
        self, queries: Iterable, k: int, algorithm: str | None = None,
        deadline: float | None = None,
    ) -> list[list[Match]]:
        """Answer many queries through the pool, in order (back-pressured)."""
        futures = [
            self._submit(query, k, algorithm, deadline, block=True)
            for query in queries
        ]
        return [list(future.result().matches) for future in futures]

    # ------------------------------------------------------------------
    # Updates: epoch-consistent snapshot swap across all shards
    # ------------------------------------------------------------------
    def _materialize_graph(self) -> LabeledDiGraph:
        """The full graph (reassembled from the shards on first need)."""
        if self._graph is None:
            from repro.engine.core import MatchEngine

            document = load_manifest(self.manifest_path)
            # Both callers (_boot_wals, apply_updates) hold _update_lock;
            # this helper has no unlocked entry point.
            # reprolint: disable=RL004
            self._graph = _union_graph(
                MatchEngine.load(path).graph
                for path in shard_paths(document, self.manifest_path)
            )
        return self._graph

    def apply_updates(
        self,
        edges_added: tuple = (),
        edges_removed: tuple = (),
        nodes_added: dict | None = None,
        labels_changed: dict | None = None,
        num_shards: int | None = None,
    ) -> dict:
        """Re-plan and move every shard to the next epoch.

        Under the default ``update_policy="auto"``, batches up to
        ``delta_batch_limit`` records ship as per-shard *delta* overlays:
        each worker parks its new subgraph, becomes the new epoch
        immediately, and folds incrementally on its next query — this
        call returns without waiting for any backend rebuild.  Larger
        batches (and every batch under ``"eager"``) ship as classic
        ``swap`` ops that rebuild before replying.  Requests racing
        either path are epoch-checked and retried by :meth:`_answer`,
        so every response reflects exactly one graph version.

        ``labels_changed`` relabels existing nodes (may move them across
        label-range shards).  ``num_shards`` re-spreads the graph over a
        different worker count in the same epoch-consistent update
        (workers are spawned or retired as needed; the re-spread itself
        is always eager, since the label->shard layout moves).  Returns
        a summary report dict.
        """
        try:
            records = records_from_updates(
                edges_added, edges_removed, nodes_added, labels_changed
            )
        except (TypeError, ValueError, IndexError) as exc:
            raise ServiceError(f"invalid graph update: {exc}") from exc
        if not records and num_shards is None:
            raise ServiceError(
                "apply_updates needs at least one change (edges_added, "
                "edges_removed, nodes_added, or labels_changed) or a "
                "num_shards target"
            )
        if num_shards is not None and num_shards < 1:
            raise ServiceError(
                f"num_shards must be positive, got {num_shards}"
            )
        started = time.perf_counter()
        with self._update_lock:
            self._check_open()
            graph = self._materialize_graph().copy()
            try:
                apply_records(graph, records)
            except (GraphError, TypeError, ValueError, IndexError) as exc:
                raise ServiceError(f"invalid graph update: {exc}") from exc
            if num_shards is not None:
                self.requested_shards = num_shards
            plan = ShardPlan.from_graph(
                graph, self.requested_shards, self.replication
            )
            new_epoch = self._epoch + 1
            subgraphs = [
                plan.subgraph(graph, spec.index) for spec in plan.shards
            ]
            resized = plan.shard_count != self.shard_count
            use_delta = not resized and (
                self.update_policy == "delta"
                or (
                    self.update_policy == "auto"
                    and len(records) <= self.delta_batch_limit
                )
            )
            # Write-ahead: the batch must be durable in every shard's
            # segment before any worker serves the new epoch — this is
            # the acknowledgement barrier.
            if self._wals and records:
                self._wal_append_locked(records)
            if resized:
                self._resize_workers_locked(subgraphs, new_epoch)
                self._realign_wals(self.shard_count)
            else:
                op = "delta" if use_delta else "swap"
                for group, subgraph in zip(self._shards, subgraphs):
                    boot = {
                        "mode": "graph",
                        "graph": subgraph,
                        "config": self._config,
                        "epoch": new_epoch,
                    }
                    group.broadcast(op, (new_epoch, subgraph), boot)
            self._graph = graph
            self._plan = plan
            self._owner = {
                label: spec.index
                for spec in plan.shards
                for label in spec.labels
            }
            self._epoch = new_epoch
            self._count("_updates_applied")
            self._count("_delta_updates" if use_delta else "_eager_updates")
            if resized:
                self._count("_shard_count_changes")
        return {
            "epoch": new_epoch,
            "nodes_added": len(dict(nodes_added or {})),
            "edges_added": len(tuple(edges_added)),
            "edges_removed": len(tuple(edges_removed)),
            "labels_changed": len(dict(labels_changed or {})),
            "deferred": use_delta,
            "shard_count": self.shard_count,
            "resized": resized,
            "elapsed_seconds": time.perf_counter() - started,
        }

    def _resize_workers_locked(self, subgraphs, new_epoch: int) -> None:
        """Grow or shrink the worker set to ``len(subgraphs)`` shards.

        Kept workers are swapped eagerly (a re-spread moves labels
        between shards, so no worker's overlay is a refresh of its old
        graph); new workers boot from their subgraph; surplus workers
        are retired after the new list is installed, so an in-flight
        scatter holding the old list still finds live handles (its
        mixed-epoch reply triggers the normal retry).
        """
        old_groups = self._shards
        new_count = len(subgraphs)
        boots = [
            {
                "mode": "graph",
                "graph": subgraph,
                "config": self._config,
                "epoch": new_epoch,
            }
            for subgraph in subgraphs
        ]
        kept = old_groups[:new_count]
        for group, boot in zip(kept, boots):
            group.broadcast("swap", (new_epoch, boot["graph"]), boot)
        added: list[_ShardGroup] = []
        try:
            for index in range(len(kept), new_count):
                added.append(
                    _ShardGroup(
                        index, self._ctx, boots[index], self.replication
                    )
                )
        except BaseException:
            for group in added:
                group.shutdown()
            raise
        retired = old_groups[new_count:]
        self._shards = kept + added
        self.shard_count = new_count
        for group in retired:
            group.shutdown()
        if added:
            # The fan-out pool must cover a full scatter concurrently;
            # grow it and let the old pool drain in the background.
            old_fanout = self._fanout
            self._fanout = ThreadPoolExecutor(
                max_workers=max(2, new_count),
                thread_name_prefix="shardfanout",
            )
            old_fanout.shutdown(wait=False)

    def compact(self) -> dict:
        """Fold every worker's pending delta overlay now.

        The sharded sibling of :meth:`MatchService.compact`: workers
        materialize off the query path, so a quiet period can absorb
        accumulated overlays before the next traffic burst.

        On a manifest-backed service with a per-shard WAL this is also
        the **durable checkpoint** (the sharded edition of the swap
        protocol): re-shard the current graph over the manifest at the
        current epoch, then truncate every segment with the new stamp.
        A crash between the two steps leaves segments stamped with the
        old generation — exactly what the boot-time stale-segment
        discard detects.  Graph-constructed services have no durable
        base to checkpoint into, so their segments are left intact.
        """
        started = time.perf_counter()
        with self._update_lock:
            self._check_open()
            compacted = 0
            errors: list[str] = []
            for group in self._shards:
                oks, group_errors = group.compact(
                    time.monotonic() + _BOOT_TIMEOUT
                )
                errors.extend(group_errors)
                if oks == group.replication:
                    compacted += 1
            checkpointed = False
            if (
                self._wals
                and self._wal_records
                and not errors
                and self.manifest_path is not None
                and self._graph is not None
            ):
                document = shard_index(
                    self._graph,
                    self.manifest_path,
                    self.requested_shards,
                    self._config,
                    epoch=self._epoch,
                    replication=self.replication,
                )
                paths = shard_paths(document, self.manifest_path)
                for group, path in zip(self._shards, paths):
                    group.set_boot(
                        {
                            "mode": "file",
                            "path": str(path),
                            "overrides": {},
                            "epoch": self._epoch,
                        }
                    )
                for wal in self._wals:
                    wal.rewrite((), generation=self._epoch)
                self._wal_generation = self._epoch
                self._wal_records = []
                checkpointed = True
            self._count("_compactions")
        return {
            "epoch": self._epoch,
            "shards_compacted": compacted,
            "checkpointed": checkpointed,
            "errors": errors,
            "elapsed_seconds": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests, stop the pools, reap every worker.

        WAL segments are closed, **not** truncated: pending records
        stay durable for the next boot's replay (checkpointing is
        :meth:`compact`'s job, not close's).
        """
        self._closed = True
        self._pool.shutdown(wait=wait)
        self._fanout.shutdown(wait=wait)
        for group in self._shards:
            group.shutdown()
        for wal in self._wals:
            wal.close()

    def __enter__(self) -> "ShardedMatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedMatchService(shards={self.shard_count}, "
            f"epoch={self._epoch}, closed={self._closed})"
        )
