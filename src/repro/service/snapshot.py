"""Snapshot isolation over immutable engines.

A :class:`Snapshot` binds one epoch number to one fully-built
:class:`~repro.engine.core.MatchEngine` whose graph and closure indexes
are never mutated after construction.  Requests resolve the service's
current snapshot exactly once and run against it end to end, so a
concurrent update can never tear a request: readers either see the old
graph version everywhere or the new one everywhere (the LSST design's
immutable-index snapshot style).

:meth:`Snapshot.updated` is the *eager* update path — it folds the
deltas through :func:`repro.delta.view.fold` (the same machinery the
write-ahead overlay's lazy materialization uses, which is what makes
the two paths answer byte-identically) and wraps the result in a fresh
snapshot one epoch later.  The :class:`UpdateReport` carries the
invalidation signal the service's caches consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.delta.records import records_from_updates
from repro.delta.view import fold
from repro.engine.core import MatchEngine, PreparedQuery
from repro.exceptions import GraphError, QueryError, ServiceError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import WILDCARD
from repro.query.compiler import CompiledQuery, ContainsLabel
from repro.twig.semantics import EQUALITY, LabelMatcher


@dataclass
class UpdateReport:
    """What one :meth:`MatchService.apply_updates` call did, and its cost."""

    epoch: int
    nodes_added: int
    edges_added: int
    edges_removed: int
    #: Whether the backend refreshed incrementally or rebuilt from scratch.
    incremental: bool
    #: Closure rows the refresh actually recomputed (== num_nodes on rebuild).
    rows_recomputed: int
    #: Labels whose reachability pairs changed (``None`` = unknown, assume all).
    affected_labels: frozenset | None
    elapsed_seconds: float
    #: Filled by the service: result-cache entries that survived / died,
    #: and whether the plan cache had to be cleared (node additions only).
    results_migrated: int = field(default=0)
    results_dropped: int = field(default=0)
    plans_cleared: int = field(default=0)
    #: Nodes whose label changed in place (always a rebuild when > 0).
    labels_changed: int = field(default=0)
    #: True when the update took the delta path: the records are logged
    #: but not yet folded — ``incremental``/``rows_recomputed``/
    #: ``affected_labels`` describe the *pending* state (nothing
    #: recomputed yet), and the fold happens on first read or in the
    #: background compactor.
    deferred: bool = field(default=False)
    #: Overlay records pending after this update (delta path only).
    pending_records: int = field(default=0)


@dataclass(frozen=True)
class Snapshot:
    """One immutable graph version: epoch + engine, never mutated.

    Safe to share across threads; everything a request touches (graph,
    closure store, planner) belongs to this snapshot and outlives it for
    as long as any reader holds a reference.
    """

    epoch: int
    engine: MatchEngine
    created_at: float

    @classmethod
    def initial(cls, engine: MatchEngine) -> "Snapshot":
        return cls(epoch=0, engine=engine, created_at=time.time())

    @property
    def graph(self) -> LabeledDiGraph:
        return self.engine.graph

    def top_k(self, query, k: int, algorithm: str | None = None):
        """Answer directly from this snapshot (bypasses service caches)."""
        return self.engine.top_k(query, k, algorithm=algorithm)

    def prepare(self, query, k: int = 10, algorithm: str | None = None) -> PreparedQuery:
        return self.engine.prepare(query, k, algorithm=algorithm)

    # ------------------------------------------------------------------
    def updated(
        self,
        edges_added: tuple = (),
        edges_removed: tuple = (),
        nodes_added: dict | None = None,
        labels_changed: dict | None = None,
    ) -> tuple["Snapshot", UpdateReport]:
        """A new snapshot with the deltas applied; this one is untouched.

        ``edges_added`` takes ``(tail, head)`` or ``(tail, head, weight)``
        tuples; ``edges_removed`` takes ``(tail, head)``; ``nodes_added``
        maps new node ids to labels; ``labels_changed`` maps existing
        node ids to their new labels (always a full rebuild: interned
        ids are label-sorted, so a relabel moves the columnar layout).
        Structural problems (unknown endpoints, removing a missing edge,
        re-adding under a different label) surface as
        :class:`~repro.exceptions.ServiceError`.

        The fold itself is :func:`repro.delta.view.fold` — the same
        code path the write-ahead delta overlay materializes through,
        so eager and deferred updates are byte-identical by
        construction.
        """
        started = time.perf_counter()
        try:
            records = records_from_updates(
                edges_added, edges_removed, nodes_added, labels_changed
            )
        except (TypeError, ValueError, IndexError) as exc:
            raise ServiceError(f"invalid graph update: {exc}") from exc
        if not records:
            raise ServiceError(
                "apply_updates needs at least one change (edges_added, "
                "edges_removed, nodes_added, or labels_changed)"
            )
        try:
            result = fold(self.engine, records)
        except (GraphError, TypeError, ValueError, IndexError) as exc:
            raise ServiceError(f"invalid graph update: {exc}") from exc
        snapshot = Snapshot(
            epoch=self.epoch + 1, engine=result.engine, created_at=time.time()
        )
        report = UpdateReport(
            epoch=snapshot.epoch,
            nodes_added=result.nodes_added,
            edges_added=result.edges_added,
            edges_removed=result.edges_removed,
            incremental=result.incremental,
            rows_recomputed=result.rows_recomputed,
            affected_labels=result.affected_labels,
            elapsed_seconds=time.perf_counter() - started,
            labels_changed=result.labels_changed,
        )
        return snapshot, report


# ----------------------------------------------------------------------
# Cacheability analysis of compiled queries
# ----------------------------------------------------------------------


def _has_canonical_tree_ids(tree) -> bool:
    """True when the tree's node ids are exactly the DSL lowering's
    (``n0, n1, ...`` in pre-order) — i.e. its match assignments are
    keyed identically to any other query with the same canonical DSL."""
    counter = 0

    def visit(node) -> bool:
        nonlocal counter
        if node != f"n{counter}":
            return False
        counter += 1
        return all(visit(child) for child in tree.children(node))

    return visit(tree.root) and counter == tree.num_nodes


def cacheable_dsl(compiled: CompiledQuery) -> str | None:
    """The canonical DSL when it identifies the query losslessly.

    The caches key on canonical DSL text, so a cached answer may be
    served to *any* request with the same DSL — which is only sound when
    the query's physical node ids are exactly what the DSL lowering
    produces (``n0..`` pre-order for trees, the declared names for
    ``graph(...)`` patterns): match assignments are keyed by those ids.
    Raw ``QueryTree``/``QueryGraph`` inputs with their own node ids, or
    with non-string labels whose DSL rendering would collide with
    genuinely-string queries, bypass the caches; so do labels the DSL
    cannot print at all.
    """
    query = compiled.pattern if compiled.is_cyclic else compiled.tree
    for node in query.nodes():
        label = query.label(node)
        if label == WILDCARD or isinstance(label, ContainsLabel):
            continue
        if not isinstance(label, str):
            return None
    if compiled.is_cyclic:
        declared = [name for name, _ in compiled.ast.nodes]
        if list(query.nodes()) != declared:
            return None
    elif not _has_canonical_tree_ids(query):
        return None
    try:
        return compiled.to_dsl()
    except QueryError:  # labels the DSL cannot express (e.g. '}')
        return None


def query_label_footprint(
    compiled: CompiledQuery, engine_matcher: LabelMatcher = EQUALITY
) -> frozenset | None:
    """The exact data labels a query's answer can depend on, or ``None``.

    Plain-labeled tree queries under plain equality semantics touch only
    closure pairs (and, for ``/`` edges, adjacency) between their own
    labels; :meth:`Snapshot.updated` folds both distance changes and the
    changed edges' endpoint labels into ``affected_labels``, so a
    disjoint footprint provably leaves the results unchanged.  Anything
    that maps query labels onto data labels the footprint cannot
    enumerate — wildcards, containment, cyclic patterns (which run on
    the separately-built bidirected closure), and any non-equality
    ``engine_matcher`` configured on the engine — reports ``None``
    (= invalidate on every update).
    """
    if compiled.is_cyclic or compiled.wildcards or compiled.containment_nodes:
        return None
    if type(compiled.effective_matcher(engine_matcher)) is not LabelMatcher:
        return None
    return frozenset(
        compiled.tree.label(node) for node in compiled.tree.nodes()
    )
