"""Sharded scatter-gather layer: label-range shards of one index.

The monolithic engine serves one process from one index; this package
splits the index into N label-range shards — each an independent,
individually mmap-able ``.ridx`` file — and answers queries by
scatter-gather:

    from repro.shard import ShardedEngine, shard_index

    shard_index(graph, "index.ridx", num_shards=4)   # writes
    #   index.shard-00.ridx … index.shard-03.ridx  + manifest index.ridx

    engine = ShardedEngine.load("index.ridx")
    engine.top_k("A//B[C]", k=5)      # routed, merged, == unsharded

Pieces:

* :class:`~repro.shard.plan.ShardPlan` — the deterministic label-range
  partition (contiguous interner id spans, whole labels only);
* :func:`~repro.shard.manifest.shard_index` /
  :func:`~repro.shard.manifest.load_manifest` — the checksummed
  manifest and per-shard ``.ridx`` files with boundary-pair sections;
* :class:`~repro.shard.engine.ShardedEngine` — the in-process
  scatter-gather engine (MatchEngine query surface, deterministic
  global merge);
* :mod:`~repro.shard.worker` — the spawn-safe worker process that
  :class:`repro.service.ShardedMatchService` hosts each shard in.

Layering: ``repro.shard`` sits beside ``repro.engine`` and *below*
``repro.service`` — it must never import from the service layer
(enforced by the CI ruff gate and ``tests/shard/test_layering.py``);
the multi-process front-end lives in :mod:`repro.service.sharded`.
"""

from repro.shard.engine import ShardedEngine
from repro.shard.manifest import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    load_manifest,
    shard_index,
    sniff_is_shard_manifest,
)
from repro.shard.merge import ShardedResultStream, merge_topk
from repro.shard.plan import ShardPlan, ShardSpec

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "ShardPlan",
    "ShardSpec",
    "ShardedEngine",
    "ShardedResultStream",
    "load_manifest",
    "merge_topk",
    "shard_index",
    "sniff_is_shard_manifest",
]
