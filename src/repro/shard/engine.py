"""The :class:`ShardedEngine` — scatter-gather over per-shard engines.

Satisfies the :class:`~repro.engine.core.MatchEngine` query surface
(``compile`` / ``explain`` / ``top_k`` / ``stream`` / ``batch`` /
``statistics``) but answers by fanning the compiled query out to
per-shard engines and merging their partial top-k streams:

    from repro.shard import ShardedEngine, shard_index

    shard_index(graph, "index.ridx", num_shards=4)   # offline, once
    engine = ShardedEngine.load("index.ridx")        # mmaps each shard
    engine.top_k("A//B[C]", k=5)                     # == unsharded answer

**Routing.** A tree query's root carries one query label; the effective
matcher maps it to the data labels it can bind (one for plain equality,
several for containment/custom matchers, all for a wildcard root).  The
query is scattered only to the shards *owning* those labels — a plain
root label touches exactly one shard.  Correctness: every match is
rooted at a node of a root-compatible label, that node is owned by
exactly one shard, and the shard's closed member set (forward closure
of its span) contains the entire match with globally-exact distances —
so the owner's local top-k already contains every global top-k match
rooted there, and the merged union over routed shards contains the
global top-k (see :mod:`repro.shard.merge` for the deterministic
gather).

**Exclusions.** Cyclic (kGPM) patterns run on a *bidirected* closure;
forward-closed label-range shards cannot answer bidirected reachability
locally, so cyclic queries raise :class:`~repro.exceptions.EngineError`
and must use an unsharded engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.matches import Match
from repro.engine.config import EngineConfig
from repro.engine.core import MatchEngine
from repro.exceptions import EngineError, ShardError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import WILDCARD
from repro.query.compiler import CompiledQuery, compile_query
from repro.shard.manifest import load_manifest, shard_index, shard_paths
from repro.shard.merge import ShardedResultStream, merge_topk
from repro.shard.plan import ShardPlan, plan_from_layout


class ShardedEngine:
    """Top-k twig matching over label-range shards, one engine per shard."""

    def __init__(
        self,
        graph: LabeledDiGraph,
        plan: ShardPlan,
        engines: tuple[MatchEngine, ...],
        *,
        epoch: int = 0,
        manifest_path: Path | None = None,
    ) -> None:
        if len(engines) != plan.shard_count:
            raise ShardError(
                f"plan has {plan.shard_count} shards but {len(engines)} "
                "engines were supplied"
            )
        self.graph = graph
        self.plan = plan
        self.epoch = epoch
        self.manifest_path = manifest_path
        self._engines = engines

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: LabeledDiGraph,
        num_shards: int,
        config: EngineConfig | None = None,
        **overrides,
    ) -> "ShardedEngine":
        """Build an in-process sharded engine (no files involved)."""
        plan = ShardPlan.from_graph(graph, num_shards)
        engines = tuple(
            MatchEngine(plan.subgraph(graph, spec.index), config, **overrides)
            if config is None
            else MatchEngine(plan.subgraph(graph, spec.index), config)
            for spec in plan.shards
        )
        return cls(graph, plan, engines)

    @classmethod
    def load(cls, manifest_path: str | Path, **overrides) -> "ShardedEngine":
        """Open a sharded index from its manifest.

        The manifest's document checksum and per-file sizes are always
        verified; each shard's ``.ridx`` then opens via ``mmap`` exactly
        like an unsharded index (section CRCs guard the reads).  The
        full graph is reassembled as the union of the shard subgraphs —
        owned nodes appear once, replicas agree by construction — and
        checked against the manifest's recorded counts.
        """
        manifest_path = Path(manifest_path)
        document = load_manifest(manifest_path)
        engines = tuple(
            MatchEngine.load(file_path, **overrides)
            for file_path in shard_paths(document, manifest_path)
        )
        graph = _union_graph(engine.graph for engine in engines)
        counts = document.get("counts", {})
        if (
            graph.num_nodes != counts.get("nodes")
            or graph.num_edges != counts.get("edges")
        ):
            raise ShardError(
                f"{manifest_path}: reassembled graph has "
                f"{graph.num_nodes} nodes / {graph.num_edges} edges, "
                f"manifest records {counts.get('nodes')} / {counts.get('edges')}"
            )
        plan = plan_from_layout(
            graph,
            [entry["labels"] for entry in document["shards"]],
            document.get("requested_shards", len(document["shards"])),
        )
        for spec, entry in zip(plan.shards, document["shards"]):
            if list(spec.span) != list(entry["span"]):
                raise ShardError(
                    f"{manifest_path}: shard {spec.index} span "
                    f"{list(spec.span)} disagrees with manifest "
                    f"{entry['span']}"
                )
        return cls(
            graph,
            plan,
            engines,
            epoch=int(document.get("epoch", 0)),
            manifest_path=manifest_path,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self.plan.shard_count

    @property
    def shard_engines(self) -> tuple[MatchEngine, ...]:
        """The per-shard engines, in shard order (advanced use)."""
        return self._engines

    @property
    def config(self) -> EngineConfig:
        """The (shared) engine config, as carried by shard 0."""
        return self._engines[0].config

    @property
    def backend_name(self) -> str:
        """``sharded[N]`` plus the per-shard backends (CLI summary line)."""
        inner = sorted({engine.backend_name for engine in self._engines})
        return f"sharded[{self.shard_count}]:{'+'.join(inner)}"

    def statistics(self) -> dict:
        """Aggregated sharding + per-shard backend statistics."""
        owned = sum(spec.owned_nodes for spec in self.plan.shards)
        member_total = sum(
            engine.graph.num_nodes for engine in self._engines
        )
        return {
            "shard_count": self.shard_count,
            "requested_shards": self.plan.requested_shards,
            "epoch": self.epoch,
            "graph_nodes": self.graph.num_nodes,
            "graph_edges": self.graph.num_edges,
            "owned_nodes": owned,
            "replicated_nodes": member_total - owned,
            "spans": [list(spec.span) for spec in self.plan.shards],
            "shards": [engine.statistics() for engine in self._engines],
        }

    def compile(self, query) -> CompiledQuery:
        """Normalize any query form (same chokepoint as the flat engine)."""
        return compile_query(query)

    def explain(self, query, k: int = 10, algorithm: str | None = None):
        """The plan the *first routed shard* would run, plus the fan-out.

        Sharded execution runs one such plan per routed shard; the
        returned plan is annotated with the routing via
        ``plan.backend_reasons`` being per-shard, so callers wanting the
        full picture should pair this with :meth:`route`.
        """
        compiled = self._check_tree(self.compile(query))
        targets = self.route(compiled)
        shard = targets[0] if targets else 0
        return self._engines[shard].explain(compiled, k, algorithm=algorithm)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, query) -> tuple[int, ...]:
        """Shard indices a query scatters to (sorted, possibly empty).

        Plain root labels map to exactly one shard; containment roots to
        every owner of a member label; wildcard roots (and custom
        matchers that cannot enumerate their data labels) to all shards.
        A plain root label absent from the graph routes nowhere — the
        empty answer needs no shard at all.
        """
        compiled = self._check_tree(self.compile(query))
        root_label = compiled.tree.label(compiled.tree.root)
        if root_label == WILDCARD:
            return self.plan.all_shards()
        matcher = compiled.effective_matcher(self.config.label_matcher)
        data_labels = matcher.data_labels_for(root_label, self.plan.labels())
        if data_labels is None:
            return self.plan.all_shards()
        return self.plan.owners_for(data_labels)

    def _check_tree(self, compiled: CompiledQuery) -> CompiledQuery:
        if compiled.is_cyclic:
            raise EngineError(
                "cyclic (kGPM) patterns cannot run on a sharded engine: "
                "they match over the bidirected closure, which forward-"
                "closed label-range shards cannot answer locally; use an "
                "unsharded MatchEngine for this query"
            )
        return compiled

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def top_k(self, query, k: int, algorithm: str | None = None) -> list[Match]:
        """The global top-k: scatter to routed shards, gather via merge."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        compiled = self._check_tree(self.compile(query))
        targets = self.route(compiled)
        partials = [
            self._engines[shard].top_k(compiled, k, algorithm=algorithm)
            for shard in targets
        ]
        return merge_topk(partials, k)

    def stream(
        self, query, algorithm: str | None = None, k_hint: int = 10
    ) -> ShardedResultStream:
        """A lazy merged stream over the routed shards' result streams."""
        compiled = self._check_tree(self.compile(query))
        targets = self.route(compiled)
        return ShardedResultStream(
            self._engines[shard].stream(
                compiled, algorithm=algorithm, k_hint=k_hint
            )
            for shard in targets
        )

    def batch(
        self, queries: Iterable, k: int, algorithm: str | None = None
    ) -> list[list[Match]]:
        """One merged top-k list per query, in input order."""
        return [self.top_k(query, k, algorithm=algorithm) for query in queries]

    # ------------------------------------------------------------------
    # Updates and persistence
    # ------------------------------------------------------------------
    def updated(
        self,
        edges_added: tuple = (),
        edges_removed: tuple = (),
        nodes_added: dict | None = None,
    ) -> "ShardedEngine":
        """A new sharded engine with the deltas applied, one epoch later.

        Sharded updates re-plan and rebuild every shard: a changed edge
        can move any span's forward closure, and new labels can shift
        the whole label-range layout.  (The flat engine's incremental
        refresh is a per-snapshot optimization; the sharded layer trades
        it for partition invariants that stay exact.)  The receiver is
        untouched — this is snapshot-swap semantics, mirroring
        :meth:`repro.service.Snapshot.updated`.
        """
        graph = _apply_deltas(
            self.graph, edges_added, edges_removed, nodes_added
        )
        rebuilt = ShardedEngine.from_graph(
            graph, self.plan.requested_shards, self.config
        )
        rebuilt.epoch = self.epoch + 1
        return rebuilt

    def save_index(self, path: str | Path, num_shards: int | None = None) -> dict:
        """Write this engine's graph as a sharded index (manifest at ``path``)."""
        return shard_index(
            self.graph,
            path,
            self.plan.requested_shards if num_shards is None else num_shards,
            self.config,
            epoch=self.epoch,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine({self.shard_count} shards, epoch={self.epoch}, "
            f"nodes={self.graph.num_nodes})"
        )


def _union_graph(graphs: Iterable[LabeledDiGraph]) -> LabeledDiGraph:
    """Union of shard subgraphs (replicas must agree on label/weight)."""
    graphs = list(graphs)
    union = LabeledDiGraph()
    for graph in graphs:
        for node in graph.nodes():
            label = graph.label(node)
            if node in union:
                if union.label(node) != label:
                    raise ShardError(
                        f"shards disagree on the label of node {node!r}"
                    )
            else:
                union.add_node(node, label)
    for graph in graphs:
        for tail, head, weight in graph.edges():
            if not union.has_edge(tail, head):
                union.add_edge(tail, head, weight)
    return union


def _apply_deltas(
    graph: LabeledDiGraph,
    edges_added: tuple,
    edges_removed: tuple,
    nodes_added: dict | None,
) -> LabeledDiGraph:
    """Copy ``graph`` and apply the update deltas (ShardError on misuse)."""
    from repro.exceptions import GraphError

    updated = graph.copy()
    try:
        for node, label in (nodes_added or {}).items():
            updated.add_node(node, label)
        for edge in tuple(edges_added):
            updated.add_edge(*edge)
        for edge in tuple(edges_removed):
            updated.remove_edge(edge[0], edge[1])
    except (GraphError, TypeError, ValueError, IndexError) as exc:
        raise ShardError(f"invalid graph update: {exc}") from exc
    return updated
