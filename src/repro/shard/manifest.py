"""Sharded index writer and the checksummed shard manifest.

:func:`shard_index` partitions a graph with a
:class:`~repro.shard.plan.ShardPlan`, builds one engine per shard over
its closed induced subgraph, and writes

* ``<stem>.shard-00.ridx … <stem>.shard-NN.ridx`` — ordinary binary
  ``.ridx`` files (every section CRC-checked as usual) extended with a
  ``meta["shard"]`` descriptor and two boundary-pair sections
  (``shard.bt``/``shard.bh``: global interned ids of the edges leaving
  the shard's owned span — the cut its member set replicates); and
* the **manifest** at ``path`` — a small JSON document recording the
  shard count, the label → shard map (as each shard's owned label run),
  per-shard id spans, sizes, per-file SHA-256 digests, and the epoch.
  The manifest carries its own ``checksum`` (SHA-256 over the canonical
  JSON of everything else), so tampering with either the manifest or a
  shard file is detected before any shard opens.

Loading is two-tier: :func:`load_manifest` always verifies the document
checksum, kind, version, and shard file presence + sizes (cheap, always
on); ``verify_files=True`` additionally re-hashes every shard file —
the CI/''repro shard info --verify'' path, skipped on the serving cold
start where the ``.ridx`` section CRCs already guard reads.
"""

from __future__ import annotations

import hashlib
import json
import os
from array import array
from pathlib import Path

from repro.delta.wal import fsync_dir
from repro.exceptions import IndexFormatError, ShardError
from repro.graph.digraph import LabeledDiGraph
from repro.shard.plan import ShardPlan

MANIFEST_KIND = "repro-shard-manifest"
MANIFEST_VERSION = 1

#: Read-ahead window for :func:`sniff_is_shard_manifest` (manifests are
#: small JSON documents; the kind marker sits in the first key block).
_SNIFF_BYTES = 4096


def shard_file_name(manifest_path: str | Path, index: int) -> str:
    """``<manifest stem>.shard-NN.ridx`` (relative to the manifest)."""
    return f"{Path(manifest_path).stem}.shard-{index:02d}.ridx"


def _canonical_checksum(document: dict) -> str:
    body = {key: value for key, value in document.items() if key != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while chunk := handle.read(1 << 20):
            digest.update(chunk)
    return digest.hexdigest()


def shard_index(
    graph: LabeledDiGraph,
    path: str | Path,
    num_shards: int,
    config=None,
    *,
    epoch: int = 0,
    replication: int = 1,
    **overrides,
) -> dict:
    """Write a sharded index for ``graph``; returns the manifest document.

    ``config``/``overrides`` configure each per-shard engine exactly like
    :class:`~repro.engine.MatchEngine` (``backend="auto"`` lets every
    shard pick the backend its subgraph size calls for).  The effective
    shard count is ``min(num_shards, number of labels)``.
    ``replication`` is recorded in the manifest as the serving hint for
    how many workers should host each shard file.

    Every file lands via temp-name + ``os.replace``: re-sharding over a
    live deployment never leaves a half-written ``.ridx`` or manifest,
    and workers still mmap-ing the previous files keep their (now
    anonymous) inodes.
    """
    from repro.engine.core import MatchEngine
    from repro.storage.diskindex import write_engine_index

    path = Path(path)
    plan = ShardPlan.from_graph(graph, num_shards, replication)
    shards = []
    for spec in plan.shards:
        view = plan.span_view(spec.index)
        subgraph = plan.subgraph(graph, spec.index)
        engine = (
            MatchEngine(subgraph, config)
            if config is not None
            else MatchEngine(subgraph, **overrides)
        )
        boundary_tails, boundary_heads = view.boundary_pairs()
        file_name = shard_file_name(path, spec.index)
        file_path = path.with_name(file_name)
        file_tmp = path.with_name(file_name + ".tmp")
        write_engine_index(
            engine,
            file_tmp,
            extra_meta={
                "shard": {
                    "index": spec.index,
                    "shard_count": plan.shard_count,
                    "epoch": epoch,
                    "span": list(spec.span),
                    "owned_nodes": spec.owned_nodes,
                    "boundary_pairs": len(boundary_tails),
                }
            },
            extra_sections=[
                ("shard.bt", "i", boundary_tails),
                ("shard.bh", "i", boundary_heads),
            ],
        )
        os.replace(file_tmp, file_path)
        fsync_dir(file_path.parent)
        shards.append(
            {
                "index": spec.index,
                "file": file_name,
                "bytes": file_path.stat().st_size,
                "sha256": _file_sha256(file_path),
                "span": list(spec.span),
                "labels": list(spec.labels),
                "owned_nodes": spec.owned_nodes,
                "member_nodes": len(view.members()),
                "boundary_pairs": len(boundary_tails),
            }
        )
    document = {
        "kind": MANIFEST_KIND,
        "version": MANIFEST_VERSION,
        "epoch": epoch,
        "requested_shards": num_shards,
        "shard_count": plan.shard_count,
        "replication": replication,
        "counts": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": len(plan.labels()),
        },
        "shards": shards,
    }
    document["checksum"] = _canonical_checksum(document)
    manifest_tmp = path.with_name(path.name + ".tmp")
    with open(manifest_tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(manifest_tmp, path)
    fsync_dir(path.parent)
    return document


def sniff_is_shard_manifest(path: str | Path) -> bool:
    """True when ``path`` looks like a shard manifest (cheap, no parse)."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(_SNIFF_BYTES)
    except OSError:
        return False
    return head.lstrip()[:1] == b"{" and MANIFEST_KIND.encode() in head


def load_manifest(
    path: str | Path, *, verify_files: bool = False
) -> dict:
    """Parse and validate a shard manifest.

    Always checks: JSON shape, kind, version, the document's own
    checksum, and that every referenced shard file exists with the
    recorded size.  ``verify_files=True`` additionally re-hashes each
    shard file against its recorded SHA-256 (the slow, paranoid path).
    Problems raise :class:`~repro.exceptions.IndexFormatError`.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise IndexFormatError(f"{path}: unreadable shard manifest ({exc})") from exc
    if not isinstance(document, dict) or document.get("kind") != MANIFEST_KIND:
        raise IndexFormatError(
            f"{path}: not a shard manifest "
            f"(kind={document.get('kind')!r})"
            if isinstance(document, dict)
            else f"{path}: not a shard manifest"
        )
    version = document.get("version")
    if version != MANIFEST_VERSION:
        raise IndexFormatError(
            f"{path}: unsupported manifest version {version!r} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    recorded = document.get("checksum")
    expected = _canonical_checksum(document)
    if recorded != expected:
        raise IndexFormatError(
            f"{path}: manifest checksum mismatch "
            f"(recorded {str(recorded)[:12]}…, computed {expected[:12]}…)"
        )
    replication = document.get("replication", 1)
    if (
        isinstance(replication, bool)
        or not isinstance(replication, int)
        or replication < 1
    ):
        raise IndexFormatError(
            f"{path}: manifest replication must be a positive integer, "
            f"got {replication!r}"
        )
    shards = document.get("shards")
    if not isinstance(shards, list) or not shards:
        raise IndexFormatError(f"{path}: manifest lists no shards")
    if len(shards) != document.get("shard_count"):
        raise IndexFormatError(
            f"{path}: shard_count={document.get('shard_count')} but "
            f"{len(shards)} shards are listed"
        )
    for position, entry in enumerate(shards):
        if entry.get("index") != position:
            raise IndexFormatError(
                f"{path}: shard entries out of order at position {position}"
            )
        file_path = path.with_name(entry["file"])
        try:
            size = file_path.stat().st_size
        except OSError as exc:
            raise IndexFormatError(
                f"{path}: missing shard file {entry['file']!r}"
            ) from exc
        if size != entry.get("bytes"):
            raise IndexFormatError(
                f"{path}: shard file {entry['file']!r} is {size} bytes, "
                f"manifest records {entry.get('bytes')}"
            )
        if verify_files and _file_sha256(file_path) != entry.get("sha256"):
            raise IndexFormatError(
                f"{path}: shard file {entry['file']!r} fails its SHA-256 check"
            )
    return document


def shard_paths(document: dict, manifest_path: str | Path) -> list[Path]:
    """Absolute shard file paths, in shard order."""
    base = Path(manifest_path)
    return [base.with_name(entry["file"]) for entry in document["shards"]]


def boundary_pairs_from_disk(shard_path: str | Path) -> tuple[array, array]:
    """Read one shard file's persisted boundary-pair arrays (global ids)."""
    from repro.storage.diskindex import DiskIndex

    disk = DiskIndex(shard_path)
    try:
        if not disk.has("shard.bt"):
            raise ShardError(
                f"{shard_path}: not a shard file (no boundary sections)"
            )
        tails = array("i", disk.array("shard.bt", "i"))
        heads = array("i", disk.array("shard.bh", "i"))
    finally:
        disk.close()
    return tails, heads
