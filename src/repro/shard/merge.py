"""Global top-k merging of per-shard partial results.

The scatter phase gives each routed shard's local top-k (or a lazy local
stream); the gather phase here folds them into one globally-correct,
*deterministic* answer:

* **Dedup** — a match whose root lies in one shard can also appear in
  another shard's closed member set (replicated via the forward
  closure); the merge keeps exactly one copy per assignment.
* **Tie-breaking** — within one score, matches are ordered by the
  canonical assignment key (``repr``-sorted ``(query node, data node)``
  pairs), so the merged sequence is a pure function of the match *set*,
  independent of shard count, arrival order, or which enumerator
  produced each partial.  Single-engine runs may break boundary-score
  ties differently (their order is enumeration-internal), which is why
  the differential suite compares the exact scores plus the exact
  assignment set below the boundary — the same contract the unsharded
  backends are held to among themselves.

:func:`merge_topk` is the eager k-heap path (``heapq.merge`` over
key-sorted partials); :class:`ShardedResultStream` is the lazy one,
draining per-shard :class:`~repro.engine.stream.ResultStream` objects
one score group at a time so a caller who stops early never pays for
deeper enumeration in any shard.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

from repro.core.matches import Match


def assignment_key(match: Match) -> tuple:
    """Canonical identity of a match: its ``repr``-sorted assignment."""
    return tuple(sorted(match.assignment.items(), key=repr))


def match_key(match: Match) -> tuple:
    """Total deterministic order: score first, then assignment identity."""
    return (match.score, assignment_key(match))


def merge_topk(partials: Sequence[Sequence[Match]], k: int) -> list[Match]:
    """The global top-k of several per-shard top-k lists.

    Each partial must already be score-sorted (engine output is); the
    merge is a k-way heap over key-sorted runs with adjacent dedup, so
    the result is deterministic regardless of how many shards produced
    which subsets.
    """
    if k <= 0:
        return []
    runs = [sorted(partial, key=match_key) for partial in partials if partial]
    merged: list[Match] = []
    previous_key = None
    for match in heapq.merge(*runs, key=match_key):
        key = match_key(match)
        if key == previous_key:
            continue
        previous_key = key
        merged.append(match)
        if len(merged) == k:
            break
    return merged


class _PeekableStream:
    """One-element lookahead over a per-shard lazy result stream."""

    __slots__ = ("_stream", "_head")

    def __init__(self, stream) -> None:
        self._stream = stream
        self._head = stream.next()

    def peek(self) -> Match | None:
        return self._head

    def pop(self) -> Match:
        head = self._head
        self._head = self._stream.next()
        return head


class ShardedResultStream:
    """Lazy, deterministic merge of per-shard result streams.

    Mirrors the :class:`~repro.engine.stream.ResultStream` consumption
    API (``next()`` / iteration / ``take(n)``): matches surface in
    global best-first order, one *score group* at a time.  A group is
    complete only once every shard's stream has advanced past that
    score, so within-group ordering can be canonicalized (and
    cross-shard duplicates dropped) without ever looking deeper than the
    current score in any shard — the optimal-enumeration property
    survives sharding.
    """

    def __init__(self, streams: Iterable) -> None:
        self._streams = [_PeekableStream(stream) for stream in streams]
        self._buffer: list[Match] = []
        self._position = 0
        self._consumed = 0

    @property
    def consumed(self) -> int:
        """How many matches this stream has returned."""
        return self._consumed

    # ------------------------------------------------------------------
    def _fill_group(self) -> None:
        """Pull the next complete score group into the buffer."""
        live = [s for s in self._streams if s.peek() is not None]
        if not live:
            return
        best = min(stream.peek().score for stream in live)
        group: dict[tuple, Match] = {}
        for stream in live:
            while (head := stream.peek()) is not None and head.score == best:
                group.setdefault(assignment_key(head), stream.pop())
        self._buffer = [group[key] for key in sorted(group)]
        self._position = 0

    def next(self) -> Match | None:
        """The next best global match, or ``None`` when exhausted."""
        if self._position >= len(self._buffer):
            self._fill_group()
        if self._position >= len(self._buffer):
            return None
        match = self._buffer[self._position]
        self._position += 1
        self._consumed += 1
        return match

    def __next__(self) -> Match:
        match = self.next()
        if match is None:
            raise StopIteration
        return match

    def __iter__(self) -> Iterator[Match]:
        return self

    def take(self, n: int) -> list[Match]:
        """The next ``n`` matches (fewer when enumeration runs dry)."""
        out: list[Match] = []
        while len(out) < n:
            match = self.next()
            if match is None:
                break
            out.append(match)
        return out
