"""Label-range shard planning.

A :class:`ShardPlan` partitions a graph's nodes into N shards by
*interner label range*: the label-major id assignment of
:class:`~repro.compact.interner.NodeInterner` gives every label one
contiguous id interval, so assigning a contiguous *run of labels* to
each shard makes every shard's owned ids one contiguous ``int32`` span —
CSR rows and closure runs split cleanly at span boundaries.

Partitioning invariants (pinned by ``tests/shard/test_plan.py``):

* every label belongs to exactly one shard, whole — a label is never
  split across shards;
* shard spans are contiguous, disjoint, in id order, and cover
  ``[0, num_nodes)`` exactly;
* the plan is a pure function of the (graph, shard-count) pair — two
  builds over equal graphs produce identical plans, which is what lets
  a manifest written on one host be validated on another.

What a shard *materializes* is larger than what it owns: the shard's
member set is the **forward closure** of its span (owned nodes plus
everything reachable from them, via :class:`~repro.compact.span.SpanView`),
and its subgraph is the subgraph induced on that closed set.  Because
shortest paths never leave the forward closure of their source, every
distance computed inside the shard equals the global distance — so any
match rooted at a shard-owned node is found by the shard alone, with a
globally-correct score.  That is the whole scatter-gather correctness
argument: route a query to the shards owning its root's data labels,
and the union of their local top-k streams contains the global top-k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.compact.csr import CompactGraph
from repro.compact.interner import NodeInterner
from repro.compact.span import SpanView
from repro.exceptions import ShardError
from repro.graph.digraph import LabeledDiGraph


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the partition (ids refer to the global interner)."""

    index: int
    #: Labels this shard owns, in id-range order.
    labels: tuple
    #: Half-open owned id interval ``[start, stop)``.
    span: tuple[int, int]
    #: Number of owned nodes (== span width).
    owned_nodes: int


class ShardPlan:
    """A deterministic label-range partition of one graph into N shards."""

    def __init__(
        self,
        interner: NodeInterner,
        compact: CompactGraph,
        shards: tuple[ShardSpec, ...],
        requested_shards: int,
        replication: int = 1,
    ) -> None:
        if replication < 1:
            raise ShardError(f"replication must be >= 1, got {replication}")
        self.interner = interner
        self.compact = compact
        self.shards = shards
        self.requested_shards = requested_shards
        #: How many workers should serve each shard (availability knob;
        #: the partition itself is replication-agnostic).
        self.replication = replication
        self._owner: dict = {}
        for spec in shards:
            for label in spec.labels:
                self._owner[label] = spec.index

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: LabeledDiGraph, num_shards: int, replication: int = 1
    ) -> "ShardPlan":
        """Partition ``graph`` into (at most) ``num_shards`` shards.

        Labels are walked in id-range order and packed greedily against
        the ideal of ``num_nodes / num_shards`` owned nodes per shard; a
        shard closes once it reaches its cumulative quota, provided
        enough labels remain to give every later shard at least one.
        When the graph has fewer labels than requested shards, the
        effective shard count is the label count (recorded alongside the
        requested one).  ``replication`` is carried through to the plan
        (and the manifest) unchanged: it does not affect the partition,
        only how many workers a serving tier spawns per shard.
        """
        if num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {num_shards}")
        if graph.num_nodes == 0:
            raise ShardError("cannot shard an empty graph")
        interner = NodeInterner.from_graph(graph)
        compact = CompactGraph(graph, interner)
        labels = interner.labels()
        effective = min(num_shards, len(labels))
        total = len(interner)
        specs: list[ShardSpec] = []
        run_start_label = 0
        span_start = 0
        cumulative = 0
        for position, label in enumerate(labels):
            cumulative += len(interner.label_range(label))
            labels_left = len(labels) - (position + 1)
            shards_left = effective - len(specs) - 1
            must_close = labels_left == shards_left
            wants_close = cumulative * effective >= (len(specs) + 1) * total
            if (wants_close and labels_left >= shards_left) or must_close:
                span_stop = interner.label_range(label).stop
                specs.append(
                    ShardSpec(
                        index=len(specs),
                        labels=tuple(labels[run_start_label : position + 1]),
                        span=(span_start, span_stop),
                        owned_nodes=span_stop - span_start,
                    )
                )
                run_start_label = position + 1
                span_start = span_stop
        if span_start != total or len(specs) != effective:
            raise ShardError(  # pragma: no cover - partition invariant
                f"partition bug: covered {span_start}/{total} ids "
                f"in {len(specs)}/{effective} shards"
            )
        return cls(interner, compact, tuple(specs), num_shards, replication)

    # ------------------------------------------------------------------
    # Introspection / routing
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def labels(self) -> tuple:
        """All data labels, in id-range order."""
        return self.interner.labels()

    def owner_of(self, label) -> int | None:
        """The shard index owning ``label`` (``None`` when unknown)."""
        return self._owner.get(label)

    def owners_for(self, labels: Iterable) -> tuple[int, ...]:
        """Sorted shard indices owning any of ``labels`` (unknown skipped)."""
        owners = {
            self._owner[label] for label in labels if label in self._owner
        }
        return tuple(sorted(owners))

    def all_shards(self) -> tuple[int, ...]:
        return tuple(range(len(self.shards)))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def span_view(self, index: int) -> SpanView:
        spec = self.shards[index]
        return SpanView(self.compact, spec.span[0], spec.span[1])

    def member_nodes(self, index: int) -> list:
        """The closed member set of shard ``index``, as external node ids."""
        resolve = self.interner.resolve
        return [resolve(i) for i in self.span_view(index).members()]

    def subgraph(self, graph: LabeledDiGraph, index: int) -> LabeledDiGraph:
        """The induced subgraph shard ``index`` materializes.

        ``graph`` must be the graph this plan was built from (the plan
        only keeps the compact form, so the caller supplies the mutable
        original for :meth:`~repro.graph.digraph.LabeledDiGraph.subgraph`).
        """
        return graph.subgraph(self.member_nodes(index))

    def describe(self) -> list[dict]:
        """JSON-ready per-shard summary (spans, labels, member counts)."""
        summary = []
        for spec in self.shards:
            view = self.span_view(spec.index)
            members = view.members()
            tails, _heads = view.boundary_pairs()
            summary.append(
                {
                    "index": spec.index,
                    "span": list(spec.span),
                    "labels": list(spec.labels),
                    "owned_nodes": spec.owned_nodes,
                    "member_nodes": len(members),
                    "replicated_nodes": len(members) - spec.owned_nodes,
                    "boundary_pairs": len(tails),
                }
            )
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"[{a},{b})" for a, b in (s.span for s in self.shards))
        return f"ShardPlan({len(self.shards)} shards: {spans})"


def plan_from_layout(
    graph: LabeledDiGraph,
    shard_labels: Iterable[tuple],
    requested_shards: int,
    replication: int = 1,
) -> ShardPlan:
    """Rebuild a plan from a persisted label layout (manifest load path).

    ``shard_labels`` lists each shard's owned labels in shard order; the
    layout must tile the graph's labels in id-range order exactly —
    anything else means the manifest does not describe this graph.
    """
    interner = NodeInterner.from_graph(graph)
    compact = CompactGraph(graph, interner)
    expected = list(interner.labels())
    flat: list = []
    specs: list[ShardSpec] = []
    span_start = 0
    for index, labels in enumerate(shard_labels):
        labels = tuple(labels)
        if not labels:
            raise ShardError(f"shard {index} owns no labels")
        flat.extend(labels)
        stop = span_start
        for label in labels:
            rng = interner.label_range(label)
            if len(rng) == 0 or rng.start != stop:
                raise ShardError(
                    f"manifest label layout does not tile this graph "
                    f"(shard {index}, label {label!r})"
                )
            stop = rng.stop
        specs.append(
            ShardSpec(
                index=index,
                labels=labels,
                span=(span_start, stop),
                owned_nodes=stop - span_start,
            )
        )
        span_start = stop
    if flat != expected:
        raise ShardError(
            "manifest label layout does not cover the graph's labels "
            f"({len(flat)} listed, {len(expected)} present)"
        )
    return ShardPlan(interner, compact, tuple(specs), requested_shards, replication)
