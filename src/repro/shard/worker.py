"""Spawn-safe shard worker process.

One worker hosts one shard's :class:`~repro.engine.MatchEngine` and
serves a tiny request/response protocol over a ``multiprocessing``
pipe.  The entry point is a module-level function so the ``spawn``
start method (the only one that is safe with threads and the one
:class:`~repro.service.ShardedMatchService` always uses) can import it
by name; the shard index is opened *inside* the child — post-fork in
spirit — so mmap'd pages are owned by the worker and never copied
through the parent.

Protocol (requests are ``(op, *payload)`` tuples; replies are
``("ok", ...)``, ``("error", exc_class_name, message)``):

===========  =============================================  ==============
op           payload                                        ok-reply
===========  =============================================  ==============
``ping``     —                                              ``epoch``
``query``    ``compiled, k, algorithm``                     ``epoch, matches``
``swap``     ``epoch, subgraph``                            ``epoch``
``delta``    ``epoch, subgraph``                            ``epoch``
``compact``  —                                              ``epoch``
``stats``    —                                              ``stats dict``
``exit``     —                                              ``None`` (then exit)
===========  =============================================  ==============

Every ``query`` reply carries the worker's current epoch, which is how
the coordinator detects a request that raced an ``apply_updates`` swap
and retries it for an epoch-consistent answer.  Errors inside an op are
caught and shipped back by *name* (exception classes cross the pipe as
strings, and the coordinator re-raises them from its own taxonomy);
only a broken pipe kills the worker.

``swap`` rebuilds the shard engine before replying (the eager path);
``delta`` is its write-ahead sibling: the worker parks the shipped
subgraph as a pending overlay, bumps its epoch immediately, and folds
via :func:`repro.delta.view.fold_graph` on the next ``query`` /
``stats`` / ``compact`` — an incremental refresh that shares every
unaffected closure row with the old engine, so sustained write traffic
never stalls the scatter path on whole-shard rebuilds.
"""

from __future__ import annotations

import contextlib


def worker_main(conn, boot: dict) -> None:
    """Run one shard worker until ``exit`` or a broken pipe.

    ``boot`` describes how to build the engine:

    * ``{"mode": "file", "path": ..., "overrides": {...}}`` — open one
      shard's ``.ridx`` via :meth:`MatchEngine.load` (mmap happens here,
      in the child);
    * ``{"mode": "graph", "graph": LabeledDiGraph, "config": EngineConfig,
      "epoch": int}`` — build from a shipped subgraph (the
      ``apply_updates`` swap path, and graph-constructed services).

    Either mode may carry ``"pending": LabeledDiGraph`` — the shard's
    current subgraph when it is ahead of the booted base (a replica
    respawning after a ``delta`` it missed, or a coordinator that
    replayed per-shard WAL records over the on-disk files).  It is
    parked exactly like a ``delta`` op and folded on the first read, so
    a restarted replica rejoins at the group's epoch instead of serving
    the stale base.
    """
    from repro.delta.view import fold_graph
    from repro.engine.core import MatchEngine

    try:
        if boot["mode"] == "file":
            engine = MatchEngine.load(boot["path"], **boot.get("overrides", {}))
        else:
            engine = MatchEngine(boot["graph"], boot["config"])
        epoch = int(boot.get("epoch", 0))
        conn.send(("ok", epoch))
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        with contextlib.suppress(Exception):
            conn.send(("error", type(exc).__name__, str(exc)))
        return

    # Deferred-overlay state for the ``delta`` op (possibly pre-seeded
    # by the boot spec when the base the worker opened is stale).
    pending_graph = boot.get("pending")
    materializations = 0
    last_materialize_seconds = 0.0

    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return  # coordinator went away; die quietly
        op, payload = request[0], request[1:]
        try:
            if pending_graph is not None and op in ("query", "stats", "compact"):
                folded = fold_graph(engine, pending_graph)
                engine = folded.engine
                pending_graph = None
                materializations += 1
                last_materialize_seconds = folded.elapsed_seconds
            if op == "ping":
                reply = ("ok", epoch)
            elif op == "query":
                compiled, k, algorithm = payload
                matches = engine.top_k(compiled, k, algorithm=algorithm)
                reply = ("ok", epoch, matches)
            elif op == "swap":
                new_epoch, subgraph = payload
                engine = MatchEngine(subgraph, engine.config)
                pending_graph = None
                epoch = int(new_epoch)
                reply = ("ok", epoch)
            elif op == "delta":
                # Park the target subgraph and become the new epoch now;
                # the expensive fold happens on the next read, off the
                # coordinator's update path.  Consecutive deltas just
                # replace the target (it is always the full new state).
                new_epoch, subgraph = payload
                pending_graph = subgraph
                epoch = int(new_epoch)
                reply = ("ok", epoch)
            elif op == "compact":
                reply = ("ok", epoch)
            elif op == "stats":
                stats = engine.statistics()
                stats["delta"] = {
                    "materializations": materializations,
                    "last_materialize_seconds": last_materialize_seconds,
                }
                reply = ("ok", stats)
            elif op == "exit":
                with contextlib.suppress(Exception):
                    conn.send(("ok", None))
                return
            else:
                reply = ("error", "ShardError", f"unknown worker op {op!r}")
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            reply = ("error", type(exc).__name__, str(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
