"""Simulated block storage with I/O accounting."""

from repro.storage.blocks import DEFAULT_BLOCK_SIZE, BlockTable, TableDirectory
from repro.storage.iostats import IOCostModel, IOCounter

__all__ = [
    "BlockTable",
    "TableDirectory",
    "DEFAULT_BLOCK_SIZE",
    "IOCounter",
    "IOCostModel",
]
