"""Block-organized tables simulating the paper's disk layout.

Sections 3.1 and 4.1 store closure tables on disk: each table is a list of
fixed-size tuples packed into blocks, and algorithms pay I/O per block
read.  :class:`BlockTable` reproduces that interface in memory: entries
are only reachable through :meth:`read_block` / :meth:`iter_blocks`, and
every access is metered through a shared :class:`~repro.storage.iostats.IOCounter`.

Entries of a table may be kept sorted (the paper stores each ``L^alpha_v``
group "in a non-decreasing order based on their shortest distances").
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.exceptions import StorageError
from repro.storage.iostats import IOCounter

DEFAULT_BLOCK_SIZE = 64


class BlockTable:
    """An immutable sequence of entries packed into fixed-size blocks."""

    def __init__(
        self,
        name: str,
        entries: Sequence[Any],
        counter: IOCounter,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size <= 0:
            raise StorageError(f"block size must be positive, got {block_size}")
        self.name = name
        self._entries: tuple[Any, ...] = tuple(entries)
        self._counter = counter
        self.block_size = block_size

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Total number of entries stored."""
        return len(self._entries)

    @property
    def num_blocks(self) -> int:
        """Number of blocks occupied (at least 1 block when non-empty)."""
        if not self._entries:
            return 0
        return (len(self._entries) + self.block_size - 1) // self.block_size

    def read_block(self, index: int) -> tuple[Any, ...]:
        """Read block ``index`` (0-based), metering one block I/O."""
        if index < 0 or index >= max(self.num_blocks, 1):
            raise StorageError(
                f"block {index} out of range for table {self.name!r} "
                f"({self.num_blocks} blocks)"
            )
        start = index * self.block_size
        chunk = self._entries[start : start + self.block_size]
        self._counter.record_read(self.name, len(chunk))
        return chunk

    def iter_blocks(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over all blocks, metering each read."""
        for index in range(self.num_blocks):
            yield self.read_block(index)

    def read_all(self) -> tuple[Any, ...]:
        """Read the full table (every block is metered)."""
        out: list[Any] = []
        for block in self.iter_blocks():
            out.extend(block)
        return tuple(out)

    def peek_unmetered(self) -> tuple[Any, ...]:
        """Access entries without metering — for tests/statistics only."""
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockTable({self.name!r}, entries={self.num_entries}, "
            f"blocks={self.num_blocks})"
        )


class LazyBlockTable:
    """Block-table interface over entries decoded on demand.

    The columnar closure store keeps its entries as flat typed arrays;
    opening a group is an O(1) slice bound, not a list construction.
    This table materializes entry tuples only for the block actually
    read: ``fetch(start, stop)`` must return the decoded entries of the
    half-open range relative to the table (0-based).  Metering is
    identical to :class:`BlockTable`.
    """

    __slots__ = ("name", "block_size", "_counter", "_length", "_fetch")

    def __init__(
        self,
        name: str,
        length: int,
        fetch,
        counter: IOCounter,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size <= 0:
            raise StorageError(f"block size must be positive, got {block_size}")
        self.name = name
        self.block_size = block_size
        self._counter = counter
        self._length = length
        self._fetch = fetch

    @property
    def num_entries(self) -> int:
        """Total number of entries stored."""
        return self._length

    @property
    def num_blocks(self) -> int:
        """Number of blocks occupied (at least 1 block when non-empty)."""
        if not self._length:
            return 0
        return (self._length + self.block_size - 1) // self.block_size

    def read_block(self, index: int) -> tuple[Any, ...]:
        """Read block ``index`` (0-based), metering one block I/O."""
        if index < 0 or index >= max(self.num_blocks, 1):
            raise StorageError(
                f"block {index} out of range for table {self.name!r} "
                f"({self.num_blocks} blocks)"
            )
        start = index * self.block_size
        chunk = self._fetch(start, min(start + self.block_size, self._length))
        self._counter.record_read(self.name, len(chunk))
        return chunk

    def iter_blocks(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over all blocks, metering each read."""
        for index in range(self.num_blocks):
            yield self.read_block(index)

    def read_all(self) -> tuple[Any, ...]:
        """Read the full table (every block is metered)."""
        out: list[Any] = []
        for block in self.iter_blocks():
            out.extend(block)
        return tuple(out)

    def peek_unmetered(self) -> tuple[Any, ...]:
        """Access entries without metering — for tests/statistics only."""
        return self._fetch(0, self._length)

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazyBlockTable({self.name!r}, entries={self.num_entries}, "
            f"blocks={self.num_blocks})"
        )


class TableDirectory:
    """A named collection of :class:`BlockTable` sharing one I/O counter.

    Mimics a directory of table files: opening a table is metered once and
    missing tables yield an empty table (the paper's stores simply have no
    file for label pairs that never co-occur).
    """

    def __init__(self, counter: IOCounter | None = None,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        self.counter = counter if counter is not None else IOCounter()
        self.block_size = block_size
        self._tables: dict[str, BlockTable] = {}

    def create(self, name: str, entries: Sequence[Any]) -> BlockTable:
        """Create (or replace) the table ``name`` with ``entries``."""
        table = BlockTable(name, entries, self.counter, self.block_size)
        self._tables[name] = table
        return table

    def open(self, name: str) -> BlockTable:
        """Open table ``name`` (metered); empty table when absent."""
        self.counter.record_open()
        table = self._tables.get(name)
        if table is None:
            table = BlockTable(name, (), self.counter, self.block_size)
            # Do not cache phantom tables: creation may follow later.
        return table

    def exists(self, name: str) -> bool:
        """True when table ``name`` was created (not metered)."""
        return name in self._tables

    def names(self) -> list[str]:
        """All created table names (not metered)."""
        return sorted(self._tables)

    def total_entries(self) -> int:
        """Total entries across tables (storage-size statistic)."""
        return sum(t.num_entries for t in self._tables.values())

    def total_blocks(self) -> int:
        """Total blocks across tables (storage-size statistic)."""
        return sum(t.num_blocks for t in self._tables.values())
