"""Binary mmap-paged index format (``.ridx``) — zero-parse cold start.

The JSON index documents of :mod:`repro.io` must be fully parsed before
the first query can run; at production scale that front-loads seconds of
decode work onto every process start.  This module stores the same
offline artifacts in a *scan-friendly binary layout* modeled on
partition-addressable scientific stores (Becla et al., LSST): typed
little-endian array runs addressed by a section table, opened with
``mmap`` so the expensive structures — transitive-closure rows and the
per-``L^alpha_beta`` pair-table runs — are adopted as zero-copy
memoryview slices.  Nothing entry-proportional is decoded at open time;
closure blocks page in on first touch and stay metered through the
ordinary :mod:`repro.storage.iostats` counters.

File layout (all integers little-endian; see DESIGN.md "The on-disk
index layout" for the normative spec)::

    header (48 bytes)
        magic            8s   b"REPROIDX"
        version          u16  format version (this module reads 1)
        flags            u16  reserved, 0
        section_count    u32
        table_offset     u64  -> section table
        table_crc        u32  crc32 of the section table bytes
        file_size        u64  total file length (truncation check)
        header_crc       u32  crc32 of the 36 bytes above
        reserved         8x
    section table (40 bytes per section)
        name             16s  ascii, NUL-padded
        offset           u64  8-byte aligned payload offset
        length           u64
        crc              u32  crc32 of the payload bytes
        pad              4x
    payload sections

Sections:

* ``meta`` — one small UTF-8 JSON object (backend name, config knobs,
  counts, flags).  It is metadata, not data: parsing it costs
  microseconds and keeps the format self-describing.
* ``nodes.*`` / ``labels.*`` — the interner pools.  Every node id and
  label carries a **type tag** (0 = str, 1 = int) so non-string
  identities round-trip exactly; anything else is rejected loudly at
  save time instead of being silently coerced.
* ``csr.*`` — the :class:`~repro.compact.CompactGraph` buffers, both
  directions.
* ``rows.*`` — flat closure rows (``full``/``constrained``/``hybrid``):
  one id-sorted ``(target, dist)`` run per source with an offset
  directory.
* ``ltab.*`` — the columnar ``L^alpha_beta`` pair tables exactly as
  :class:`~repro.closure.store.ClosureStore` holds them in memory
  (tails/dists/direct runs, per-node group offsets, arg-min ``E``
  arrays) plus a 64-byte directory record per label pair.
* ``pll.*`` — packed 2-hop labels (``ondemand``/``pll``/``hybrid``).

Integrity: every section that is read at open — header, section table,
the structural directories, and the eagerly-decoded ``pll.*`` labels —
is CRC-checked before use; only the sections that stay untouched until
first query (closure runs, pair-table columns) defer to
:meth:`DiskIndex.verify`, so opening stays O(sections + labels), never
O(closure entries).  Truncation is always caught at open — every
section must lie inside the recorded file size.  All failures raise
:class:`~repro.exceptions.IndexFormatError` before any garbage value
can reach a query.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from pathlib import Path

from repro.closure.pll import PrunedLandmarkIndex
from repro.closure.store import ClosureStore, _PairTable
from repro.closure.transitive import TransitiveClosure
from repro.compact import ClosureRows, CompactGraph, NodeInterner
from repro.exceptions import IndexFormatError
from repro.graph.digraph import LabeledDiGraph

MAGIC = b"REPROIDX"
FORMAT_VERSION = 1

#: Canonical file extension for binary indexes.
BINARY_INDEX_SUFFIX = ".ridx"

_HEADER = struct.Struct("<8sHHIQIQI8x")  # 48 bytes
_SECTION = struct.Struct("<16sQQI4x")  # 40 bytes
_PAIR_DIR = struct.Struct("<ii7q")  # 64 bytes per L^alpha_beta table

_LITTLE = sys.byteorder == "little"

#: Sections that stay *untouched* at open (zero-copy mmap slices): their
#: checksums are verified by :meth:`DiskIndex.verify`, not eagerly —
#: checking them at open would fault in every page and defeat the lazy
#: cold start.  Everything else (including the ``pll.*`` label sections,
#: which are fully decoded at open anyway) is CRC-checked before use.
_LAZY_SECTIONS = frozenset(
    {
        "rows.tgt", "rows.dst",
        "ltab.tails", "ltab.dists", "ltab.direct",
        "ltab.offs", "ltab.etails", "ltab.eheads", "ltab.edists",
    }
)


# ----------------------------------------------------------------------
# Typed-buffer helpers (little-endian on disk, native in memory)
# ----------------------------------------------------------------------


def _to_le_bytes(typecode: str, buf) -> bytes:
    """Little-endian bytes of a typed buffer (arrays, views, iterables)."""
    if not isinstance(buf, (array, bytes, bytearray, memoryview)):
        buf = array(typecode, buf)
    if _LITTLE or typecode == "B":
        return bytes(buf)
    swapped = array(typecode)  # pragma: no cover - big-endian hosts only
    swapped.frombytes(bytes(buf))
    swapped.byteswap()
    return bytes(swapped)


def _typed_view(view: memoryview, typecode: str, name: str):
    """A native typed view over little-endian section bytes."""
    if typecode == "raw" or typecode == "B":
        return view
    try:
        if _LITTLE:
            return view.cast(typecode)
        native = array(typecode)  # pragma: no cover - big-endian hosts only
        native.frombytes(bytes(view))
        native.byteswap()
        return native
    except ValueError as exc:
        raise IndexFormatError(
            f"section {name!r} is not a whole number of {typecode!r} items"
        ) from exc


# ----------------------------------------------------------------------
# Identity pools (type-tagged node ids and labels)
# ----------------------------------------------------------------------

_TAG_STR = 0
_TAG_INT = 1


def encode_identity_pool(values, what: str) -> tuple[array, bytearray, bytearray]:
    """Pack hashable identities into (offsets, tags, blob) sections.

    Only ``str`` and ``int`` identities are supported — exactly the types
    external files can express without ambiguity.  Anything else (bools,
    tuples, frozensets, ...) raises :class:`IndexFormatError` loudly:
    the binary format refuses to coerce where JSON silently stringified.
    """
    offsets = array("I", [0])
    tags = bytearray()
    blob = bytearray()
    for value in values:
        if type(value) is str:
            tags.append(_TAG_STR)
            data = value.encode("utf-8")
        elif type(value) is int:
            tags.append(_TAG_INT)
            data = b"%d" % value
        else:
            raise IndexFormatError(
                f"cannot persist {what} {value!r} of type "
                f"{type(value).__name__}: the index formats preserve str "
                "and int identities only (rename the offending "
                f"{what}s, e.g. to strings, before saving)"
            )
        blob += data
        offsets.append(len(blob))
    return offsets, tags, blob


def _decode_identity_pool(offsets, tags, blob, what: str) -> list:
    values = []
    for position in range(len(tags)):
        data = bytes(blob[offsets[position] : offsets[position + 1]])
        tag = tags[position]
        if tag == _TAG_STR:
            values.append(data.decode("utf-8"))
        elif tag == _TAG_INT:
            try:
                values.append(int(data))
            except ValueError as exc:
                raise IndexFormatError(
                    f"corrupt int-tagged {what} entry {data!r}"
                ) from exc
        else:
            raise IndexFormatError(f"unknown {what} type tag {tag}")
    return values


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------


class _Writer:
    """Accumulate named sections, then emit header + payload + table."""

    def __init__(self) -> None:
        self._sections: list[tuple[str, bytes]] = []

    def add(self, name: str, payload: bytes) -> None:
        if len(name.encode("ascii")) > 16:
            raise IndexFormatError(f"section name {name!r} exceeds 16 bytes")
        self._sections.append((name, payload))

    def add_array(self, name: str, typecode: str, buf) -> None:
        self.add(name, _to_le_bytes(typecode, buf))

    def write(self, path: str | Path) -> None:
        offset = _HEADER.size
        records = []
        chunks = []
        for name, payload in self._sections:
            padding = (-offset) % 8
            chunks.append(b"\0" * padding)
            offset += padding
            records.append((name, offset, len(payload), zlib.crc32(payload)))
            chunks.append(payload)
            offset += len(payload)
        padding = (-offset) % 8
        chunks.append(b"\0" * padding)
        table_offset = offset + padding
        table = b"".join(
            _SECTION.pack(name.encode("ascii"), off, length, crc)
            for name, off, length, crc in records
        )
        file_size = table_offset + len(table)
        head = struct.pack(
            "<8sHHIQIQ",
            MAGIC,
            FORMAT_VERSION,
            0,
            len(records),
            table_offset,
            zlib.crc32(table),
            file_size,
        )
        header = head + struct.pack("<I", zlib.crc32(head)) + b"\0" * 8
        assert len(header) == _HEADER.size
        with open(path, "wb") as handle:
            handle.write(header)
            for chunk in chunks:
                handle.write(chunk)
            handle.write(table)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------


class DiskIndex:
    """One opened ``.ridx`` file: mmap + section directory + meta.

    The mapping stays alive for as long as any artifact slices it (the
    exported memoryviews keep the buffer pinned), so engines opened from
    an index need no explicit lifecycle management.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            try:
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError as exc:
                raise IndexFormatError(
                    f"{self.path}: empty or unmappable index file"
                ) from exc
        self._buffer = memoryview(self._mmap)
        self.mapped_bytes = len(self._buffer)
        self._sections: dict[str, tuple[int, int, int]] = {}
        self._parse_directory()
        self.meta = self._load_meta()

    # -- directory ------------------------------------------------------
    def _parse_directory(self) -> None:
        size = self.mapped_bytes
        if size < _HEADER.size:
            raise IndexFormatError(
                f"{self.path}: truncated index (only {size} bytes, "
                f"header needs {_HEADER.size})"
            )
        magic, version, _flags, count, table_offset, table_crc, file_size, header_crc = (
            _HEADER.unpack_from(self._buffer, 0)
        )
        if magic != MAGIC:
            raise IndexFormatError(
                f"{self.path}: not a binary repro index (bad magic {magic!r})"
            )
        if zlib.crc32(bytes(self._buffer[:36])) != header_crc:
            raise IndexFormatError(f"{self.path}: header checksum mismatch")
        if version != FORMAT_VERSION:
            raise IndexFormatError(
                f"{self.path}: unsupported binary index version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        if file_size != size:
            raise IndexFormatError(
                f"{self.path}: truncated index (header records {file_size} "
                f"bytes, file has {size})"
            )
        table_end = table_offset + count * _SECTION.size
        if table_offset < _HEADER.size or table_end > size:
            raise IndexFormatError(
                f"{self.path}: section table out of bounds"
            )
        table = bytes(self._buffer[table_offset:table_end])
        if zlib.crc32(table) != table_crc:
            raise IndexFormatError(
                f"{self.path}: section table checksum mismatch"
            )
        for position in range(count):
            raw_name, offset, length, crc = _SECTION.unpack_from(
                table, position * _SECTION.size
            )
            name = raw_name.rstrip(b"\0").decode("ascii")
            if offset + length > size:
                raise IndexFormatError(
                    f"{self.path}: section {name!r} out of bounds "
                    f"({offset}+{length} > {size})"
                )
            self._sections[name] = (offset, length, crc)
        for name in self._sections:
            if name not in _LAZY_SECTIONS:
                self._check_crc(name)

    def _check_crc(self, name: str) -> None:
        offset, length, crc = self._sections[name]
        if zlib.crc32(bytes(self._buffer[offset : offset + length])) != crc:
            raise IndexFormatError(
                f"{self.path}: section {name!r} checksum mismatch "
                "(corrupted index)"
            )

    def _load_meta(self) -> dict:
        try:
            meta = json.loads(bytes(self.raw("meta")).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise IndexFormatError(
                f"{self.path}: corrupt meta section ({exc})"
            ) from exc
        if not isinstance(meta, dict):
            raise IndexFormatError(f"{self.path}: meta is not an object")
        return meta

    # -- section access -------------------------------------------------
    def has(self, name: str) -> bool:
        """True when the file carries section ``name``."""
        return name in self._sections

    def section_names(self) -> list[str]:
        """All section names, in file order."""
        return list(self._sections)

    def raw(self, name: str) -> memoryview:
        """The raw byte view of section ``name`` (zero-copy)."""
        entry = self._sections.get(name)
        if entry is None:
            raise IndexFormatError(
                f"{self.path}: missing required section {name!r}"
            )
        offset, length, _crc = entry
        return self._buffer[offset : offset + length]

    def array(self, name: str, typecode: str):
        """Section ``name`` as a typed view (zero-copy on little-endian)."""
        return _typed_view(self.raw(name), typecode, name)

    def verify(self) -> None:
        """Checksum every section, including the lazily-verified runs."""
        for name in self._sections:
            self._check_crc(name)

    def close(self) -> None:  # pragma: no cover - test/tooling convenience
        """Release the mapping (only safe once no artifact slices it)."""
        self._buffer.release()
        self._mmap.close()


def sniff_is_binary_index(path: str | Path) -> bool:
    """True when ``path`` starts with the binary index magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


# ----------------------------------------------------------------------
# Engine-level save: gather backend artifacts into sections
# ----------------------------------------------------------------------


def write_engine_index(
    engine,
    path: str | Path,
    *,
    extra_meta: dict | None = None,
    extra_sections: list[tuple[str, str, object]] | None = None,
) -> None:
    """Persist ``engine``'s offline artifacts as one binary index file.

    Works for every backend: ``full``/``constrained`` store the closure
    rows + pair tables, ``ondemand``/``pll`` store the 2-hop labels, and
    ``hybrid`` stores both plus its hot-pair selection.  Node ids and
    labels keep their types (str/int) via the tagged identity pools.

    ``extra_meta`` entries are merged into the JSON ``meta`` section and
    ``extra_sections`` appends ``(name, typecode, buffer)`` sections —
    the hooks the shard writer uses to embed its per-shard descriptor
    (``meta["shard"]``) and boundary-pair arrays without a second file
    format.  Extra meta keys may not shadow the core ones.
    """
    backend = engine.backend
    name = backend.name
    closure = getattr(backend, "closure", None)
    pll = getattr(backend, "distance_index", None)
    if closure is not None:
        interner = closure.interner
        compact = closure.compact_graph
    elif pll is not None:
        interner = pll.interner
        compact = pll.compact_graph
    else:  # pragma: no cover - every shipped backend has one of the two
        raise IndexFormatError(
            f"backend {name!r} exposes no persistable artifacts"
        )

    writer = _Writer()
    meta = {
        "backend": name,
        "config": {
            "block_size": engine.config.block_size,
            "hot_fraction": engine.config.hot_fraction,
        },
        "counts": {
            "nodes": len(interner),
            "edges": compact.num_edges,
            "labels": len(interner.labels()),
        },
        "unit_weighted": compact.unit_weighted,
    }

    node_off, node_tags, node_blob = encode_identity_pool(
        interner.nodes(), "node id"
    )
    labels = interner.labels()
    label_off, label_tags, label_blob = encode_identity_pool(labels, "label")
    label_counts = array(
        "I", (len(interner.label_range(label)) for label in labels)
    )

    if name == "constrained":
        from repro.io import query_tree_to_dict

        meta["workload"] = [
            query_tree_to_dict(query) for query in backend.workload
        ]
    if name == "hybrid":
        label_index = {label: i for i, label in enumerate(labels)}
        meta["hot_pairs"] = sorted(
            [label_index[alpha], label_index[beta]]
            for alpha, beta in backend.store.hot_pairs
        )
    if closure is not None:
        meta["partial"] = closure.is_partial
    if extra_meta:
        collisions = sorted(set(extra_meta) & set(meta))
        if collisions:
            raise IndexFormatError(
                f"extra_meta keys {collisions} shadow core meta fields"
            )
        meta.update(extra_meta)

    writer.add("meta", json.dumps(meta, sort_keys=True).encode("utf-8"))
    writer.add_array("nodes.off", "I", node_off)
    writer.add_array("nodes.tag", "B", node_tags)
    writer.add_array("nodes.blob", "B", node_blob)
    writer.add_array("labels.off", "I", label_off)
    writer.add_array("labels.tag", "B", label_tags)
    writer.add_array("labels.blob", "B", label_blob)
    writer.add_array("labels.cnt", "I", label_counts)

    writer.add_array("csr.oo", "i", compact.out_offsets)
    writer.add_array("csr.ot", "i", compact.out_targets)
    writer.add_array("csr.ow", "d", compact.out_weights)
    writer.add_array("csr.io", "i", compact.in_offsets)
    writer.add_array("csr.it", "i", compact.in_targets)
    writer.add_array("csr.iw", "d", compact.in_weights)

    if closure is not None:
        _add_closure_sections(writer, closure)
        store = (
            backend.store._materialized if name == "hybrid" else backend.store
        )
        _add_pair_table_sections(writer, store, labels)
    if pll is not None:
        _add_pll_sections(writer, pll)
    for section_name, typecode, buf in extra_sections or ():
        writer.add_array(section_name, typecode, buf)

    writer.write(path)


def _add_closure_sections(writer: _Writer, closure: TransitiveClosure) -> None:
    rows = closure.rows
    sources = array("i", rows.sources())
    offsets = array("q", [0])
    targets = array("i")
    dists = array("d")
    for source_id in sources:
        row_targets, row_dists = rows.row(source_id)
        targets.extend(row_targets)
        dists.extend(row_dists)
        offsets.append(len(targets))
    writer.add_array("rows.src", "i", sources)
    writer.add_array("rows.off", "q", offsets)
    writer.add_array("rows.tgt", "i", targets)
    writer.add_array("rows.dst", "d", dists)


def _add_pair_table_sections(
    writer: _Writer, store: ClosureStore, labels
) -> None:
    label_index = {label: i for i, label in enumerate(labels)}
    ordered = sorted(
        store._pair_tables.items(),
        key=lambda item: (label_index[item[0][0]], label_index[item[0][1]]),
    )
    directory = bytearray()
    tails = array("i")
    dists = array("d")
    direct = bytearray()
    heads = array("i")
    offs = array("i")
    e_tails = array("i")
    e_heads = array("i")
    e_dists = array("d")
    for (alpha, beta), table in ordered:
        directory += _PAIR_DIR.pack(
            label_index[alpha],
            label_index[beta],
            len(tails),
            table.num_entries,
            len(heads),
            table.num_groups,
            len(offs),
            len(e_tails),
            len(table.e_tails),
        )
        tails.extend(table.tails)
        dists.extend(table.dists)
        direct += bytes(table.direct)
        heads.extend(table.heads)
        offs.extend(table.offsets)
        e_tails.extend(table.e_tails)
        e_heads.extend(table.e_heads)
        e_dists.extend(table.e_dists)
    writer.add("ltab.dir", bytes(directory))
    writer.add_array("ltab.tails", "i", tails)
    writer.add_array("ltab.dists", "d", dists)
    writer.add_array("ltab.direct", "B", direct)
    writer.add_array("ltab.heads", "i", heads)
    writer.add_array("ltab.offs", "i", offs)
    writer.add_array("ltab.etails", "i", e_tails)
    writer.add_array("ltab.eheads", "i", e_heads)
    writer.add_array("ltab.edists", "d", e_dists)


def _add_pll_sections(writer: _Writer, pll: PrunedLandmarkIndex) -> None:
    for side, prefix in ((pll._out, "out"), (pll._in, "in")):
        offsets = array("q", [0])
        landmarks = array("i")
        dists = array("d")
        for labels in side:
            for landmark, dist in sorted(labels.items()):
                landmarks.append(landmark)
                dists.append(dist)
            offsets.append(len(landmarks))
        writer.add_array(f"pll.o{prefix}", "q", offsets)
        writer.add_array(f"pll.l{prefix}", "i", landmarks)
        writer.add_array(f"pll.d{prefix}", "d", dists)


# ----------------------------------------------------------------------
# Engine-level open: sections -> typed artifacts
# ----------------------------------------------------------------------


@dataclass
class DiskArtifacts:
    """The typed artifacts reconstructed from one binary index file.

    ``repro.engine.backends.restore_backend_from_disk`` assembles the
    matching backend from these; the ``disk`` handle is carried along so
    callers can report ``mapped_bytes`` or run :meth:`DiskIndex.verify`.
    """

    disk: DiskIndex
    interner: NodeInterner
    compact: CompactGraph
    closure: TransitiveClosure | None = None
    pair_tables: dict | None = None
    pll: PrunedLandmarkIndex | None = None
    hot_pairs: frozenset | None = None
    workload: list = field(default_factory=list)


def open_engine_index(
    path: str | Path,
) -> tuple[LabeledDiGraph, dict, str, DiskArtifacts]:
    """Open a binary index: ``(graph, stored_config, backend_name, artifacts)``.

    The graph and the small directory structures are materialized; the
    closure rows and pair tables become zero-copy views over the mapping
    (no per-entry decode — blocks page in on first touch).
    """
    disk = DiskIndex(path)
    meta = disk.meta
    backend_name = meta.get("backend")
    counts = meta.get("counts", {})
    stored_config = dict(meta.get("config", {}))

    nodes = _decode_identity_pool(
        disk.array("nodes.off", "I"),
        disk.array("nodes.tag", "B"),
        disk.raw("nodes.blob"),
        "node id",
    )
    labels = _decode_identity_pool(
        disk.array("labels.off", "I"),
        disk.array("labels.tag", "B"),
        disk.raw("labels.blob"),
        "label",
    )
    label_counts = disk.array("labels.cnt", "I")
    if len(labels) != len(label_counts) or len(nodes) != counts.get("nodes"):
        raise IndexFormatError(
            f"{disk.path}: identity pools disagree with the recorded counts"
        )
    interner = NodeInterner.from_sorted(nodes, zip(labels, label_counts))
    compact = CompactGraph.from_buffers(
        interner,
        num_edges=counts.get("edges", 0),
        unit_weighted=bool(meta.get("unit_weighted", True)),
        out_offsets=disk.array("csr.oo", "i"),
        out_targets=disk.array("csr.ot", "i"),
        out_weights=disk.array("csr.ow", "d"),
        in_offsets=disk.array("csr.io", "i"),
        in_targets=disk.array("csr.it", "i"),
        in_weights=disk.array("csr.iw", "d"),
    )
    if len(compact.out_offsets) != len(interner) + 1:
        raise IndexFormatError(
            f"{disk.path}: CSR offsets disagree with the node count"
        )
    graph = _rebuild_graph(interner, compact)

    artifacts = DiskArtifacts(disk=disk, interner=interner, compact=compact)
    artifacts.workload = list(meta.get("workload", []))
    if disk.has("rows.src"):
        artifacts.closure = TransitiveClosure._from_rows(
            graph,
            interner,
            compact,
            ClosureRows.from_flat(
                disk.array("rows.src", "i"),
                disk.array("rows.off", "q"),
                disk.array("rows.tgt", "i"),
                disk.array("rows.dst", "d"),
            ),
            partial=bool(meta.get("partial", False)),
        )
    if disk.has("ltab.dir"):
        artifacts.pair_tables = _open_pair_tables(disk, labels)
    if disk.has("pll.oout"):
        artifacts.pll = PrunedLandmarkIndex.from_interned_labels(
            graph,
            interner,
            compact,
            _decode_pll_side(disk, "out"),
            _decode_pll_side(disk, "in"),
        )
    if "hot_pairs" in meta:
        try:
            artifacts.hot_pairs = frozenset(
                (labels[alpha], labels[beta])
                for alpha, beta in meta["hot_pairs"]
            )
        except (IndexError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{disk.path}: corrupt hot-pair directory ({exc})"
            ) from exc
    return graph, stored_config, backend_name, artifacts


def _rebuild_graph(
    interner: NodeInterner, compact: CompactGraph
) -> LabeledDiGraph:
    """Materialize the mutable LabeledDiGraph the upper layers speak."""
    graph = LabeledDiGraph()
    add_node = graph.add_node
    label_of = interner.label_of
    for node_id, node in enumerate(interner.nodes()):
        add_node(node, label_of(node_id))
    resolve = interner.resolve
    add_edge = graph.add_edge
    offsets, targets, weights = (
        compact.out_offsets, compact.out_targets, compact.out_weights,
    )
    for source_id in range(len(interner)):
        tail = resolve(source_id)
        for k in range(offsets[source_id], offsets[source_id + 1]):
            add_edge(tail, resolve(targets[k]), weights[k])
    return graph


def _open_pair_tables(disk: DiskIndex, labels: list) -> dict:
    """O(tables) directory walk; every column is a zero-copy slice."""
    directory = bytes(disk.raw("ltab.dir"))
    tails = disk.array("ltab.tails", "i")
    dists = disk.array("ltab.dists", "d")
    direct = disk.raw("ltab.direct")
    heads = disk.array("ltab.heads", "i")
    offs = disk.array("ltab.offs", "i")
    e_tails = disk.array("ltab.etails", "i")
    e_heads = disk.array("ltab.eheads", "i")
    e_dists = disk.array("ltab.edists", "d")
    if len(directory) % _PAIR_DIR.size:
        raise IndexFormatError(
            f"{disk.path}: pair-table directory is not a whole number of "
            "records"
        )
    tables = {}
    for record in _PAIR_DIR.iter_unpack(directory):
        (
            alpha_idx, beta_idx,
            entry_base, entry_count,
            group_base, group_count,
            offs_base, e_base, e_count,
        ) = record
        if not (
            0 <= alpha_idx < len(labels)
            and 0 <= beta_idx < len(labels)
            and 0 <= entry_base <= entry_base + entry_count <= len(tails)
            and 0 <= group_base <= group_base + group_count <= len(heads)
            and 0 <= offs_base <= offs_base + group_count + 1 <= len(offs)
            and 0 <= e_base <= e_base + e_count <= len(e_tails)
        ):
            raise IndexFormatError(
                f"{disk.path}: pair-table directory record out of bounds"
            )
        pair = (labels[alpha_idx], labels[beta_idx])
        tables[pair] = _PairTable.from_columns(
            tails[entry_base : entry_base + entry_count],
            dists[entry_base : entry_base + entry_count],
            direct[entry_base : entry_base + entry_count],
            heads[group_base : group_base + group_count],
            offs[offs_base : offs_base + group_count + 1],
            e_tails[e_base : e_base + e_count],
            e_heads[e_base : e_base + e_count],
            e_dists[e_base : e_base + e_count],
        )
    return tables


def _decode_pll_side(disk: DiskIndex, prefix: str) -> list[dict[int, float]]:
    offsets = disk.array(f"pll.o{prefix}", "q")
    landmarks = disk.array(f"pll.l{prefix}", "i")
    dists = disk.array(f"pll.d{prefix}", "d")
    side = []
    for node_id in range(len(offsets) - 1):
        lo, hi = offsets[node_id], offsets[node_id + 1]
        side.append(dict(zip(landmarks[lo:hi], dists[lo:hi])))
    return side
