"""I/O accounting for the simulated block store.

The paper evaluates disk-resident closure tables and reports I/O time
separately from CPU time (Figures 6(c)-(f)).  We keep everything in RAM
but *meter* every block access through an :class:`IOCounter`; an
:class:`IOCostModel` converts block counts into simulated I/O seconds so
benchmarks can print the same CPU/I-O split the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOCounter:
    """Mutable counters of simulated storage traffic."""

    blocks_read: int = 0
    entries_read: int = 0
    tables_opened: int = 0
    reads_by_table: dict[str, int] = field(default_factory=dict)

    def record_read(self, table_name: str, num_entries: int) -> None:
        """Account one block read of ``num_entries`` entries."""
        self.blocks_read += 1
        self.entries_read += num_entries
        self.reads_by_table[table_name] = self.reads_by_table.get(table_name, 0) + 1

    def record_open(self) -> None:
        """Account one table open (directory lookup)."""
        self.tables_opened += 1

    def reset(self) -> None:
        """Zero all counters."""
        self.blocks_read = 0
        self.entries_read = 0
        self.tables_opened = 0
        self.reads_by_table.clear()

    def snapshot(self) -> "IOCounter":
        """Return an immutable-ish copy of the current counters."""
        return IOCounter(
            blocks_read=self.blocks_read,
            entries_read=self.entries_read,
            tables_opened=self.tables_opened,
            reads_by_table=dict(self.reads_by_table),
        )

    def delta_since(self, earlier: "IOCounter") -> "IOCounter":
        """Return the counter difference ``self - earlier``."""
        return IOCounter(
            blocks_read=self.blocks_read - earlier.blocks_read,
            entries_read=self.entries_read - earlier.entries_read,
            tables_opened=self.tables_opened - earlier.tables_opened,
        )


@dataclass(frozen=True)
class IOCostModel:
    """Turns block counts into simulated I/O seconds.

    Defaults approximate a cached/SSD-like store: a block transfer costs
    about twice a table/group seek.  (The paper's tables are laid out in
    contiguous sorted blocks, so sequential scans amortize seeks while the
    priority-based algorithms pay one seek per group they touch.)
    """

    seconds_per_block: float = 2e-4
    seconds_per_open: float = 1e-4

    def io_seconds(self, counter: IOCounter) -> float:
        """Simulated I/O time for the traffic in ``counter``."""
        return (
            counter.blocks_read * self.seconds_per_block
            + counter.tables_opened * self.seconds_per_open
        )
