"""General twig-pattern matching (Section 5): Topk-GT and label semantics.

``repro.twig.general`` is imported lazily: the low-level packages import
``repro.twig.semantics`` while ``general`` builds on the core engines, so
an eager import here would be circular.
"""

from repro.twig.semantics import EQUALITY, ContainmentMatcher, LabelMatcher

__all__ = [
    "TopkGT",
    "general_topk",
    "validate_general_query",
    "LabelMatcher",
    "ContainmentMatcher",
    "EQUALITY",
]

_LAZY = {
    "TopkGT": "general",
    "general_topk": "general",
    "validate_general_query": "general",
    "UndirectedTreeQuery": "undirected",
    "select_root": "undirected",
    "undirected_top_k": "undirected",
}

__all__ += ["UndirectedTreeQuery", "select_root", "undirected_top_k"]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f"repro.twig.{module_name}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
