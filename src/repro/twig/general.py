"""Topk-GT — general top-k twig matching (Section 5 extensions).

The copy-based run-time graph makes the general case a thin layer over
the core engines: duplicate labels, wildcard nodes, ``/`` edges, and
label containment are all expressed through

* ``(query node, data node)`` copies (already the core representation),
* a :class:`~repro.twig.semantics.LabelMatcher` deciding which data labels
  each query node may map to, and
* the ``is_direct`` flag on closure entries for ``/`` edges.

:class:`TopkGT` is the paper's Topk-GT: the lazy Topk-EN engine run over
a general twig query.  :func:`general_topk` also exposes the fully-loaded
algorithms for cross-checking.

This module is the low-level execution path.  The public surface for all
of these features is the declarative query layer: DSL strings like
``"A//*[B]/C"`` or ``"A//~db+systems"`` compile (via
:func:`repro.query.compile_query`) to the same ``QueryTree`` +
``LabelMatcher`` machinery and run through
:meth:`repro.engine.MatchEngine.top_k` — no direct import of this module
needed.
"""

from __future__ import annotations

from repro.closure.store import ClosureStore
from repro.core.baseline_dp import DPBEnumerator
from repro.core.brute_force import all_matches
from repro.core.matches import Match
from repro.core.topk import TopkEnumerator
from repro.core.topk_en import TopkEN
from repro.exceptions import QueryError
from repro.graph.query import WILDCARD, QueryTree
from repro.runtime.graph import build_runtime_graph
from repro.twig.semantics import EQUALITY, ContainmentMatcher, LabelMatcher


def validate_general_query(query: QueryTree) -> None:
    """Sanity-check a general twig query.

    Wildcard roots are rejected: with an unlabeled root every data node is
    a root candidate, which the paper flags as blowing up the run-time
    graph; supporting it is possible but never useful in the benchmarks.
    """
    if query.label(query.root) == WILDCARD:
        raise QueryError("wildcard roots are not supported")


class TopkGT(TopkEN):
    """Topk-EN extended to general twig queries (duplicate labels,
    wildcards, ``/`` edges, containment — pick the matcher accordingly)."""

    def __init__(
        self,
        store: ClosureStore,
        query: QueryTree,
        matcher: LabelMatcher = EQUALITY,
    ) -> None:
        validate_general_query(query)
        super().__init__(store, query, matcher=matcher)


def general_topk(
    store: ClosureStore,
    query: QueryTree,
    k: int,
    matcher: LabelMatcher = EQUALITY,
    algorithm: str = "topk-gt",
) -> list[Match]:
    """Top-k general twig matching with a choice of engine.

    ``topk-gt`` (default) is the lazy engine; ``topk`` and ``dp-b`` run on
    the fully loaded run-time graph; ``brute-force`` is the test oracle.
    """
    validate_general_query(query)
    if algorithm == "topk-gt":
        return TopkGT(store, query, matcher=matcher).top_k(k)
    gr = build_runtime_graph(store, query, matcher=matcher)
    if algorithm == "topk":
        return TopkEnumerator(gr).top_k(k)
    if algorithm == "dp-b":
        return DPBEnumerator(gr).top_k(k)
    if algorithm == "brute-force":
        return all_matches(gr)[:k]
    raise ValueError(f"unknown algorithm {algorithm!r}")


__all__ = [
    "TopkGT",
    "general_topk",
    "validate_general_query",
    "ContainmentMatcher",
]
