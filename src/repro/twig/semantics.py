"""Label-matching semantics for twig queries (Section 5 extensions).

The core algorithms only need to know, for each query node, *which data
labels* its candidates may carry.  A :class:`LabelMatcher` answers exactly
that, so equality matching (the paper's base case), wildcard nodes, and
label containment are all handled by the same run-time-graph builder.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.digraph import Label
from repro.graph.query import WILDCARD


class LabelMatcher:
    """Base matcher: query labels match equal data labels; ``*`` matches all.

    ``data_labels_for(query_label, alphabet)`` returns the list of data
    labels a query node with ``query_label`` may map to, or ``None``
    meaning "all labels" (which the store layer treats as a wildcard and
    answers without enumerating the alphabet).
    """

    def data_labels_for(
        self, query_label: Label, alphabet: Iterable[Label]
    ) -> list[Label] | None:
        if query_label == WILDCARD:
            return None
        return [query_label]

    def matches(self, query_label: Label, data_label: Label) -> bool:
        """True when a node with ``data_label`` may match ``query_label``."""
        return query_label == WILDCARD or query_label == data_label


class ContainmentMatcher(LabelMatcher):
    """Label containment: a data node matches when its label *contains* the
    query label (Section 5, third extension).

    Data labels are treated as collections of tokens (a frozenset, tuple,
    or a delimiter-separated string); a query label matches a data label
    when every query token occurs among the data label's tokens.
    """

    def __init__(self, delimiter: str = "+") -> None:
        self.delimiter = delimiter

    def _tokens(self, label: Label) -> frozenset:
        if isinstance(label, frozenset):
            return label
        if isinstance(label, (set, tuple, list)):
            return frozenset(label)
        if isinstance(label, str):
            return frozenset(label.split(self.delimiter))
        return frozenset((label,))

    def matches(self, query_label: Label, data_label: Label) -> bool:
        if query_label == WILDCARD:
            return True
        return self._tokens(query_label) <= self._tokens(data_label)

    def data_labels_for(
        self, query_label: Label, alphabet: Iterable[Label]
    ) -> list[Label] | None:
        if query_label == WILDCARD:
            return None
        return [label for label in alphabet if self.matches(query_label, label)]


#: Shared default matcher instance (stateless).
EQUALITY = LabelMatcher()
