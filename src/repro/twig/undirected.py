"""Top-k matching of *undirected* tree queries, with root selection.

The paper's conclusion raises "selecting the 'best' node as a root from
an undirected tree" as future work; its Section 5 sketches the
mechanism (used by kGPM): make every data edge bidirectional, pick a
root, and run the directed machinery.  The root choice does not affect
*results* — any rooting of the same undirected tree admits exactly the
same matches with the same scores — but it changes the run-time graph
size and therefore the cost.

This module implements both the mechanism and the cost-based root
selection: candidate rootings are scored by the expected run-time-graph
size (sum of per-type closure counts over the rooted tree's edges, the
same estimator the kGPM decomposer uses).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.closure.store import ClosureStore
from repro.closure.transitive import TransitiveClosure
from repro.core.matches import Match
from repro.core.topk_en import TopkEN
from repro.exceptions import QueryError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.query import QueryGraph, QueryTree
from repro.gpm.decompose import decomposition_cost, spanning_tree

QNodeId = Hashable


class UndirectedTreeQuery:
    """An unrooted, node-labeled tree pattern.

    Internally a :class:`QueryGraph` that must be acyclic; ``rooted_at``
    produces the directed :class:`QueryTree` for any chosen root.
    """

    def __init__(
        self,
        labels: Mapping[QNodeId, object],
        edges: Iterable[tuple[QNodeId, QNodeId]],
    ) -> None:
        self.graph = QueryGraph(labels, edges)
        if self.graph.num_edges != self.graph.num_nodes - 1:
            raise QueryError("an undirected tree query must be acyclic")

    def rooted_at(self, root: QNodeId) -> QueryTree:
        """The directed rooting of this tree at ``root``."""
        tree, non_tree = spanning_tree(self.graph, root=root)
        assert not non_tree  # acyclic by construction
        return tree

    def rootings(self) -> list[QueryTree]:
        """All possible rootings, in deterministic node order."""
        return [self.rooted_at(u) for u in sorted(self.graph.nodes(), key=repr)]


def select_root(
    query: UndirectedTreeQuery, closure: TransitiveClosure
) -> QueryTree:
    """Pick the rooting with the smallest expected run-time graph.

    The estimator sums, over the rooted tree's (directed) edges, the
    closure-edge counts of the corresponding label pairs — exactly the
    number of closure entries the run-time graph identification loads.
    """
    counts = closure.same_type_statistics()
    best_tree = None
    best_cost = None
    for tree in query.rootings():
        cost = decomposition_cost((tree, []), counts)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_tree = tree
    assert best_tree is not None
    return best_tree


def undirected_top_k(
    graph: LabeledDiGraph,
    query: UndirectedTreeQuery,
    k: int,
    store: ClosureStore | None = None,
    root: QNodeId | None = None,
) -> list[Match]:
    """Top-k matches of an undirected tree query over an undirected graph.

    The data graph is bidirected (Section 5); the query is rooted either
    at ``root`` or by :func:`select_root`, and Topk-EN runs on the result.
    The returned assignments and scores are root-invariant.
    """
    if store is None:
        bidirected = graph.bidirected()
        store = ClosureStore.build(bidirected)
    if root is not None:
        tree = query.rooted_at(root)
    else:
        tree = select_root(query, store.closure)
    return TopkEN(store, tree).top_k(k)
