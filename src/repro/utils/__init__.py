"""Small reusable utilities (heaps, RNG helpers) shared across subpackages."""

from repro.utils.heap import LazyDeletionHeap, TieBreakHeap
from repro.utils.rng import make_rng, zipf_weights

__all__ = ["LazyDeletionHeap", "TieBreakHeap", "make_rng", "zipf_weights"]
